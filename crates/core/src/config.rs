//! System-wide configuration.

use esharing_charging::{ChargingCostParams, Operator, UserModel};
use esharing_dataset::EnergyModel;
use esharing_placement::online::DeviationConfig;

/// All knobs of the two-tier framework, defaulting to the paper's §V
/// experimental parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Grid granularity in meters (paper: 100 m cells).
    pub grid_cell_m: f64,
    /// Space-occupation cost per station in meters of equivalent walking
    /// distance (paper: "uniformly randomly distributed with mean of 10
    /// (km)"; we use the mean).
    pub space_cost_m: f64,
    /// Cap on candidate cells fed to the offline algorithm — "the space of
    /// N can be reduced to filter out those less popular locations".
    pub max_candidate_cells: usize,
    /// Tier-1 online algorithm configuration.
    pub deviation: DeviationConfig,
    /// Tier-2 unit costs (q, d, b).
    pub charging: ChargingCostParams,
    /// User cooperation model for incentives.
    pub users: UserModel,
    /// Incentive level α ∈ [0, 1].
    pub alpha: f64,
    /// Offers the system can make per station per maintenance period
    /// (bounded by real user arrivals).
    pub offers_per_station: usize,
    /// Maintenance operator shift parameters.
    pub operator: Operator,
    /// E-bike battery physics.
    pub energy: EnergyModel,
    /// Master seed for the orchestrator's stochastic components.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            grid_cell_m: 100.0,
            space_cost_m: 10_000.0,
            max_candidate_cells: 250,
            deviation: DeviationConfig {
                space_cost: 10_000.0,
                ..DeviationConfig::default()
            },
            charging: ChargingCostParams::default(),
            users: UserModel::default(),
            alpha: 0.4,
            offers_per_station: 40,
            // The §IV-C skip policy: stations the incentive pass left with
            // only a couple of low bikes are deferred to the next period.
            operator: Operator::default().with_skip_below(2),
            energy: EnergyModel::default(),
            seed: 7,
        }
    }
}

impl SystemConfig {
    /// Validates cross-field consistency.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations (non-positive grid cell, α outside
    /// `[0, 1]`, zero candidate cap).
    pub fn validate(&self) {
        assert!(
            self.grid_cell_m.is_finite() && self.grid_cell_m > 0.0,
            "grid cell must be positive"
        );
        assert!(
            self.space_cost_m.is_finite() && self.space_cost_m > 0.0,
            "space cost must be positive"
        );
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0, 1]");
        assert!(
            self.max_candidate_cells > 0,
            "candidate cap must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = SystemConfig::default();
        cfg.validate();
        assert_eq!(cfg.grid_cell_m, 100.0);
        assert_eq!(cfg.space_cost_m, 10_000.0);
        assert_eq!(cfg.charging.delay_d, 5.0);
        assert_eq!(cfg.charging.energy_b, 2.0);
        assert_eq!(cfg.deviation.tolerance, 200.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let cfg = SystemConfig {
            alpha: 2.0,
            ..SystemConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "grid cell")]
    fn rejects_bad_grid() {
        let cfg = SystemConfig {
            grid_cell_m: -1.0,
            ..SystemConfig::default()
        };
        cfg.validate();
    }
}
