//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple fixed-column table printed in the style of the paper's tables.
///
/// # Examples
///
/// ```
/// use esharing_bench::Table;
///
/// let mut t = Table::new(vec!["model".into(), "rmse".into()]);
/// t.row(vec!["LSTM".into(), "29.1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("model"));
/// assert!(s.contains("29.1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal, the paper's usual table precision.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["algo".into(), "cost".into()]);
        t.row(vec!["Offline".into(), "393.5".into()]);
        t.row(vec!["Meyerson".into(), "609.3".into()]);
        let s = t.to_string();
        assert!(s.contains("Offline"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_header() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.2345), "1.2");
        assert_eq!(f2(1.2345), "1.23");
    }
}
