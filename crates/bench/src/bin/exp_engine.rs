//! Engine scaling — sharded serving engine vs. the single-worker request
//! server on a replayed synthetic-city trip stream.
//!
//! Both backends emulate the same downstream dependency: `--delay-us` of
//! off-CPU service time per request (persistence, push notification). The
//! single-worker server blocks its only thread on each call, so every
//! request pays the delay, the thread wake-up latency, and the decision
//! compute serially. On the engine's default shared-nothing fast path the
//! submitting client decides **inline** under the shard's seat and only
//! the downstream fetch drains asynchronously through the shard's bounded
//! ring, so the client never pays a thread handoff at all;
//! `--mailbox-fallback` instead runs the original one-worker-per-shard
//! crossbeam-mailbox architecture, keeping the mailbox tax measurable as a
//! baseline. The replay stream is real day-1 drop-offs, interleaved
//! round-robin across the 8-way grid zones so every shard sees an equal
//! share (peak-capacity workload; zone counts nest, so the same stream is
//! balanced for 1, 2, 4 and 8 shards).
//!
//! Emits `BENCH_engine.json` at the repo root (throughput plus
//! p50/p90/p99/p99.9 client latency per backend, worker-side fleet
//! arrival → decision quantiles per engine width — the
//! `engine_s{N}_decision_p50/p90/p99` rows — and per-shard worker-side
//! quantiles from the shard latency histograms) and dumps the final fleet
//! snapshot of the widest engine run to `results/engine_snapshot.json`.
//! Setting `ESHARING_BENCH_DIR` redirects the JSON (including in
//! `--smoke` mode, which otherwise skips it).
//!
//! Every run also measures telemetry overhead: the same stream replayed
//! through 1-shard engines with telemetry on and off, three pairs,
//! median-of-3 client-observed decision p50s must land within 5% (plus a
//! 1 µs clock-noise floor — the fast path decides in single-digit
//! microseconds, where sub-microsecond jitter swamps a 5% relative bound;
//! the binary fails otherwise). With `--serve`, the widest engine run
//! additionally exposes its live telemetry over HTTP, scrapes its own
//! `/metrics` endpoint while the engine is still up, verifies the
//! decision/shed/KS-drift families are present, and writes the payload to
//! `telemetry_scrape.prom`.
//!
//! The fleet health plane gets the same treatment: an overhead A/B
//! (1-shard engines with the plane on vs off, same 5% / 1 µs budget as
//! the telemetry pair, emitted as `engine_s1_health_on/off_p50` rows)
//! plus an end-to-end exercise — a default-SLO run that must end with
//! zero breaches, and a run under an intentionally tight SLO
//! (decision p99 < 1 ns) that must breach, journal a typed `SloBreach`
//! event, and freeze a flight-recorder dump both in memory (served at
//! `/flight/<id>`) and on disk under `results/flight/` (or
//! `$ESHARING_BENCH_DIR/flight`). With `--serve`, the tight-SLO engine
//! also self-scrapes `/metrics` for the `esharing_slo_burn` family and
//! writes the payload to `health_scrape.prom`.
//!
//! Engine runs default to [`DriftMode::Deferred`]: boundary KS re-tests
//! are snapshotted on-seat and evaluated off-seat on the shard's drain
//! worker, so the boundary request no longer drags the whole window's
//! O(n·m) Peacock evaluation through the seat. `--inline-drift` restores
//! the original convoying mode as the measured baseline. The widest
//! engine width additionally runs **both** modes back to back and emits
//! `engine_s{N}_drift_inline_*` / `engine_s{N}_drift_deferred_*` rows
//! (worst-shard p99/p999 plus fleet decision p50) so the re-test convoy
//! — and its removal — stays visible in the committed trajectory; the
//! binary fails if the deferred worst-shard p99 exceeds 10x the decision
//! p50 (with a 200 µs noise floor). Per-shard quantile rows carry a
//! thin-evidence note when the shard histogram holds fewer than 100
//! samples.
//!
//! Usage: `exp_engine [--smoke] [--serve] [--mailbox-fallback]
//!                    [--inline-drift] [--requests N] [--delay-us D]
//!                    [--clients C] [--shards S1,S2,...]`
//!
//! `--smoke` shrinks the run and skips the artifact writes (CI mode).

use esharing_bench::perf::PerfEmitter;
use esharing_bench::Table;
use esharing_core::server::{RequestServer, ServerConfig};
use esharing_core::{ESharing, SystemConfig};
use esharing_dataset::{destinations, CityConfig, SyntheticCity, TripGenerator};
use esharing_engine::replay::{replay, ReplayConfig, ReplayReport};
use esharing_engine::{
    http_get, DecisionPath, Engine, EngineConfig, EventKind, HealthConfig, LifecycleConfig,
    Partition, ReoptConfig, RollupSpec, ShardMap, SloRule, TelemetryConfig, TsdbConfig,
};
use esharing_geo::{BBox, Grid, Point};
use esharing_placement::offline::JmsSolverContext;
use esharing_placement::online::DriftMode;
use esharing_placement::PlpInstance;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The stream is balanced across this many grid zones; the shard counts
/// under test must divide it for the nesting argument to hold.
const BALANCE_ZONES: usize = 8;

struct Args {
    smoke: bool,
    serve: bool,
    reopt: bool,
    path: DecisionPath,
    drift: DriftMode,
    requests: usize,
    delay: Duration,
    clients: usize,
    shards: Vec<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        serve: false,
        reopt: false,
        path: DecisionPath::SyncShared,
        drift: DriftMode::Deferred,
        requests: 4_000,
        delay: Duration::from_micros(300),
        clients: 16,
        shards: vec![1, 2, 8],
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.requests = 320;
                args.clients = 8;
                args.delay = Duration::from_micros(200);
            }
            "--serve" => args.serve = true,
            "--reopt" => args.reopt = true,
            "--mailbox-fallback" => args.path = DecisionPath::Mailbox,
            "--inline-drift" => args.drift = DriftMode::Inline,
            "--requests" => args.requests = value("--requests").parse().expect("--requests N"),
            "--delay-us" => {
                args.delay =
                    Duration::from_micros(value("--delay-us").parse().expect("--delay-us D"))
            }
            "--clients" => args.clients = value("--clients").parse().expect("--clients C"),
            "--shards" => {
                args.shards = value("--shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards S1,S2,..."))
                    .collect()
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Buckets day ≥ 1 drop-offs by `BALANCE_ZONES`-way grid zone and
/// interleaves the buckets round-robin until `target` destinations, so the
/// offered load splits evenly across every nested shard count.
fn balanced_stream(gen: &mut TripGenerator, map: &ShardMap, target: usize) -> Vec<Point> {
    let per_zone = target.div_ceil(BALANCE_ZONES);
    let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); BALANCE_ZONES];
    for day in 1..14 {
        for p in destinations(&gen.generate_days(day, 1)) {
            let z = map.shard_of(p);
            if buckets[z].len() < per_zone {
                buckets[z].push(p);
            }
        }
        if buckets.iter().all(|b| b.len() >= per_zone) {
            break;
        }
    }
    let depth = buckets.iter().map(Vec::len).min().expect("zones exist");
    assert!(depth > 0, "a grid zone saw no demand in two weeks of trips");
    let mut out = Vec::with_capacity(depth * BALANCE_ZONES);
    for i in 0..depth {
        for bucket in &buckets {
            out.push(bucket[i]);
        }
    }
    out
}

fn run_server(
    history: &[Point],
    stream: &[Point],
    delay: Duration,
    clients: usize,
) -> ReplayReport {
    let mut system = ESharing::new(SystemConfig::default());
    system.bootstrap(history);
    let server = RequestServer::start_with(
        system,
        ServerConfig {
            service_delay: delay,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();
    let report = replay(
        &handle,
        stream,
        &ReplayConfig {
            clients,
            rate_per_s: None,
        },
    );
    let _ = server.shutdown();
    report
}

fn start_engine(
    history: &[Point],
    shards: usize,
    delay: Duration,
    path: DecisionPath,
    drift: DriftMode,
) -> Engine {
    let mut system = SystemConfig::default();
    system.deviation.drift_mode = drift;
    Engine::start(
        history,
        EngineConfig {
            shards,
            partition: Partition::UniformGrid,
            decision_path: path,
            service_delay: delay,
            system,
            ..EngineConfig::default()
        },
    )
}

fn micros(us: f64) -> Duration {
    Duration::from_nanos((us * 1_000.0).round() as u64)
}

fn record(emitter: &mut PerfEmitter, name: &str, report: &ReplayReport) {
    emitter.record_duration(name, report.served as usize, report.elapsed);
    for (suffix, us) in [
        ("p50", report.latency.p50_us),
        ("p90", report.latency.p90_us),
        ("p99", report.latency.p99_us),
        ("p999", report.latency.p999_us),
    ] {
        emitter.record_duration(&format!("{name}_{suffix}"), 0, micros(us));
    }
}

/// Instrumented-vs-uninstrumented decision p50: replays the same stream
/// through fresh 1-shard engines — telemetry fully on (counters, journal,
/// sampled stage tracing) vs disabled — three pairs, and requires the
/// **median** client-observed p50s to land within 5% of each other (or
/// within a 1 µs absolute floor: the fast path decides in single-digit
/// microseconds, where one scheduler hiccup is a double-digit relative
/// swing). The telemetry hot path must stay invisible on the decision
/// path.
fn assert_telemetry_overhead(
    emitter: &mut PerfEmitter,
    history: &[Point],
    stream: &[Point],
    delay: Duration,
    clients: usize,
    path: DecisionPath,
) {
    const TOLERANCE: f64 = 0.05;
    const NOISE_FLOOR_US: f64 = 1.0;
    const PAIRS: usize = 3;
    let run = |telemetry: TelemetryConfig| {
        let engine = Engine::start(
            history,
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                decision_path: path,
                service_delay: delay,
                telemetry,
                ..EngineConfig::default()
            },
        );
        let report = replay(
            &engine,
            stream,
            &ReplayConfig {
                clients,
                rate_per_s: None,
            },
        );
        let _ = engine.shutdown();
        report.latency.p50_us
    };
    let median3 = |mut v: [f64; PAIRS]| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        v[PAIRS / 2]
    };
    let mut ons = [0.0f64; PAIRS];
    let mut offs = [0.0f64; PAIRS];
    for i in 0..PAIRS {
        // Interleave the arms so slow drift (thermal, competing load)
        // biases both the same way.
        ons[i] = run(TelemetryConfig::default());
        offs[i] = run(TelemetryConfig::disabled());
    }
    let (on, off) = (median3(ons), median3(offs));
    let rel = (on - off) / off.max(f64::MIN_POSITIVE);
    assert!(
        rel <= TOLERANCE || (on - off) <= NOISE_FLOOR_US,
        "telemetry overhead breached the 5% decision-p50 budget (median of {PAIRS} pairs): \
         instrumented {on:.2} µs vs bare {off:.2} µs ({:+.1}%)",
        100.0 * rel
    );
    println!(
        "telemetry overhead: decision p50 {on:.2} µs instrumented vs {off:.2} µs bare \
         ({:+.2}% — within the {}, median of {PAIRS} pairs)",
        100.0 * rel,
        if rel <= TOLERANCE {
            "5% budget"
        } else {
            "1 µs clock-noise floor"
        }
    );
    emitter.record_duration("engine_s1_telemetry_on_p50", 0, micros(on));
    emitter.record_duration("engine_s1_telemetry_off_p50", 0, micros(off));
}

/// Health-plane overhead A/B, same protocol as the telemetry pair: the
/// stream replayed through fresh 1-shard engines with the fleet health
/// plane fully on (default rules and resolutions; one flight-ring store
/// per decision, drain-worker sweeps, burn-rate evaluation) vs off,
/// telemetry at its default in both arms. Three interleaved pairs,
/// median-of-3 client-observed decision p50s within 5% (or the 1 µs
/// clock-noise floor). This is the ≤5% regression budget the ISSUE pins.
fn assert_health_overhead(
    emitter: &mut PerfEmitter,
    history: &[Point],
    stream: &[Point],
    delay: Duration,
    clients: usize,
    path: DecisionPath,
) {
    const TOLERANCE: f64 = 0.05;
    const NOISE_FLOOR_US: f64 = 1.0;
    const PAIRS: usize = 3;
    let run = |health: HealthConfig| {
        let engine = Engine::start(
            history,
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                decision_path: path,
                service_delay: delay,
                health,
                ..EngineConfig::default()
            },
        );
        let report = replay(
            &engine,
            stream,
            &ReplayConfig {
                clients,
                rate_per_s: None,
            },
        );
        let _ = engine.shutdown();
        report.latency.p50_us
    };
    let median3 = |mut v: [f64; PAIRS]| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        v[PAIRS / 2]
    };
    let mut ons = [0.0f64; PAIRS];
    let mut offs = [0.0f64; PAIRS];
    for i in 0..PAIRS {
        ons[i] = run(HealthConfig::enabled());
        offs[i] = run(HealthConfig::default());
    }
    let (on, off) = (median3(ons), median3(offs));
    let rel = (on - off) / off.max(f64::MIN_POSITIVE);
    assert!(
        rel <= TOLERANCE || (on - off) <= NOISE_FLOOR_US,
        "health-plane overhead breached the 5% decision-p50 budget (median of {PAIRS} pairs): \
         health on {on:.2} µs vs off {off:.2} µs ({:+.1}%)",
        100.0 * rel
    );
    println!(
        "health-plane overhead: decision p50 {on:.2} µs enabled vs {off:.2} µs disabled \
         ({:+.2}% — within the {}, median of {PAIRS} pairs)",
        100.0 * rel,
        if rel <= TOLERANCE {
            "5% budget"
        } else {
            "1 µs clock-noise floor"
        }
    );
    emitter.record_duration("engine_s1_health_on_p50", 0, micros(on));
    emitter.record_duration("engine_s1_health_off_p50", 0, micros(off));
}

/// Where flight-recorder dumps land on disk: `$ESHARING_BENCH_DIR/flight`
/// when set (CI tmp dirs), else `results/flight` at the repo root.
fn flight_dir() -> PathBuf {
    match std::env::var_os("ESHARING_BENCH_DIR") {
        Some(d) => PathBuf::from(d).join("flight"),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/flight"),
    }
}

/// The health plane end to end, both verdict polarities.
///
/// **Default-SLO arm**: a gently paced 1-shard run (low concurrency so
/// seat-wait noise stays far from the 200 µs decision-p99 objective) under
/// the stock rules must end with every rule green — zero breaches, zero
/// flight dumps.
///
/// **Tight-SLO arm**: the same stream under a deliberately impossible
/// objective (decision p99 < 1 ns, 200 ms / 1 s burn windows, 20 ms
/// sweeps) must breach within the replay, journal a typed [`SloBreach`]
/// event, export the verdict in the engine snapshot, and freeze a flight
/// dump that is served from memory, mirrored byte-identically to disk,
/// and structurally sane (balanced JSON with samples, events, and a tsdb
/// excerpt). With `--serve`, the breached engine self-scrapes `/metrics`
/// (asserting the `esharing_slo_burn` family) and fetches its own
/// `/flight/<id>` route, writing the scrape to `health_scrape.prom`.
///
/// [`SloBreach`]: EventKind::SloBreach
fn health_experiment(emitter: &mut PerfEmitter, history: &[Point], stream: &[Point], args: &Args) {
    // --- Arm A: default rules, zero breaches expected. -----------------
    // Cap the arm at 2k requests: the point is verdict polarity, not
    // throughput, and the pace is deliberately slow.
    let arm = &stream[..stream.len().min(2_000)];
    let engine = Engine::start(
        history,
        EngineConfig {
            shards: 1,
            partition: Partition::UniformGrid,
            decision_path: args.path,
            service_delay: args.delay,
            health: HealthConfig::enabled(),
            ..EngineConfig::default()
        },
    );
    let report = replay(
        &engine,
        arm,
        &ReplayConfig {
            clients: args.clients.min(4),
            rate_per_s: Some(1_000.0),
        },
    );
    assert_eq!(report.degraded, 0, "default-SLO arm must not shed");
    // One more sweep interval so the evaluation covers the replay tail.
    std::thread::sleep(Duration::from_millis(150));
    let statuses = engine.slo_statuses();
    assert!(!statuses.is_empty(), "health plane reports no SLO rules");
    for s in &statuses {
        println!(
            "slo {:>14}: {} (burn fast {:.3} / slow {:.3}, {} breaches)",
            s.id,
            if s.breached { "BREACHED" } else { "ok" },
            s.burn_fast,
            s.burn_slow,
            s.breaches,
        );
    }
    let default_breaches: u64 = statuses.iter().map(|s| s.breaches).sum();
    assert!(
        default_breaches == 0 && statuses.iter().all(|s| !s.breached),
        "default SLOs must hold on a gently paced run"
    );
    assert_eq!(
        engine.flight_dump_count(),
        0,
        "no flight dump without a breach or lifecycle op"
    );
    let _ = engine.shutdown();
    emitter.record_duration(
        "health_default_breaches",
        default_breaches as usize,
        Duration::ZERO,
    );

    // --- Arm B: an intentionally tight SLO that must breach. ------------
    let dump_dir = flight_dir();
    let engine = Engine::start(
        history,
        EngineConfig {
            shards: 1,
            partition: Partition::UniformGrid,
            decision_path: args.path,
            service_delay: args.delay,
            health: HealthConfig {
                enabled: true,
                rules: vec![SloRule::quantile_below(
                    "decision_p99_tight",
                    "esharing_decision_latency_ns",
                    0.99,
                    1,
                )
                .with_windows_ms(200, 1_000)],
                sweep_interval_ms: 20,
                min_dump_interval_ms: 0,
                dump_dir: Some(dump_dir.clone()),
                ..HealthConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    // Paced so the replay spans several sweep intervals (smoke: 320
    // requests over ~320 ms against 20 ms sweeps and a 200 ms fast
    // window) — a saturation blast can finish before the first registry
    // harvest lands.
    let rate = if args.smoke { 1_000.0 } else { 4_000.0 };
    let report = replay(
        &engine,
        stream,
        &ReplayConfig {
            clients: args.clients,
            rate_per_s: Some(rate),
        },
    );
    assert_eq!(report.degraded, 0, "tight-SLO arm must not shed");
    std::thread::sleep(Duration::from_millis(50));
    let statuses = engine.slo_statuses();
    let tight = statuses
        .iter()
        .find(|s| s.id == "decision_p99_tight")
        .expect("tight rule is configured");
    assert!(
        tight.breaches >= 1,
        "a decision p99 < 1 ns objective must breach (burn fast {:.3} / slow {:.3})",
        tight.burn_fast,
        tight.burn_slow
    );
    let snapshot = engine.snapshot().expect("engine is running");
    assert!(
        !snapshot.slo.is_empty(),
        "engine snapshot must carry the SLO verdicts"
    );
    assert!(
        snapshot
            .events
            .iter()
            .any(|e| matches!(e.event.kind, EventKind::SloBreach { .. })),
        "the breach must land in the merged event history as a typed SloBreach"
    );
    let ids = engine.flight_ids();
    assert!(!ids.is_empty(), "a breach must freeze a flight dump");
    let id = ids.last().expect("non-empty").clone();
    let dump = engine.flight_dump(&id).expect("dump served from memory");
    for needle in ["\"trigger\"", "\"samples\"", "\"events\"", "\"tsdb\""] {
        assert!(dump.contains(needle), "flight dump lacks {needle}");
    }
    let (opens, closes) = dump.chars().fold((0u64, 0u64), |(o, c), ch| match ch {
        '{' => (o + 1, c),
        '}' => (o, c + 1),
        _ => (o, c),
    });
    assert!(
        opens > 0 && opens == closes,
        "flight dump JSON is unbalanced ({opens} opens / {closes} closes)"
    );
    let on_disk = dump_dir.join(format!("{id}.json"));
    let mirrored = std::fs::read_to_string(&on_disk)
        .unwrap_or_else(|e| panic!("flight dump not mirrored at {}: {e}", on_disk.display()));
    assert_eq!(mirrored, dump, "served dump and on-disk mirror must match");
    println!(
        "tight SLO breached as intended: {} breach(es), burn fast {:.1}, flight dump {} \
         ({} bytes) mirrored to {}",
        tight.breaches,
        tight.burn_fast,
        id,
        dump.len(),
        on_disk.display()
    );
    if args.serve {
        let server = engine
            .serve_telemetry("127.0.0.1:0")
            .expect("bind health responder");
        let (status, body) = http_get(server.addr(), "/metrics").expect("health self-scrape");
        assert_eq!(status, 200, "health scrape failed: {body}");
        for family in [
            "esharing_slo_burn",
            "esharing_slo_breaches_total",
            "esharing_journal_dropped_total",
        ] {
            assert!(body.contains(family), "health scrape lacks {family}");
        }
        let (status, flight_body) =
            http_get(server.addr(), &format!("/flight/{id}")).expect("flight fetch");
        assert_eq!(status, 200, "flight route failed: {flight_body}");
        let dir = std::env::var_os("ESHARING_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
        let path = dir.join("health_scrape.prom");
        match std::fs::write(&path, &body) {
            Ok(()) => println!(
                "scraped breached /metrics ({} bytes) -> {}",
                body.len(),
                path.display()
            ),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    emitter.record_duration(
        "health_tight_breaches",
        tight.breaches as usize,
        Duration::ZERO,
    );
    emitter.record_duration(
        "health_tight_dumps",
        engine.flight_dump_count(),
        Duration::ZERO,
    );
    let _ = engine.shutdown();
}

/// Worst-shard tail and fleet decision p50 from one drift-mode arm.
struct DriftOutcome {
    decision_p50_ns: u64,
    shard_p99_ns: u64,
    shard_p999_ns: u64,
    retests: u64,
}

/// Inline-vs-deferred re-test convoy measurement at the widest engine
/// width: the same balanced stream replayed twice, once with boundary KS
/// re-tests evaluated inline under the seat (the convoy: every request
/// queued behind a boundary pays the full O(n·m) Peacock evaluation) and
/// once deferred to the shard's drain worker with the verdict committed
/// at the next boundary. Emits `engine_s{N}_drift_{inline,deferred}_*`
/// rows — worst-shard p99/p999 plus fleet decision p50 — and fails the
/// run if the deferred worst-shard p99 exceeds 10x the deferred decision
/// p50 (200 µs noise floor: a scheduler hiccup on a loaded CI box is not
/// a convoy).
///
/// Unlike the scaling table, this replay is **paced** ([`DRIFT_RATE_S`]
/// req/s fleet-wide): a saturation blast drives per-shard doubling
/// boundaries closer together than one Peacock evaluation takes, so no
/// off-seat verdict could ever be ready by its commit boundary and both
/// modes degenerate to the same convoy. The convoy claim is about
/// *serving*, where requests arrive on wall-clock gaps — the pace keeps
/// boundary gaps (tens of ms) far above worker pickup (~1 ms harvest
/// quantum) plus evaluation, which is exactly the regime the deferred
/// protocol targets. The saturation numbers stay visible in the main
/// `engine_s{N}_*` rows.
fn drift_experiment(
    emitter: &mut PerfEmitter,
    history: &[Point],
    stream: &[Point],
    args: &Args,
    shards: usize,
) {
    /// Fleet-wide offered rate for the convoy comparison, requests/s.
    const DRIFT_RATE_S: f64 = 4_000.0;
    let run = |mode: DriftMode| {
        let engine = start_engine(history, shards, args.delay, args.path, mode);
        let report = replay(
            &engine,
            stream,
            &ReplayConfig {
                clients: args.clients,
                rate_per_s: Some(DRIFT_RATE_S),
            },
        );
        assert_eq!(report.degraded, 0, "drift comparison must not shed");
        let snapshot = engine.snapshot().expect("engine is running");
        let outcome = DriftOutcome {
            decision_p50_ns: snapshot.fleet.latency.p50_ns(),
            shard_p99_ns: snapshot
                .shards
                .iter()
                .map(|s| s.server.latency.p99_ns())
                .max()
                .unwrap_or(0),
            shard_p999_ns: snapshot
                .shards
                .iter()
                .map(|s| s.server.latency.p999_ns())
                .max()
                .unwrap_or(0),
            retests: snapshot
                .shards
                .iter()
                .map(|s| s.registry.counter_total("esharing_ks_tests_total"))
                .sum(),
        };
        let _ = engine.shutdown();
        outcome
    };
    let inline = run(DriftMode::Inline);
    let deferred = run(DriftMode::Deferred);
    let us = |ns: u64| ns as f64 / 1_000.0;
    println!(
        "drift re-test convoy (s{shards}, worst shard, {} inline / {} deferred re-tests):\n\
         \x20 drift_inline  : decision p50 {:8.1} µs, shard p99 {:8.1} µs, shard p999 {:8.1} µs\n\
         \x20 drift_deferred: decision p50 {:8.1} µs, shard p99 {:8.1} µs, shard p999 {:8.1} µs",
        inline.retests,
        deferred.retests,
        us(inline.decision_p50_ns),
        us(inline.shard_p99_ns),
        us(inline.shard_p999_ns),
        us(deferred.decision_p50_ns),
        us(deferred.shard_p99_ns),
        us(deferred.shard_p999_ns),
    );
    for (mode, o) in [("inline", &inline), ("deferred", &deferred)] {
        for (suffix, ns) in [
            ("decision_p50", o.decision_p50_ns),
            ("shard_p99", o.shard_p99_ns),
            ("shard_p999", o.shard_p999_ns),
        ] {
            emitter.record_duration(
                &format!("engine_s{shards}_drift_{mode}_{suffix}"),
                0,
                Duration::from_nanos(ns),
            );
        }
    }
    // The gate needs evidence: a smoke run's ~80 samples per shard make
    // p99 the max sample, and its sub-millisecond burst ends before the
    // drain worker's ~1 ms harvest quantum can pick a task up, so commits
    // legitimately fall back to the synchronous path. Full-size runs have
    // hundreds of samples per shard and multi-millisecond boundary gaps —
    // there the convoy bound is enforced.
    if args.smoke {
        println!("smoke mode: drift convoy rows emitted, p99 gate skipped (evidence-thin)");
        return;
    }
    let budget = (10 * deferred.decision_p50_ns).max(200_000);
    assert!(
        deferred.shard_p99_ns <= budget,
        "deferred worst-shard p99 {} ns exceeds 10x decision p50 (budget {} ns): \
         the re-test convoy is back on the seat",
        deferred.shard_p99_ns,
        budget
    );
}

/// What one arm of the hot-zone flood produced.
struct FloodOutcome {
    served: u64,
    shed: u64,
    decision_p50_ns: u64,
    shards_end: usize,
    splits: u64,
}

/// Drop-offs landing in zone 0 of a 2-way grid: a single-shard hotspot
/// with enough internal spread that a median split has demand on both
/// sides of the cut.
fn hot_stream(gen: &mut TripGenerator, bbox: BBox, n: usize) -> Vec<Point> {
    let map = ShardMap::uniform(bbox, 2);
    let mut out = Vec::with_capacity(n);
    for day in 14..60 {
        for p in destinations(&gen.generate_days(day, 1)) {
            if map.shard_of(p) == 0 {
                out.push(p);
                if out.len() == n {
                    return out;
                }
            }
        }
    }
    panic!("46 days of trips produced fewer than {n} zone-0 drop-offs");
}

/// Which policy drives one flood arm.
#[derive(Clone, Copy, PartialEq)]
enum FloodArm {
    /// Fixed shard set: the overload has nowhere to go.
    Static,
    /// Elastic lifecycle on instantaneous signals (queue depth + shed
    /// delta at each tick).
    Elastic,
    /// Elastic lifecycle on health-plane trends: projected occupancy
    /// (window mean + slope) and the windowed shed delta from the
    /// in-process tsdb, fed by 10 ms drain-worker sweeps into 50 ms
    /// rollup buckets.
    Trend,
}

/// One flood arm: a paced single-client overload aimed entirely at zone 0
/// of a 2-shard engine with a deliberately shallow (32-deep) downstream
/// ring and a 500 µs emulated fetch. The elastic arms pump
/// [`Engine::lifecycle_tick`] every 256 offers so the policy can split
/// the hot shard; the static arm runs the identical overload against the
/// fixed shard set. The trend arm additionally enables the health plane
/// at fine resolution so the policy reads projected occupancy instead of
/// instantaneous queue depth.
fn run_flood(history: &[Point], hot: &[Point], arm: FloodArm) -> FloodOutcome {
    let trend = arm == FloodArm::Trend;
    let elastic = arm != FloodArm::Static;
    let engine = Engine::start(
        history,
        EngineConfig {
            shards: 2,
            partition: Partition::UniformGrid,
            decision_path: DecisionPath::SyncShared,
            queue_capacity: 32,
            service_delay: Duration::from_micros(500),
            telemetry: TelemetryConfig::disabled(),
            lifecycle: LifecycleConfig {
                enabled: elastic,
                trend_policy: trend,
                trend_window_ms: 400,
                ..LifecycleConfig::default()
            },
            health: if trend {
                HealthConfig {
                    enabled: true,
                    sweep_interval_ms: 10,
                    tsdb: TsdbConfig::with_resolutions(vec![
                        RollupSpec::from_ms(50, 100),
                        RollupSpec::from_ms(1_000, 120),
                    ]),
                    ..HealthConfig::default()
                }
            } else {
                HealthConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    for (i, &p) in hot.iter().enumerate() {
        let _ = engine.submit_nowait(p).expect("engine is open");
        if elastic && i % 256 == 255 {
            let _ = engine.lifecycle_tick().expect("lifecycle is enabled");
        }
        // ~10k offers/s against 2k drains/s per shard: a 5x overload on
        // the hot shard until (in the elastic arm) splits add capacity.
        std::thread::sleep(Duration::from_micros(100));
    }
    let snapshot = engine.snapshot().expect("engine is running");
    let outcome = FloodOutcome {
        served: snapshot.metrics.requests_served,
        shed: snapshot.shed_total,
        decision_p50_ns: snapshot.fleet.latency.p50_ns(),
        shards_end: snapshot.shards_active,
        splits: snapshot.lifecycle.splits,
    };
    let _ = engine.shutdown();
    outcome
}

/// Static vs elastic vs trend-driven hot-zone flood: identical overload,
/// identical pacing; the arms differ only in whether — and on what
/// signals — the lifecycle policy may split the hot shard. Fails the run
/// unless both elastic arms shed strictly less than the static baseline,
/// both actually split, and neither regresses decision p50 (beyond a
/// generous noise margin — the inline decision is microseconds; the
/// comparison is overload relief, not decision speed).
fn flood_experiment(emitter: &mut PerfEmitter, history: &[Point], hot: &[Point]) {
    let static_arm = run_flood(history, hot, FloodArm::Static);
    let elastic_arm = run_flood(history, hot, FloodArm::Elastic);
    let trend_arm = run_flood(history, hot, FloodArm::Trend);
    let pct = |o: &FloodOutcome| 100.0 * o.shed as f64 / hot.len() as f64;
    println!(
        "hot-zone flood ({} offers at ~10k/s into zone 0 of 2):\n\
         \x20 flood_static : served {:6}, shed {:6} ({:5.1}%), decision p50 {:6.1} µs, {} shards\n\
         \x20 flood_elastic: served {:6}, shed {:6} ({:5.1}%), decision p50 {:6.1} µs, {} shards ({} splits)\n\
         \x20 flood_trend  : served {:6}, shed {:6} ({:5.1}%), decision p50 {:6.1} µs, {} shards ({} splits)",
        hot.len(),
        static_arm.served,
        static_arm.shed,
        pct(&static_arm),
        static_arm.decision_p50_ns as f64 / 1_000.0,
        static_arm.shards_end,
        elastic_arm.served,
        elastic_arm.shed,
        pct(&elastic_arm),
        elastic_arm.decision_p50_ns as f64 / 1_000.0,
        elastic_arm.shards_end,
        elastic_arm.splits,
        trend_arm.served,
        trend_arm.shed,
        pct(&trend_arm),
        trend_arm.decision_p50_ns as f64 / 1_000.0,
        trend_arm.shards_end,
        trend_arm.splits,
    );
    for (name, arm) in [("elastic", &elastic_arm), ("trend", &trend_arm)] {
        assert!(
            arm.shed < static_arm.shed,
            "{name} lifecycle must shed strictly less than the static baseline \
             ({name} {} vs static {})",
            arm.shed,
            static_arm.shed
        );
        assert!(
            arm.splits >= 1,
            "the flood must trip the {name} split policy"
        );
        // Non-regression, not a race: splits shrink each shard's station
        // set, so the inline decision should not get slower. 1.5x +
        // 100 µs absorbs scheduler noise at microsecond scales.
        let (s_p50, a_p50) = (
            static_arm.decision_p50_ns as f64,
            arm.decision_p50_ns as f64,
        );
        assert!(
            a_p50 <= s_p50 * 1.5 + 100_000.0,
            "{name} decision p50 regressed: {a_p50:.0} ns vs static {s_p50:.0} ns"
        );
    }
    for (name, arm) in [
        ("flood_static", &static_arm),
        ("flood_elastic", &elastic_arm),
        ("flood_trend", &trend_arm),
    ] {
        emitter.record_duration(name, arm.served as usize, Duration::ZERO);
        emitter.record_duration(&format!("{name}_shed"), arm.shed as usize, Duration::ZERO);
        emitter.record_duration(
            &format!("{name}_decision_p50"),
            0,
            Duration::from_nanos(arm.decision_p50_ns),
        );
    }
    emitter.record_duration(
        "flood_elastic_shards",
        elastic_arm.shards_end,
        Duration::ZERO,
    );
    emitter.record_duration("flood_trend_shards", trend_arm.shards_end, Duration::ZERO);
}

/// Scrapes the live engine's `/metrics`, fails unless the decision, shed
/// and KS-drift families are present, and writes the payload to
/// `telemetry_scrape.prom` (in `$ESHARING_BENCH_DIR` when set, else the
/// repo root) for the CI grep.
fn scrape_and_dump(engine: &Engine) {
    let server = engine
        .serve_telemetry("127.0.0.1:0")
        .expect("bind telemetry responder");
    let (status, body) = http_get(server.addr(), "/metrics").expect("self-scrape");
    assert_eq!(status, 200, "telemetry scrape failed: {body}");
    for family in [
        "esharing_decisions_total",
        "esharing_sheds_total",
        "esharing_ks_d_statistic",
        "esharing_decision_stage_ns",
        "esharing_drift_pending",
        "ks_retest_deferred",
        "esharing_ks_verdicts_committed_total",
    ] {
        assert!(body.contains(family), "telemetry scrape lacks {family}");
    }
    let dir = std::env::var_os("ESHARING_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let path = dir.join("telemetry_scrape.prom");
    match std::fs::write(&path, &body) {
        Ok(()) => println!(
            "scraped live /metrics ({} bytes) -> {}",
            body.len(),
            path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Warm vs cold JMS re-solve at full-city instance size — the speedup
/// claim behind the epochal re-optimization loop, measured directly on
/// the solver. Both arms solve the *same* 250-cell city instance: cold
/// from a fresh [`JmsSolverContext`] each repetition; warm by delta-mask
/// repair against the previous solution with a handful of weights moved
/// (the shape of one re-optimization pass: fixed candidate sites, small
/// demand delta). Emits `reopt_cold_ms` / `reopt_warm_ms` and fails the
/// run unless warm is at least 5x faster.
fn reopt_solver_bench(emitter: &mut PerfEmitter, history: &[Point]) {
    const REPS: usize = 9;
    let system = SystemConfig::default();
    let grid = Grid::new(system.grid_cell_m);
    let mut centroids = grid.weighted_centroids(history.iter().copied());
    centroids.sort_by_key(|c| std::cmp::Reverse(c.1));
    centroids.truncate(system.max_candidate_cells);
    let base = PlpInstance::from_weighted_centroids(&centroids, system.space_cost_m);
    // The perturbed variant bumps every ~40th cell's count: same sites,
    // same openings, a sparse weight delta under `mask`.
    let mut bumped = centroids.clone();
    let mut mask = Vec::new();
    let step = bumped.len() / 6 + 1;
    for j in (0..bumped.len()).step_by(step) {
        bumped[j].1 += 3;
        mask.push(j);
    }
    let alt = PlpInstance::from_weighted_centroids(&bumped, system.space_cost_m);

    let median = |mut v: Vec<Duration>| {
        v.sort();
        v[v.len() / 2]
    };
    let mut colds = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut ctx = JmsSolverContext::new();
        let t = Instant::now();
        let solution = ctx.solve(&base);
        colds.push(t.elapsed());
        std::hint::black_box(solution.facility_points(&base).len());
    }
    let cold = median(colds);
    let mut ctx = JmsSolverContext::new();
    ctx.solve(&base);
    let mut warms = Vec::with_capacity(REPS);
    for i in 0..REPS {
        // Alternate base/perturbed so every repetition repairs a real
        // delta rather than hitting the unchanged-instance fast path.
        let instance = if i % 2 == 0 { &alt } else { &base };
        let t = Instant::now();
        let solution = ctx.resolve(instance, &mask);
        warms.push(t.elapsed());
        std::hint::black_box(solution.facility_points(instance).len());
    }
    let warm = median(warms);
    let ratio = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
    println!(
        "reopt solver ({} candidate cells, {} weights moved): cold {:.3} ms, warm {:.3} ms \
         ({ratio:.1}x, median of {REPS})",
        base.len(),
        mask.len(),
        cold.as_secs_f64() * 1e3,
        warm.as_secs_f64() * 1e3,
    );
    assert!(
        ratio >= 5.0,
        "warm re-solve must be at least 5x faster than cold at full-city size \
         (cold {:?} vs warm {:?} = {ratio:.1}x)",
        cold,
        warm
    );
    emitter.record_duration("reopt_cold_ms", base.len(), cold);
    emitter.record_duration("reopt_warm_ms", base.len(), warm);
}

/// One arm of the drift-shift comparison.
struct ShiftOutcome {
    served: u64,
    walk_per_req: f64,
    swaps: u64,
}

/// The re-optimization loop end to end on the paper's §V-C regime shift:
/// the first half of the replay is weekday demand (commute flows into
/// metro/office cells), the second half weekend demand (recreation and
/// restaurant cells) — same city, flipped spatial distribution. Both
/// arms replay the identical stream through 1-shard engines; the on-arm
/// pumps [`Engine::reopt_tick`] every 256 submits so the loop can chase
/// the flip, the off-arm serves on its bootstrap landmarks throughout.
/// Asserts the flip triggers at least one hot-swap, that the swap lands
/// in the journal as a typed [`EventKind::EpochSwapped`], and that the
/// reopt metric families are exported on a live `/metrics` scrape; then
/// runs the swap-window decision-latency A/B (three interleaved pairs,
/// median worker-side decision p99 within 5% or 1 µs — a hot-swap must
/// never pause decisions). Emits `reopt_shift_{on,off}_walk_m` (walking
/// meters per request over the whole replay), `reopt_epoch_swaps`, and
/// `reopt_swap_p99_{on,off}`.
fn reopt_shift_experiment(
    emitter: &mut PerfEmitter,
    gen: &mut TripGenerator,
    history: &[Point],
    args: &Args,
) {
    let per_phase = (args.requests / 2).max(1_200);
    let phase = |gen: &mut TripGenerator, days: &[u64], n: usize| {
        let mut out = Vec::with_capacity(n);
        for &day in days {
            out.extend(destinations(&gen.generate_days(day, 1)));
            if out.len() >= n {
                break;
            }
        }
        assert!(out.len() >= n, "trip generator ran dry at day {days:?}");
        out.truncate(n);
        out
    };
    // Day 0 is a Monday: 1–4 and 8–11 are weekdays, 5/6 and 12/13 the
    // weekends that flip the spatial regime.
    let weekday = phase(gen, &[1, 2, 3, 8, 9], per_phase);
    let weekend = phase(gen, &[5, 6, 12, 13], per_phase);
    let stream: Vec<Point> = weekday.iter().chain(&weekend).copied().collect();

    let reopt_on = ReoptConfig {
        enabled: true,
        similarity_threshold: 1.0,
        ..ReoptConfig::default()
    };
    let engine_for = |reopt: ReoptConfig| {
        Engine::start(
            history,
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                decision_path: args.path,
                service_delay: args.delay,
                reopt,
                ..EngineConfig::default()
            },
        )
    };
    let run = |reopt: ReoptConfig| {
        let engine = engine_for(reopt);
        let loop_on = engine.landmark_table().is_some();
        for (i, &p) in stream.iter().enumerate() {
            engine.submit(p).expect("engine is open");
            if loop_on && i % 256 == 255 {
                let _ = engine.reopt_tick().expect("loop enabled");
            }
        }
        let snapshot = engine.snapshot().expect("engine is running");
        let outcome = ShiftOutcome {
            served: snapshot.metrics.requests_served,
            walk_per_req: snapshot.metrics.placement.walking
                / snapshot.metrics.requests_served.max(1) as f64,
            swaps: engine.reopt_stats().swaps_total,
        };
        (engine, outcome, snapshot)
    };

    let (on_engine, on, on_snapshot) = run(reopt_on.clone());
    assert!(
        on.swaps >= 1,
        "the weekday→weekend flip must trigger at least one landmark hot-swap"
    );
    assert!(
        on_snapshot
            .events
            .iter()
            .any(|r| matches!(r.event.kind, EventKind::EpochSwapped { .. })),
        "hot-swaps must land in the journal as typed EpochSwapped events"
    );
    {
        let server = on_engine
            .serve_telemetry("127.0.0.1:0")
            .expect("bind reopt responder");
        let (status, body) = http_get(server.addr(), "/metrics").expect("reopt self-scrape");
        assert_eq!(status, 200, "reopt scrape failed: {body}");
        for family in [
            "esharing_epoch_swaps_total",
            "esharing_reopt_solve_ns",
            "esharing_reopt_solves_total",
        ] {
            assert!(body.contains(family), "reopt scrape lacks {family}");
        }
    }
    let _ = on_engine.shutdown();
    let (off_engine, off, _) = run(ReoptConfig::default());
    let _ = off_engine.shutdown();
    println!(
        "drift-shift replay ({per_phase} weekday + {per_phase} weekend requests):\n\
         \x20 reopt on : served {:6}, walking {:8.1} m/req, {} hot-swap(s)\n\
         \x20 reopt off: served {:6}, walking {:8.1} m/req (bootstrap landmarks throughout)",
        on.served, on.walk_per_req, on.swaps, off.served, off.walk_per_req,
    );
    emitter.record_duration(
        "reopt_shift_on_walk_m",
        on.walk_per_req.round() as usize,
        Duration::ZERO,
    );
    emitter.record_duration(
        "reopt_shift_off_walk_m",
        off.walk_per_req.round() as usize,
        Duration::ZERO,
    );
    emitter.record_duration("reopt_epoch_swaps", on.swaps as usize, Duration::ZERO);

    // --- Swap-window p99: hot-swaps must not pause decisions. ----------
    const TOLERANCE: f64 = 0.05;
    const NOISE_FLOOR_NS: f64 = 1_000.0;
    const PAIRS: usize = 5;
    // Rate-limit the replay so it spans hundreds of milliseconds: the
    // background loop needs real wall-clock time to prime, re-solve and
    // commit swaps *inside* the measured window. An unpaced replay of a
    // smoke-sized stream finishes in single-digit milliseconds — before
    // the loop's first cold solve lands — and measures nothing.
    let p99_rate = (stream.len() as f64 / 0.25).min(20_000.0);
    let p99_run = |reopt: ReoptConfig| {
        let engine = engine_for(reopt);
        let report = replay(
            &engine,
            &stream,
            &ReplayConfig {
                clients: args.clients,
                rate_per_s: Some(p99_rate),
            },
        );
        assert_eq!(report.degraded, 0, "swap-window A/B must not shed");
        let snapshot = engine.snapshot().expect("engine is running");
        let swaps = engine.reopt_stats().swaps_total;
        let _ = engine.shutdown();
        (snapshot.fleet.latency.p99_ns() as f64, swaps)
    };
    // The on-arm runs the loop on its background thread at a 10 ms
    // cadence, so re-solves and swaps land *during* the replay — the
    // measured p99 covers live swap windows, not a quiesced engine. The
    // cadence is deliberately not faster: on a single shared core a 2 ms
    // loop spends a large fraction of the window inside solves, and the
    // resulting CPU *sharing* (µs-scale preemption of the decision
    // thread, not pausing) drowns the signal this gate is after.
    let background = ReoptConfig {
        interval_ms: 10,
        ..reopt_on
    };
    // Scheduling interference on a shared core is one-sided — it can only
    // ADD latency to a pair, never subtract it — so the minimum across
    // pairs is the estimator of the uncontended p99. A real swap pause is
    // systematic: it inflates every pair, the minimum included, so the
    // gate still catches it; one preempted pair no longer flips the
    // verdict the way a median over few pairs can.
    let best_of = |v: [f64; PAIRS]| {
        v.into_iter()
            .min_by(|a, b| a.partial_cmp(b).expect("finite latencies"))
            .expect("PAIRS > 0")
    };
    let mut ons = [0.0f64; PAIRS];
    let mut offs = [0.0f64; PAIRS];
    let mut swaps_seen = 0u64;
    for i in 0..PAIRS {
        let (p99, swaps) = p99_run(background.clone());
        ons[i] = p99;
        swaps_seen += swaps;
        let (p99, _) = p99_run(ReoptConfig::default());
        offs[i] = p99;
    }
    assert!(
        swaps_seen >= 1,
        "the swap-window A/B must commit at least one live hot-swap"
    );
    let (on_p99, off_p99) = (best_of(ons), best_of(offs));
    let rel = (on_p99 - off_p99) / off_p99.max(f64::MIN_POSITIVE);
    assert!(
        rel <= TOLERANCE || (on_p99 - off_p99) <= NOISE_FLOOR_NS,
        "hot-swaps paused the decision path: worker-side p99 {on_p99:.0} ns with the loop \
         vs {off_p99:.0} ns without ({:+.1}%, {swaps_seen} swaps; budget 5% or 1 µs)",
        100.0 * rel
    );
    println!(
        "swap-window decision p99: {on_p99:.0} ns with live hot-swaps ({swaps_seen} committed) \
         vs {off_p99:.0} ns without the loop ({:+.2}% — within the {}, best of {PAIRS} pairs)",
        100.0 * rel,
        if rel <= TOLERANCE {
            "5% budget"
        } else {
            "1 µs clock-noise floor"
        }
    );
    emitter.record_duration("reopt_swap_p99_on", 0, Duration::from_nanos(on_p99 as u64));
    emitter.record_duration(
        "reopt_swap_p99_off",
        0,
        Duration::from_nanos(off_p99 as u64),
    );
}

fn main() {
    let args = parse_args();
    for &s in &args.shards {
        assert!(
            s > 0 && BALANCE_ZONES.is_multiple_of(s),
            "shard counts must divide {BALANCE_ZONES} so the balanced stream nests (got {s})"
        );
    }

    let city = SyntheticCity::generate(&CityConfig::default());
    let mut gen = TripGenerator::new(&city, 2017);
    let history = destinations(&gen.generate_days(0, 1));
    let bbox = BBox::from_points(history.iter().copied()).expect("non-empty history");
    let map = ShardMap::uniform(bbox, BALANCE_ZONES);
    let stream = balanced_stream(&mut gen, &map, args.requests);
    println!(
        "engine scaling — {} replayed requests, {} clients, {} µs emulated service delay, \
         {} decision path, {} drift re-tests",
        stream.len(),
        args.clients,
        args.delay.as_micros(),
        match args.path {
            DecisionPath::SyncShared => "shared-nothing fast",
            DecisionPath::Mailbox => "mailbox-fallback",
        },
        match args.drift {
            DriftMode::Inline => "inline",
            DriftMode::Deferred => "deferred",
        }
    );

    let mut emitter = PerfEmitter::new("engine");
    let mut table = Table::new(vec![
        "backend".into(),
        "req/s".into(),
        "speedup".into(),
        "p50 ms".into(),
        "p90 ms".into(),
        "p99 ms".into(),
        "p99.9 ms".into(),
        "degraded".into(),
    ]);

    let base = run_server(&history, &stream, args.delay, args.clients);
    record(&mut emitter, "request_server", &base);
    let base_rate = base.served_per_s();
    table.row(vec![
        "request_server".into(),
        format!("{base_rate:.0}"),
        "1.00x".into(),
        format!("{:.2}", base.latency.p50_us / 1_000.0),
        format!("{:.2}", base.latency.p90_us / 1_000.0),
        format!("{:.2}", base.latency.p99_us / 1_000.0),
        format!("{:.2}", base.latency.p999_us / 1_000.0),
        format!("{}", base.degraded),
    ]);

    let mut widest_snapshot = None;
    let mut widest = 0usize;
    for &shards in &args.shards {
        let engine = start_engine(&history, shards, args.delay, args.path, args.drift);
        let report = replay(
            &engine,
            &stream,
            &ReplayConfig {
                clients: args.clients,
                rate_per_s: None,
            },
        );
        let name = format!("engine_s{shards}");
        record(&mut emitter, &name, &report);
        let rate = report.served_per_s();
        table.row(vec![
            name.clone(),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate),
            format!("{:.2}", report.latency.p50_us / 1_000.0),
            format!("{:.2}", report.latency.p90_us / 1_000.0),
            format!("{:.2}", report.latency.p99_us / 1_000.0),
            format!("{:.2}", report.latency.p999_us / 1_000.0),
            format!("{}", report.degraded),
        ]);
        // The widest configuration doubles as the scrape target: its
        // /metrics endpoint is hit while the engine is still live, just
        // after the replay drained.
        if args.serve && Some(&shards) == args.shards.iter().max() {
            scrape_and_dump(&engine);
        }
        // Worker-side arrival → decision quantiles from the merged fleet
        // histogram (the client-side summary above includes routing and
        // admission; these isolate the serving path) …
        let snapshot = engine.snapshot().expect("engine is running");
        let fleet = &snapshot.fleet.latency;
        for (suffix, ns) in [
            ("decision_p50", fleet.p50_ns()),
            ("decision_p90", fleet.p90_ns()),
            ("decision_p99", fleet.p99_ns()),
        ] {
            emitter.record_duration(&format!("{name}_{suffix}"), 0, Duration::from_nanos(ns));
        }
        // … and per shard, from the shard histograms. Each quantile comes
        // with the sample count it rests on; a shard that served fewer
        // than 100 requests gets its tail rows flagged instead of printed
        // as if a p999 over 40 samples meant anything.
        for s in &snapshot.shards {
            let lat = &s.server.latency;
            let mut samples = 0;
            for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
                let (ns, n) = lat.quantile_ns_with_count(q);
                samples = n;
                emitter.record_duration(
                    &format!("{name}_shard{}_{suffix}", s.shard),
                    0,
                    Duration::from_nanos(ns),
                );
            }
            if samples < 100 {
                println!(
                    "note: {name}_shard{} quantiles rest on {samples} samples (<100) — \
                     treat the tail rows as evidence-thin",
                    s.shard
                );
            }
        }
        if shards >= widest {
            widest = shards;
            widest_snapshot = Some(snapshot);
        }
        let _ = engine.shutdown();
    }
    println!("{table}");
    match args.path {
        DecisionPath::SyncShared => println!(
            "the single worker blocks on every {} µs downstream call, paying wake-up\n\
             latency and decision compute serially; on the shared-nothing fast path\n\
             clients decide inline under the shard seat while each shard's drain\n\
             worker pipelines the downstream ring (back-to-back issue, compute\n\
             hidden in the fetch window), so no request ever pays a thread handoff.",
            args.delay.as_micros()
        ),
        DecisionPath::Mailbox => println!(
            "mailbox fallback: every request pays the enqueue → worker wake-up →\n\
             reply round trip; this is the measured baseline the fast path is\n\
             judged against.",
        ),
    }

    // The re-test convoy, isolated: same stream, widest width, inline vs
    // deferred boundary evaluation.
    drift_experiment(&mut emitter, &history, &stream, &args, widest);

    assert_telemetry_overhead(
        &mut emitter,
        &history,
        &stream,
        args.delay,
        args.clients,
        args.path,
    );

    // Health plane: overhead A/B plus the breach/no-breach exercise, and
    // the elastic-lifecycle flood (fast path only: the health pump rides
    // the fast shards' drain workers and split/merge are shared-nothing
    // operations; the mailbox baseline is health-inert and has no seats
    // to retire).
    if args.path == DecisionPath::SyncShared {
        assert_health_overhead(
            &mut emitter,
            &history,
            &stream,
            args.delay,
            args.clients,
            args.path,
        );
        health_experiment(&mut emitter, &history, &stream, &args);
        let hot = hot_stream(&mut gen, bbox, if args.smoke { 1_500 } else { 6_000 });
        flood_experiment(&mut emitter, &history, &hot);
        // Epochal re-optimization: always measured on full runs (the
        // BENCH trajectory carries the warm/cold rows), opt-in under
        // --smoke (the CI gate passes --reopt explicitly).
        if args.reopt || !args.smoke {
            reopt_solver_bench(&mut emitter, &history);
            reopt_shift_experiment(&mut emitter, &mut gen, &history, &args);
        }
    } else {
        println!(
            "mailbox fallback: skipping the health plane and elastic-lifecycle flood \
             (fast path only)"
        );
    }

    if args.smoke && std::env::var_os("ESHARING_BENCH_DIR").is_none() {
        println!("smoke mode: skipping BENCH_engine.json / snapshot dump");
        return;
    }
    let path = emitter.write().expect("write BENCH_engine.json");
    println!("wrote {}", path.display());
    if args.smoke {
        println!("smoke mode: skipping snapshot dump");
        return;
    }
    if let Some(snapshot) = widest_snapshot {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let out = dir.join("engine_snapshot.json");
        if std::fs::write(&out, snapshot.to_json()).is_ok() {
            println!("wrote {}", out.display());
        }
    }
}
