//! Fig. 5 — Designs of the penalty functions: (a) the probability that a
//! new parking is established, (b) the first-order derivatives.
//!
//! Prints the g(c) and g'(c) series for Types I–III with the paper's
//! tolerance L = 200 m, over walking costs 0..4L.

use esharing_bench::Table;
use esharing_placement::penalty::{PenaltyFunction, PenaltyType};

const L: f64 = 200.0;

fn main() {
    println!("Fig. 5 — penalty functions and derivatives (L = {L} m)\n");
    let funcs = [
        ("Type I", PenaltyFunction::new(PenaltyType::TypeI, L)),
        ("Type II", PenaltyFunction::new(PenaltyType::TypeII, L)),
        ("Type III", PenaltyFunction::new(PenaltyType::TypeIII, L)),
    ];

    let mut ga = Table::new(vec![
        "c (m)".into(),
        "g_I".into(),
        "g_II".into(),
        "g_III".into(),
    ]);
    let mut gb = Table::new(vec![
        "c (m)".into(),
        "g'_I".into(),
        "g'_II".into(),
        "g'_III".into(),
    ]);
    let mut c = 0.0;
    while c <= 4.0 * L + 1e-9 {
        ga.row(vec![
            format!("{c:.0}"),
            format!("{:.4}", funcs[0].1.g(c)),
            format!("{:.4}", funcs[1].1.g(c)),
            format!("{:.4}", funcs[2].1.g(c)),
        ]);
        gb.row(vec![
            format!("{c:.0}"),
            format!("{:.5}", funcs[0].1.derivative(c)),
            format!("{:.5}", funcs[1].1.derivative(c)),
            format!("{:.5}", funcs[2].1.derivative(c)),
        ]);
        c += 50.0;
    }
    println!("(a) probability of establishing a new parking, g(c):\n{ga}");
    println!("(b) first-order derivatives, g'(c):\n{gb}");
    println!("checks: Type II hits 0 at c = L; Type I stays above 0.2 beyond 3L (paper §III-D).");
}
