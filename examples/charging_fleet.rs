//! Tier-2 deep dive: incentives vs plain maintenance on the same fleet.
//!
//! Compares the maintenance economics of a drained fleet across incentive
//! levels α — per-station aggregation, incentive payments, the operator's
//! tour and the fraction of bikes recharged within a fixed shift — the
//! machinery behind the paper's Table VI.
//!
//! Run with: `cargo run --release --example charging_fleet`

use e_sharing::charging::{
    tsp, ChargingCostParams, IncentiveMechanism, Operator, StationEnergy, UserModel,
};
use e_sharing::geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizes a plausible evening energy state: stations on a jittered
/// grid, each holding a Poisson-tailed count of low-battery bikes.
fn evening_state(seed: u64) -> Vec<StationEnergy> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for gx in 0..5 {
        for gy in 0..5 {
            let location = Point::new(
                gx as f64 * 600.0 + rng.gen_range(0.0..200.0),
                gy as f64 * 600.0 + rng.gen_range(0.0..200.0),
            );
            // A tail: most stations hold a handful, a few hold many.
            let low_bikes = if rng.gen_range(0.0..1.0) < 0.2 {
                rng.gen_range(15..30)
            } else {
                rng.gen_range(0..8)
            };
            out.push(StationEnergy {
                location,
                low_bikes,
                arrivals: 80,
            });
        }
    }
    out
}

fn main() {
    let stations = evening_state(11);
    let total_low: usize = stations.iter().map(|s| s.low_bikes).sum();
    let with_demand = stations.iter().filter(|s| s.low_bikes > 0).count();
    println!("evening state: {total_low} low bikes across {with_demand} of 25 stations\n");

    let params = ChargingCostParams::default();
    let operator = Operator::new(Point::ORIGIN, 4.0, 600.0, 3.0 * 3_600.0).with_skip_below(2);

    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "alpha", "relocated", "paid ($)", "sites left", "tour ($)", "charged", "route km"
    );
    for alpha in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mechanism = IncentiveMechanism::new(params, UserModel::default(), alpha, 99);
        let outcome = mechanism.run_period(&stations);
        let after = Operator::stations_after_incentives(&stations, &outcome);
        let shift = operator.run_shift(&after, &params);
        let demand: Vec<Point> = after
            .iter()
            .filter(|s| s.low_bikes > 2)
            .map(|s| s.location)
            .collect();
        let route = if demand.is_empty() {
            0.0
        } else {
            tsp::route_length(Point::ORIGIN, &demand, &tsp::solve(Point::ORIGIN, &demand))
        };
        println!(
            "{alpha:>6.1} {:>10} {:>10.0} {:>12} {:>10.0} {:>9.1}% {:>10.1}",
            outcome.relocated,
            outcome.incentives_paid,
            outcome.stations_needing_service(),
            shift.tour_cost + outcome.incentives_paid,
            100.0 * shift.charged_fraction(),
            route / 1_000.0,
        );
    }

    println!(
        "\nreading: α=0 leaves the tail scattered (long route, bikes missed);\n\
         moderate α aggregates cheaply; α=1 relocates no more but pays ~2.5x as much."
    );
}
