//! Static fleet rebalancing — the substrate assumption of §II-B.
//!
//! The paper assumes "the reserves of E-bikes are balanced, which satisfy
//! the demand and do not overwhelm the capacity by executing the
//! procedures in \[9\]–\[11\]" (the static-rebalancing literature). This
//! module implements that procedure: given per-station inventories and
//! demand-derived targets, a truck of limited capacity tours the stations
//! picking up surpluses and dropping them at deficits, following the
//! classical single-vehicle static rebalancing formulation of Chemla,
//! Meunier & Wolfler Calvo \[9\] solved with a greedy nearest-feasible
//! heuristic plus the TSP improvement pass.

use crate::tsp;
use esharing_geo::Point;
use serde::{Deserialize, Serialize};

/// One station's inventory versus its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StationInventory {
    /// Bikes currently parked.
    pub bikes: usize,
    /// Bikes the station should hold to satisfy forecast demand.
    pub target: usize,
}

impl StationInventory {
    /// Signed imbalance: positive = surplus to remove, negative = deficit
    /// to fill.
    pub fn imbalance(&self) -> i64 {
        self.bikes as i64 - self.target as i64
    }
}

/// One stop of the rebalancing tour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalanceStop {
    /// Index of the station visited.
    pub station: usize,
    /// Bikes loaded onto the truck (positive) or unloaded (negative).
    pub delta: i64,
}

/// The computed rebalancing plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RebalancePlan {
    /// Stops in execution order.
    pub stops: Vec<RebalanceStop>,
    /// Truck travel distance in meters (from the depot through all stops).
    pub distance_m: f64,
    /// Total bikes moved (sum of pickups).
    pub bikes_moved: u64,
    /// Remaining absolute imbalance after the plan executes (0 when supply
    /// matches demand and capacity sufficed).
    pub residual_imbalance: u64,
}

/// Computes a single-truck rebalancing plan.
///
/// The heuristic visits stations in shortest-route order (nearest
/// neighbour + 2-opt over all imbalanced stations) and greedily loads
/// surpluses / unloads deficits subject to the truck capacity. When total
/// supply and demand differ, the residual is reported rather than
/// silently dropped.
///
/// # Panics
///
/// Panics if `locations` and `inventories` differ in length or
/// `capacity == 0`.
pub fn plan_rebalance(
    depot: Point,
    locations: &[Point],
    inventories: &[StationInventory],
    capacity: usize,
) -> RebalancePlan {
    assert_eq!(
        locations.len(),
        inventories.len(),
        "locations and inventories must align"
    );
    assert!(capacity > 0, "truck capacity must be positive");
    // Only imbalanced stations matter.
    let involved: Vec<usize> = (0..locations.len())
        .filter(|&i| inventories[i].imbalance() != 0)
        .collect();
    if involved.is_empty() {
        return RebalancePlan {
            stops: Vec::new(),
            distance_m: 0.0,
            bikes_moved: 0,
            residual_imbalance: 0,
        };
    }
    let points: Vec<Point> = involved.iter().map(|&i| locations[i]).collect();
    let order = tsp::solve(depot, &points);

    // The tour may need several passes: a deficit visited while the truck
    // is empty is deferred to the next pass (classical multi-pass greedy).
    let mut remaining: Vec<i64> = involved
        .iter()
        .map(|&i| inventories[i].imbalance())
        .collect();
    let mut stops = Vec::new();
    let mut load = 0usize;
    let mut at = depot;
    let mut distance_m = 0.0;
    let mut bikes_moved = 0u64;
    loop {
        let mut progressed = false;
        for &tour_idx in &order {
            let station = involved[tour_idx];
            let imb = remaining[tour_idx];
            if imb > 0 && load < capacity {
                // Surplus: pick up as much as fits.
                let take = (imb as usize).min(capacity - load);
                load += take;
                remaining[tour_idx] -= take as i64;
                bikes_moved += take as u64;
                distance_m += at.distance(locations[station]);
                at = locations[station];
                stops.push(RebalanceStop {
                    station,
                    delta: take as i64,
                });
                progressed = true;
            } else if imb < 0 && load > 0 {
                // Deficit: drop as much as we carry.
                let give = ((-imb) as usize).min(load);
                load -= give;
                remaining[tour_idx] += give as i64;
                distance_m += at.distance(locations[station]);
                at = locations[station];
                stops.push(RebalanceStop {
                    station,
                    delta: -(give as i64),
                });
                progressed = true;
            }
        }
        let balanced = remaining.iter().all(|&r| r == 0);
        if balanced || !progressed {
            break;
        }
    }
    // Any load left on the truck returns to the depot (it counts as moved
    // but also as residual if no deficit wanted it).
    let residual: u64 = remaining.iter().map(|r| r.unsigned_abs()).sum::<u64>() + load as u64;
    RebalancePlan {
        stops,
        distance_m,
        bikes_moved,
        residual_imbalance: residual,
    }
}

/// Applies a plan to the inventories (for simulation), returning the new
/// bike counts.
///
/// # Panics
///
/// Panics if a stop would drive a station's count negative — plans
/// produced by [`plan_rebalance`] never do.
pub fn apply_plan(inventories: &[StationInventory], plan: &RebalancePlan) -> Vec<usize> {
    let mut bikes: Vec<i64> = inventories.iter().map(|s| s.bikes as i64).collect();
    for stop in &plan.stops {
        bikes[stop.station] -= stop.delta;
        assert!(
            bikes[stop.station] >= 0,
            "plan drove station {} negative",
            stop.station
        );
    }
    bikes.into_iter().map(|b| b as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station(bikes: usize, target: usize) -> StationInventory {
        StationInventory { bikes, target }
    }

    fn line_locations(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64 * 500.0, 0.0)).collect()
    }

    #[test]
    fn balanced_input_trivial_plan() {
        let locations = line_locations(3);
        let inv = vec![station(5, 5), station(3, 3), station(0, 0)];
        let plan = plan_rebalance(Point::ORIGIN, &locations, &inv, 10);
        assert!(plan.stops.is_empty());
        assert_eq!(plan.bikes_moved, 0);
        assert_eq!(plan.residual_imbalance, 0);
        assert_eq!(plan.distance_m, 0.0);
    }

    #[test]
    fn simple_transfer_balances_exactly() {
        let locations = line_locations(2);
        let inv = vec![station(8, 3), station(1, 6)];
        let plan = plan_rebalance(Point::ORIGIN, &locations, &inv, 10);
        assert_eq!(plan.bikes_moved, 5);
        assert_eq!(plan.residual_imbalance, 0);
        let after = apply_plan(&inv, &plan);
        assert_eq!(after, vec![3, 6]);
    }

    #[test]
    fn capacity_forces_multiple_passes() {
        // 9 bikes must move but the truck holds 3: needs 3 pickups.
        let locations = line_locations(2);
        let inv = vec![station(9, 0), station(0, 9)];
        let plan = plan_rebalance(Point::ORIGIN, &locations, &inv, 3);
        assert_eq!(plan.bikes_moved, 9);
        assert_eq!(plan.residual_imbalance, 0);
        let pickups = plan.stops.iter().filter(|s| s.delta > 0).count();
        assert!(pickups >= 3, "capacity 3 needs >= 3 pickup stops");
        assert_eq!(apply_plan(&inv, &plan), vec![0, 9]);
    }

    #[test]
    fn supply_shortage_reports_residual() {
        let locations = line_locations(2);
        let inv = vec![station(2, 0), station(0, 10)];
        let plan = plan_rebalance(Point::ORIGIN, &locations, &inv, 10);
        assert_eq!(plan.bikes_moved, 2);
        assert_eq!(plan.residual_imbalance, 8);
        assert_eq!(apply_plan(&inv, &plan), vec![0, 2]);
    }

    #[test]
    fn surplus_without_demand_reports_residual() {
        let locations = line_locations(2);
        let inv = vec![station(10, 2), station(5, 5)];
        let plan = plan_rebalance(Point::ORIGIN, &locations, &inv, 4);
        // 4 picked up (capacity), nowhere to drop: residual includes the
        // load plus the untouched surplus.
        assert_eq!(plan.residual_imbalance, 8);
    }

    #[test]
    fn every_station_reaches_target_in_mixed_case() {
        let locations = vec![
            Point::new(0.0, 0.0),
            Point::new(800.0, 100.0),
            Point::new(300.0, 900.0),
            Point::new(1_500.0, 400.0),
            Point::new(600.0, 500.0),
        ];
        let inv = vec![
            station(12, 4),
            station(0, 5),
            station(7, 7),
            station(1, 4),
            station(3, 3),
        ];
        let plan = plan_rebalance(Point::ORIGIN, &locations, &inv, 6);
        assert_eq!(plan.residual_imbalance, 0);
        let after = apply_plan(&inv, &plan);
        for (s, &b) in inv.iter().zip(&after) {
            assert_eq!(b, s.target);
        }
        assert!(plan.distance_m > 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = plan_rebalance(Point::ORIGIN, &line_locations(1), &[station(1, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = plan_rebalance(Point::ORIGIN, &line_locations(2), &[station(1, 0)], 1);
    }

    #[test]
    fn imbalance_sign_convention() {
        assert_eq!(station(5, 3).imbalance(), 2);
        assert_eq!(station(3, 5).imbalance(), -2);
        assert_eq!(station(4, 4).imbalance(), 0);
    }
}
