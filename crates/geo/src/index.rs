//! Grid-bucketed nearest-neighbour indexes.
//!
//! The online placement algorithms repeatedly ask "which established parking
//! is closest to this destination?" for every streamed request. A linear
//! scan is O(|P|) per query; these indexes hash parking locations into grid
//! buckets and search outward ring by ring, giving near-O(1) queries for
//! the spatially uniform workloads in the paper.
//!
//! Two implementations share identical query semantics:
//!
//! * [`NearestNeighborIndex`] — the serving-path implementation: an
//!   open-addressed flat hash grid (linear probing over a power-of-two
//!   table of cells) whose points live in struct-of-arrays coordinate
//!   pools threaded into per-cell chains. `insert`, `remove` and `nearest`
//!   touch no allocator once the table and pools have grown to working-set
//!   size, and [`NearestNeighborIndex::within_into`] reuses an internal
//!   scratch buffer so range queries are allocation-free too.
//! * [`NearestNeighborIndexReference`] — the original `BTreeMap<Cell,
//!   Vec<Point>>` bucket store, kept as the equivalence oracle (the same
//!   pattern as `jms_greedy_reference`): simple enough to audit, slow
//!   enough to never tempt the hot path.
//!
//! Both resolve ties identically — see [`candidate_cmp`] — so every query
//! has exactly one correct answer and the proptest suite in
//! `tests/index_equivalence.rs` can demand bitwise-equal results under
//! random interleavings of inserts, removes and queries.

use crate::{Cell, Grid, Point};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Rings scanned cell-by-cell before falling back to a full bucket scan.
const MAX_RING_SCAN: u64 = 32;

/// Total order on `(point, distance)` candidates: nearer first, ties broken
/// by `x` then `y` (both via `f64::total_cmp`).
///
/// This is the tie-breaking rule both index implementations apply to
/// `nearest` (the minimum under this order wins) and `within` (results are
/// sorted ascending under it), so replay determinism never depends on
/// bucket iteration order or removal history.
#[inline]
pub fn candidate_cmp(a: (Point, f64), b: (Point, f64)) -> Ordering {
    a.1.total_cmp(&b.1)
        .then_with(|| a.0.x.total_cmp(&b.0.x))
        .then_with(|| a.0.y.total_cmp(&b.0.y))
}

/// Whether candidate `(p, d)` beats the current best under [`candidate_cmp`].
#[inline]
fn better(p: Point, d: f64, best: Option<(Point, f64)>) -> bool {
    match best {
        None => true,
        Some(b) => candidate_cmp((p, d), b) == Ordering::Less,
    }
}

/// Sorts `(distance, point)` pairs ascending under [`candidate_cmp`].
#[inline]
fn sort_candidates(v: &mut [(f64, Point)]) {
    v.sort_unstable_by(|a, b| candidate_cmp((a.1, a.0), (b.1, b.0)));
}

/// Walks the perimeter cells of the Chebyshev ring at distance `ring`
/// around `center` (the center cell itself for `ring == 0`).
fn for_each_ring_cell<F: FnMut(Cell)>(center: Cell, ring: u64, mut f: F) {
    let r = ring as i64;
    if r == 0 {
        f(center);
        return;
    }
    for col in (center.col - r)..=(center.col + r) {
        f(Cell::new(col, center.row - r));
        f(Cell::new(col, center.row + r));
    }
    for row in (center.row - r + 1)..=(center.row + r - 1) {
        f(Cell::new(center.col - r, row));
        f(Cell::new(center.col + r, row));
    }
}

/// The behavioural contract shared by both index implementations, so
/// latency-critical consumers (and their benchmarks) can be written once
/// and instantiated against either backend.
pub trait SpatialIndex {
    /// Creates an index with the given bucket size in meters.
    fn with_bucket_size(bucket_size: f64) -> Self;
    /// Number of indexed points.
    fn len(&self) -> usize;
    /// Whether the index holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Inserts a point (duplicates allowed).
    fn insert(&mut self, p: Point);
    /// Removes one occurrence of `p`; `true` if a point was removed.
    fn remove(&mut self, p: Point) -> bool;
    /// Exact nearest neighbour under [`candidate_cmp`].
    fn nearest(&self, query: Point) -> Option<(Point, f64)>;
    /// All points within `radius` (inclusive), ascending by
    /// [`candidate_cmp`].
    fn within(&self, query: Point, radius: f64) -> Vec<Point>;
    /// Every indexed point, in an order deterministic for a fixed history
    /// of operations.
    fn points(&self) -> Vec<Point>;
}

// ---------------------------------------------------------------------------
// Flat hash grid
// ---------------------------------------------------------------------------

/// Table-slot sentinel: no cell claims this slot.
const VACANT: u32 = u32::MAX;
/// Table-slot sentinel: a cell claims this slot but its chain is empty
/// (all of its points were removed).
const NO_POINTS: u32 = u32::MAX - 1;
/// Point-pool chain terminator.
const NIL: u32 = u32::MAX;

/// A dynamic nearest-neighbour index over planar points.
///
/// Supports insertion, removal (the paper removes a station from `P` when
/// customers pick up all its e-bikes), and exact nearest-neighbour queries
/// with the deterministic tie-break of [`candidate_cmp`], so algorithms
/// built on the index replay identically for a fixed seed.
///
/// Internally an open-addressed hash table maps grid cells to chains of
/// point slots stored struct-of-arrays (`px`/`py`/`next`); removed slots
/// recycle through a free list, so the steady-state serving loop performs
/// no heap allocation.
///
/// # Examples
///
/// ```
/// use esharing_geo::{NearestNeighborIndex, Point};
///
/// let mut index = NearestNeighborIndex::new(100.0);
/// index.insert(Point::new(0.0, 0.0));
/// index.insert(Point::new(500.0, 500.0));
/// let (nearest, d) = index.nearest(Point::new(80.0, 60.0)).unwrap();
/// assert_eq!(nearest, Point::new(0.0, 0.0));
/// assert!((d - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct NearestNeighborIndex {
    grid: Grid,
    /// Open-addressed cell table (power-of-two capacity, linear probing).
    /// `cells[i]` is meaningful only where `heads[i] != VACANT`.
    cells: Vec<Cell>,
    /// Chain head per table slot, or a sentinel (`VACANT` / `NO_POINTS`).
    heads: Vec<u32>,
    /// `capacity - 1`, for masked probing.
    mask: usize,
    /// Slots claimed by a cell, including stale `NO_POINTS` entries.
    slots_used: usize,
    /// Slots whose chain holds at least one point.
    live_cells: usize,
    /// Struct-of-arrays point pool; `next` doubles as the free-list link.
    px: Vec<f64>,
    py: Vec<f64>,
    next: Vec<u32>,
    /// Free-list head into the pool.
    free: u32,
    len: usize,
    /// Bounding box over cells that ever held a point (never shrinks, so
    /// it is a conservative bound for ring-scan termination).
    bounds: Option<(Cell, Cell)>,
    /// Reusable `(distance, point)` scratch for ring scans in
    /// [`Self::within_into`].
    scratch: Vec<(f64, Point)>,
}

#[inline]
fn hash_cell(cell: Cell) -> u64 {
    // Two odd multiplicative mixes folded through a splitmix64 finalizer:
    // cells are tiny consecutive integers, so the finalizer does the work
    // of spreading them across the table.
    let mut h = (cell.col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= (cell.row as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl NearestNeighborIndex {
    /// Creates an index with the given bucket size in meters. A bucket size
    /// close to the typical nearest-neighbour distance performs best.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_size` is not strictly positive and finite.
    pub fn new(bucket_size: f64) -> Self {
        const INITIAL_CAPACITY: usize = 16;
        NearestNeighborIndex {
            grid: Grid::new(bucket_size),
            cells: vec![Cell::new(0, 0); INITIAL_CAPACITY],
            heads: vec![VACANT; INITIAL_CAPACITY],
            mask: INITIAL_CAPACITY - 1,
            slots_used: 0,
            live_cells: 0,
            px: Vec::new(),
            py: Vec::new(),
            next: Vec::new(),
            free: NIL,
            len: 0,
            bounds: None,
            scratch: Vec::new(),
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Table slot holding `cell`, if the cell has ever claimed one.
    #[inline]
    fn find_slot(&self, cell: Cell) -> Option<usize> {
        let mut i = hash_cell(cell) as usize & self.mask;
        loop {
            match self.heads[i] {
                VACANT => return None,
                _ if self.cells[i] == cell => return Some(i),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Chain head for `cell`, or `NIL` when the cell holds no points.
    #[inline]
    fn chain_head(&self, cell: Cell) -> u32 {
        match self.find_slot(cell) {
            Some(i) if self.heads[i] != NO_POINTS => self.heads[i],
            _ => NIL,
        }
    }

    /// Rebuilds the cell table, dropping stale `NO_POINTS` entries, with
    /// room for at least one more cell. Chains are untouched — only the
    /// slots referencing them move.
    fn rebuild_table(&mut self) {
        let capacity = ((self.live_cells + 1) * 2).next_power_of_two().max(16);
        let mut cells = vec![Cell::new(0, 0); capacity];
        let mut heads = vec![VACANT; capacity];
        let mask = capacity - 1;
        for i in 0..=self.mask {
            let head = self.heads[i];
            if head == VACANT || head == NO_POINTS {
                continue;
            }
            let cell = self.cells[i];
            let mut j = hash_cell(cell) as usize & mask;
            while heads[j] != VACANT {
                j = (j + 1) & mask;
            }
            cells[j] = cell;
            heads[j] = head;
        }
        self.cells = cells;
        self.heads = heads;
        self.mask = mask;
        self.slots_used = self.live_cells;
    }

    /// Finds `cell`'s slot, claiming a vacant one (rehashing first if the
    /// table is past 7/8 load) when the cell is new.
    fn slot_for_insert(&mut self, cell: Cell) -> usize {
        if (self.slots_used + 1) * 8 > (self.mask + 1) * 7 {
            self.rebuild_table();
        }
        let mut i = hash_cell(cell) as usize & self.mask;
        loop {
            match self.heads[i] {
                VACANT => {
                    self.cells[i] = cell;
                    self.heads[i] = NO_POINTS;
                    self.slots_used += 1;
                    return i;
                }
                _ if self.cells[i] == cell => return i,
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Inserts a point. Duplicate points are allowed and count separately.
    pub fn insert(&mut self, p: Point) {
        debug_assert!(p.is_finite(), "cannot index non-finite point");
        let cell = self.grid.cell_of(p);
        // Claim a pool slot: recycle from the free list when possible.
        let slot = if self.free != NIL {
            let s = self.free as usize;
            self.free = self.next[s];
            self.px[s] = p.x;
            self.py[s] = p.y;
            s as u32
        } else {
            self.px.push(p.x);
            self.py.push(p.y);
            self.next.push(NIL);
            assert!(self.px.len() < NO_POINTS as usize, "index full");
            (self.px.len() - 1) as u32
        };
        let ti = self.slot_for_insert(cell);
        let head = self.heads[ti];
        if head == NO_POINTS {
            self.live_cells += 1;
            self.next[slot as usize] = NIL;
        } else {
            self.next[slot as usize] = head;
        }
        self.heads[ti] = slot;
        self.len += 1;
        self.bounds = Some(match self.bounds {
            None => (cell, cell),
            Some((lo, hi)) => (
                Cell::new(lo.col.min(cell.col), lo.row.min(cell.row)),
                Cell::new(hi.col.max(cell.col), hi.row.max(cell.row)),
            ),
        });
    }

    /// Removes one occurrence of `p`. Returns `true` if a point was removed.
    pub fn remove(&mut self, p: Point) -> bool {
        if self.len == 0 {
            return false;
        }
        let cell = self.grid.cell_of(p);
        let Some(ti) = self.find_slot(cell) else {
            return false;
        };
        if self.heads[ti] == NO_POINTS {
            return false;
        }
        let mut idx = self.heads[ti];
        let mut prev = NIL;
        while idx != NIL {
            let i = idx as usize;
            if Point::new(self.px[i], self.py[i]) == p {
                let after = self.next[i];
                if prev == NIL {
                    self.heads[ti] = if after == NIL { NO_POINTS } else { after };
                    if after == NIL {
                        self.live_cells -= 1;
                    }
                } else {
                    self.next[prev as usize] = after;
                }
                self.next[i] = self.free;
                self.free = idx;
                self.len -= 1;
                return true;
            }
            prev = idx;
            idx = self.next[i];
        }
        false
    }

    /// Scans one ring's cells, folding their points into `best`.
    fn scan_ring(&self, center: Cell, ring: u64, query: Point, best: &mut Option<(Point, f64)>) {
        for_each_ring_cell(center, ring, |cell| {
            let mut idx = self.chain_head(cell);
            while idx != NIL {
                let i = idx as usize;
                let p = Point::new(self.px[i], self.py[i]);
                let d = query.distance(p);
                if better(p, d, *best) {
                    *best = Some((p, d));
                }
                idx = self.next[i];
            }
        });
    }

    /// Exact nearest neighbour of `query` with its distance, or `None` when
    /// the index is empty. Ties resolve per [`candidate_cmp`].
    ///
    /// Searches buckets in growing Chebyshev rings around the query cell and
    /// stops once the closest found point is provably nearer than anything
    /// in the unexplored rings. For very sparse indexes (points thousands of
    /// cells apart) the ring scan is abandoned after a fixed budget in
    /// favour of a direct scan over the occupied buckets, keeping the worst
    /// case at O(n).
    pub fn nearest(&self, query: Point) -> Option<(Point, f64)> {
        if self.is_empty() {
            return None;
        }
        let center = self.grid.cell_of(query);
        let cell_size = self.grid.cell_size();
        let max_ring = self.max_ring_bound(center);
        let mut best: Option<(Point, f64)> = None;
        let mut ring: u64 = 0;
        loop {
            // Any point in a ring at Chebyshev distance r is at least
            // (r - 1) * cell_size away from the query, so equidistant
            // candidates are always fully enumerated before we stop.
            if let Some((_, best_d)) = best {
                if ring >= 1 && (ring as f64 - 1.0) * cell_size > best_d {
                    return best;
                }
            }
            if ring > MAX_RING_SCAN {
                // Sparse index: enumerate occupied buckets directly.
                return self.nearest_brute(query);
            }
            self.scan_ring(center, ring, query, &mut best);
            ring += 1;
            // Beyond the bounding ring of all buckets there is nothing
            // left to explore.
            if ring > max_ring + 1 {
                return best;
            }
        }
    }

    /// Linear scan over every indexed point.
    fn nearest_brute(&self, query: Point) -> Option<(Point, f64)> {
        let mut best = None;
        for p in self.iter() {
            let d = query.distance(p);
            if better(p, d, best) {
                best = Some((p, d));
            }
        }
        best
    }

    /// All indexed points within `radius` of `query` (inclusive), ascending
    /// by [`candidate_cmp`] — nearest first, ties by `x` then `y`.
    pub fn within(&self, query: Point, radius: f64) -> Vec<Point> {
        let mut tmp = Vec::new();
        let mut out = Vec::new();
        self.collect_within(query, radius, &mut tmp, &mut out);
        out
    }

    /// [`Self::within`] into a caller buffer, reusing the index's internal
    /// scratch: the steady-state range query performs no allocation once
    /// `out` and the scratch have grown to working-set size.
    pub fn within_into(&mut self, query: Point, radius: f64, out: &mut Vec<Point>) {
        let mut tmp = std::mem::take(&mut self.scratch);
        self.collect_within(query, radius, &mut tmp, out);
        self.scratch = tmp;
    }

    fn collect_within(
        &self,
        query: Point,
        radius: f64,
        tmp: &mut Vec<(f64, Point)>,
        out: &mut Vec<Point>,
    ) {
        tmp.clear();
        out.clear();
        if radius < 0.0 || self.is_empty() {
            return;
        }
        let rings = (radius / self.grid.cell_size()).ceil() as u64 + 1;
        let center = self.grid.cell_of(query);
        for ring in 0..=rings {
            for_each_ring_cell(center, ring, |cell| {
                let mut idx = self.chain_head(cell);
                while idx != NIL {
                    let i = idx as usize;
                    let p = Point::new(self.px[i], self.py[i]);
                    let d = query.distance(p);
                    if d <= radius {
                        tmp.push((d, p));
                    }
                    idx = self.next[i];
                }
            });
        }
        sort_candidates(tmp);
        out.extend(tmp.iter().map(|&(_, p)| p));
    }

    /// Iterates over all indexed points. The order is deterministic for a
    /// fixed history of operations (table order, then chain order), but
    /// unspecified otherwise.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.heads
            .iter()
            .filter(|&&head| head != VACANT && head != NO_POINTS)
            .flat_map(move |&head| ChainIter {
                idx: head,
                index: self,
            })
    }

    /// Conservative upper bound on the Chebyshev ring distance from
    /// `center` to any occupied cell.
    fn max_ring_bound(&self, center: Cell) -> u64 {
        match self.bounds {
            None => 0,
            Some((lo, hi)) => {
                let dc = center.col.abs_diff(lo.col).max(center.col.abs_diff(hi.col));
                let dr = center.row.abs_diff(lo.row).max(center.row.abs_diff(hi.row));
                dc.max(dr)
            }
        }
    }
}

struct ChainIter<'a> {
    idx: u32,
    index: &'a NearestNeighborIndex,
}

impl Iterator for ChainIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.idx == NIL {
            return None;
        }
        let i = self.idx as usize;
        self.idx = self.index.next[i];
        Some(Point::new(self.index.px[i], self.index.py[i]))
    }
}

impl SpatialIndex for NearestNeighborIndex {
    fn with_bucket_size(bucket_size: f64) -> Self {
        NearestNeighborIndex::new(bucket_size)
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn insert(&mut self, p: Point) {
        self.insert(p);
    }

    fn remove(&mut self, p: Point) -> bool {
        self.remove(p)
    }

    fn nearest(&self, query: Point) -> Option<(Point, f64)> {
        self.nearest(query)
    }

    fn within(&self, query: Point, radius: f64) -> Vec<Point> {
        self.within(query, radius)
    }

    fn points(&self) -> Vec<Point> {
        self.iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Reference oracle
// ---------------------------------------------------------------------------

/// The original `BTreeMap`-bucketed index, retained as the equivalence
/// oracle for [`NearestNeighborIndex`] (the flat hash grid) — same grid
/// geometry, same ring-scan search, same [`candidate_cmp`] tie-break, but
/// built from std collections with per-bucket `Vec`s.
#[derive(Debug, Clone)]
pub struct NearestNeighborIndexReference {
    grid: Grid,
    buckets: BTreeMap<Cell, Vec<Point>>,
    len: usize,
}

impl NearestNeighborIndexReference {
    /// Creates an index with the given bucket size in meters.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_size` is not strictly positive and finite.
    pub fn new(bucket_size: f64) -> Self {
        NearestNeighborIndexReference {
            grid: Grid::new(bucket_size),
            buckets: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point. Duplicate points are allowed and count separately.
    pub fn insert(&mut self, p: Point) {
        debug_assert!(p.is_finite(), "cannot index non-finite point");
        self.buckets
            .entry(self.grid.cell_of(p))
            .or_default()
            .push(p);
        self.len += 1;
    }

    /// Removes one occurrence of `p`. Returns `true` if a point was removed.
    pub fn remove(&mut self, p: Point) -> bool {
        let cell = self.grid.cell_of(p);
        if let Some(bucket) = self.buckets.get_mut(&cell) {
            if let Some(pos) = bucket.iter().position(|&q| q == p) {
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.buckets.remove(&cell);
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Exact nearest neighbour of `query` with its distance, or `None` when
    /// the index is empty. Ties resolve per [`candidate_cmp`].
    pub fn nearest(&self, query: Point) -> Option<(Point, f64)> {
        if self.is_empty() {
            return None;
        }
        let center = self.grid.cell_of(query);
        let cell_size = self.grid.cell_size();
        let max_ring = self
            .buckets
            .keys()
            .map(|&c| c.ring_distance(center))
            .max()
            .unwrap_or(0);
        let mut best: Option<(Point, f64)> = None;
        let mut ring: u64 = 0;
        loop {
            if let Some((_, best_d)) = best {
                if ring >= 1 && (ring as f64 - 1.0) * cell_size > best_d {
                    return best;
                }
            }
            if ring > MAX_RING_SCAN {
                return self.nearest_brute(query);
            }
            for_each_ring_cell(center, ring, |cell| {
                if let Some(bucket) = self.buckets.get(&cell) {
                    for &p in bucket {
                        let d = query.distance(p);
                        if better(p, d, best) {
                            best = Some((p, d));
                        }
                    }
                }
            });
            ring += 1;
            if ring > max_ring + 1 {
                return best;
            }
        }
    }

    fn nearest_brute(&self, query: Point) -> Option<(Point, f64)> {
        let mut best = None;
        for p in self.iter() {
            let d = query.distance(p);
            if better(p, d, best) {
                best = Some((p, d));
            }
        }
        best
    }

    /// All indexed points within `radius` of `query` (inclusive), ascending
    /// by [`candidate_cmp`].
    pub fn within(&self, query: Point, radius: f64) -> Vec<Point> {
        let mut tmp = Vec::new();
        if radius < 0.0 {
            return Vec::new();
        }
        let rings = (radius / self.grid.cell_size()).ceil() as u64 + 1;
        let center = self.grid.cell_of(query);
        for ring in 0..=rings {
            for_each_ring_cell(center, ring, |cell| {
                if let Some(bucket) = self.buckets.get(&cell) {
                    for &p in bucket {
                        let d = query.distance(p);
                        if d <= radius {
                            tmp.push((d, p));
                        }
                    }
                }
            });
        }
        sort_candidates(&mut tmp);
        tmp.into_iter().map(|(_, p)| p).collect()
    }

    /// Iterates over all indexed points (bucket order, then insertion order
    /// within a bucket, modulo `swap_remove` perturbation).
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.buckets.values().flatten().copied()
    }
}

impl SpatialIndex for NearestNeighborIndexReference {
    fn with_bucket_size(bucket_size: f64) -> Self {
        NearestNeighborIndexReference::new(bucket_size)
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn insert(&mut self, p: Point) {
        self.insert(p);
    }

    fn remove(&mut self, p: Point) -> bool {
        self.remove(p)
    }

    fn nearest(&self, query: Point) -> Option<(Point, f64)> {
        self.nearest(query)
    }

    fn within(&self, query: Point, radius: f64) -> Vec<Point> {
        self.within(query, radius)
    }

    fn points(&self) -> Vec<Point> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_nearest(points: &[Point], q: Point) -> Option<(Point, f64)> {
        let mut best = None;
        for &p in points {
            let d = q.distance(p);
            if better(p, d, best) {
                best = Some((p, d));
            }
        }
        best
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = NearestNeighborIndex::new(100.0);
        assert!(idx.nearest(Point::ORIGIN).is_none());
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn single_point() {
        let mut idx = NearestNeighborIndex::new(100.0);
        idx.insert(Point::new(5000.0, 5000.0));
        let (p, d) = idx.nearest(Point::ORIGIN).unwrap();
        assert_eq!(p, Point::new(5000.0, 5000.0));
        assert!((d - 5000.0 * std::f64::consts::SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = NearestNeighborIndex::new(100.0);
        let mut pts = Vec::new();
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(0.0..3000.0), rng.gen_range(0.0..3000.0));
            idx.insert(p);
            pts.push(p);
        }
        for _ in 0..200 {
            let q = Point::new(rng.gen_range(-500.0..3500.0), rng.gen_range(-500.0..3500.0));
            let (gp, gd) = idx.nearest(q).unwrap();
            let (bp, bd) = brute_nearest(&pts, q).unwrap();
            assert_eq!(gp, bp, "query {q}");
            assert_eq!(gd.to_bits(), bd.to_bits(), "query {q}");
        }
    }

    #[test]
    fn remove_updates_results() {
        let mut idx = NearestNeighborIndex::new(50.0);
        let a = Point::new(10.0, 10.0);
        let b = Point::new(400.0, 400.0);
        idx.insert(a);
        idx.insert(b);
        assert_eq!(idx.nearest(Point::ORIGIN).unwrap().0, a);
        assert!(idx.remove(a));
        assert_eq!(idx.nearest(Point::ORIGIN).unwrap().0, b);
        assert!(!idx.remove(a), "double remove must fail");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn duplicates_count_separately() {
        let mut idx = NearestNeighborIndex::new(50.0);
        let p = Point::new(1.0, 1.0);
        idx.insert(p);
        idx.insert(p);
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(p));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.nearest(Point::ORIGIN).unwrap().0, p);
    }

    #[test]
    fn equidistant_tie_breaks_on_coordinates() {
        // Four points at exactly the same distance from the query: the
        // smallest (x, y) under total order must win, in every
        // implementation, regardless of insertion order.
        let q = Point::new(0.0, 0.0);
        let pts = [
            Point::new(3.0, 4.0),
            Point::new(-3.0, 4.0),
            Point::new(4.0, -3.0),
            Point::new(-4.0, -3.0),
        ];
        let mut orders = vec![pts.to_vec()];
        let mut rev = pts.to_vec();
        rev.reverse();
        orders.push(rev);
        for order in orders {
            let mut idx = NearestNeighborIndex::new(100.0);
            let mut oracle = NearestNeighborIndexReference::new(100.0);
            for &p in &order {
                idx.insert(p);
                oracle.insert(p);
            }
            assert_eq!(idx.nearest(q).unwrap().0, Point::new(-4.0, -3.0));
            assert_eq!(oracle.nearest(q).unwrap().0, Point::new(-4.0, -3.0));
        }
    }

    #[test]
    fn within_is_sorted_by_distance_then_coordinates() {
        let mut idx = NearestNeighborIndex::new(100.0);
        let pts = [
            Point::new(0.0, 5.0),
            Point::new(5.0, 0.0),
            Point::new(-5.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(30.0, 0.0),
        ];
        for &p in &pts {
            idx.insert(p);
        }
        let got = idx.within(Point::ORIGIN, 10.0);
        assert_eq!(
            got,
            vec![
                Point::new(1.0, 1.0),
                Point::new(-5.0, 0.0),
                Point::new(0.0, 5.0),
                Point::new(5.0, 0.0),
            ]
        );
        // The allocation-free path returns the same thing.
        let mut buf = Vec::new();
        idx.within_into(Point::ORIGIN, 10.0, &mut buf);
        assert_eq!(buf, got);
    }

    #[test]
    fn within_radius_matches_filter() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut idx = NearestNeighborIndex::new(100.0);
        let mut pts = Vec::new();
        for _ in 0..300 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            idx.insert(p);
            pts.push(p);
        }
        let q = Point::new(500.0, 500.0);
        for radius in [0.0, 50.0, 200.0, 2000.0] {
            let got = idx.within(q, radius);
            let mut expected: Vec<(f64, Point)> = pts
                .iter()
                .copied()
                .filter(|p| q.distance(*p) <= radius)
                .map(|p| (q.distance(p), p))
                .collect();
            sort_candidates(&mut expected);
            let expected: Vec<Point> = expected.into_iter().map(|(_, p)| p).collect();
            assert_eq!(got, expected, "radius {radius}");
        }
    }

    #[test]
    fn iter_yields_all_points() {
        let mut idx = NearestNeighborIndex::new(100.0);
        idx.insert(Point::new(1.0, 2.0));
        idx.insert(Point::new(300.0, 4.0));
        idx.insert(Point::new(5.0, 600.0));
        assert_eq!(idx.iter().count(), 3);
    }

    #[test]
    fn very_sparse_points_fast_and_correct() {
        // Regression: points thousands of buckets apart must not trigger a
        // cell-by-cell ring walk.
        let mut idx = NearestNeighborIndex::new(50.0);
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 1.0e6, (i % 3) as f64 * 2.0e6))
            .collect();
        for &p in &pts {
            idx.insert(p);
        }
        let start = std::time::Instant::now();
        for i in 0..20 {
            let q = Point::new(i as f64 * 1.0e6 + 123.0, 456.0);
            let (gp, gd) = idx.nearest(q).unwrap();
            let (bp, bd) = brute_nearest(&pts, q).unwrap();
            assert_eq!(gp, bp);
            assert_eq!(gd.to_bits(), bd.to_bits());
        }
        assert!(
            start.elapsed().as_secs() < 5,
            "sparse nearest queries took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn negative_radius_is_empty() {
        let mut idx = NearestNeighborIndex::new(100.0);
        idx.insert(Point::ORIGIN);
        assert!(idx.within(Point::ORIGIN, -1.0).is_empty());
    }

    #[test]
    fn heavy_churn_matches_reference() {
        // Deterministic insert/remove/query churn across enough cells to
        // force several table rebuilds and a long free list.
        let mut rng = StdRng::seed_from_u64(99);
        let mut idx = NearestNeighborIndex::new(75.0);
        let mut oracle = NearestNeighborIndexReference::new(75.0);
        let mut alive: Vec<Point> = Vec::new();
        for step in 0..4_000 {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.6 || alive.len() < 4 {
                let p = Point::new(
                    rng.gen_range(-4000.0..4000.0),
                    rng.gen_range(-4000.0..4000.0),
                );
                idx.insert(p);
                oracle.insert(p);
                alive.push(p);
            } else {
                let k = rng.gen_range(0..alive.len());
                let p = alive.swap_remove(k);
                assert!(idx.remove(p), "step {step}");
                assert!(oracle.remove(p), "step {step}");
            }
            assert_eq!(idx.len(), oracle.len());
            if step % 16 == 0 {
                let q = Point::new(
                    rng.gen_range(-5000.0..5000.0),
                    rng.gen_range(-5000.0..5000.0),
                );
                let a = idx.nearest(q);
                let b = oracle.nearest(q);
                match (a, b) {
                    (None, None) => {}
                    (Some((pa, da)), Some((pb, db))) => {
                        assert_eq!(pa, pb, "step {step}");
                        assert_eq!(da.to_bits(), db.to_bits(), "step {step}");
                    }
                    other => panic!("step {step}: mismatch {other:?}"),
                }
                assert_eq!(idx.within(q, 500.0), oracle.within(q, 500.0), "step {step}");
            }
        }
        let mut a: Vec<Point> = SpatialIndex::points(&idx);
        let mut b: Vec<Point> = SpatialIndex::points(&oracle);
        let key = |p: &Point| (p.x.to_bits(), p.y.to_bits());
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }
}
