//! Row-major dense matrices.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use esharing_linalg::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m.get(1, 2), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for each entry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Xavier/Glorot uniform initialization in
    /// `[-sqrt(6/(rows+cols)), +sqrt(6/(rows+cols))]`, the standard scheme
    /// for the LSTM weight matrices.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying data in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying data in row-major order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix–vector product `selfᵀ * x`, used in
    /// backpropagation without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (&xr, row) in x.iter().zip(self.data.chunks_exact(self.cols)) {
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        out
    }

    /// Matrix product `self * other`, blocked over the inner and output
    /// column dimensions so each output tile and the matching `other` row
    /// segments stay cache-resident across the inner loop.
    ///
    /// For every output entry the `k`-contributions still accumulate in
    /// ascending order, so the result is bit-identical to
    /// [`Matrix::matmul_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        const BLOCK: usize = 64;
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let (m, inner, ncols) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, ncols);
        for kk in (0..inner).step_by(BLOCK) {
            let kend = (kk + BLOCK).min(inner);
            for jj in (0..ncols).step_by(BLOCK) {
                let jend = (jj + BLOCK).min(ncols);
                for r in 0..m {
                    let arow = &self.data[r * inner..(r + 1) * inner];
                    let trow = &mut out.data[r * ncols + jj..r * ncols + jend];
                    for (k, &a) in arow.iter().enumerate().take(kend).skip(kk) {
                        if a == 0.0 {
                            continue;
                        }
                        let orow = &other.data[k * ncols + jj..k * ncols + jend];
                        for (t, &o) in trow.iter_mut().zip(orow) {
                            *t += a * o;
                        }
                    }
                }
            }
        }
        out
    }

    /// Naive triple-loop matrix product, retained as the oracle for the
    /// blocked [`Matrix::matmul`] equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let trow = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (t, &o) in trow.iter_mut().zip(orow) {
                    *t += a * o;
                }
            }
        }
        out
    }

    /// Matrix product against a transposed right-hand side, `self * otherᵀ`,
    /// computed as row–row dot products so both operands stream in row-major
    /// order with no strided access and no materialized transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let trow = &mut out.data[r * other.rows..(r + 1) * other.rows];
            for (t, c) in trow.iter_mut().zip(0..other.rows) {
                let brow = &other.data[c * other.cols..(c + 1) * other.cols];
                *t = arow.iter().zip(brow).map(|(a, b)| a * b).sum();
            }
        }
        out
    }

    /// Fused gate pre-activation `self * x + u * h + b`, the LSTM hot path:
    /// one pass over both weight matrices per output element, with no
    /// intermediate vectors.
    ///
    /// Each element is computed as `dot(w_row, x) + dot(u_row, h) + b[r]`
    /// with the same left-to-right association as the unfused
    /// `matvec`/`add_assign` sequence, so results are bit-identical to the
    /// three-pass formulation.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn gate_matvec(&self, x: &[f64], u: &Matrix, h: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "gate_matvec input mismatch");
        assert_eq!(h.len(), u.cols, "gate_matvec recurrent mismatch");
        assert_eq!(self.rows, u.rows, "gate_matvec weight row mismatch");
        assert_eq!(b.len(), self.rows, "gate_matvec bias mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let wrow = &self.data[r * self.cols..(r + 1) * self.cols];
            let urow = &u.data[r * u.cols..(r + 1) * u.cols];
            let wx: f64 = wrow.iter().zip(x).map(|(a, v)| a * v).sum();
            let uh: f64 = urow.iter().zip(h).map(|(a, v)| a * v).sum();
            *o = wx + uh + b[r];
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Adds `outer(u, v) * scale` in place — the rank-1 update used to
    /// accumulate weight gradients.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], scale: f64) {
        assert_eq!(u.len(), self.rows, "outer-product row mismatch");
        assert_eq!(v.len(), self.cols, "outer-product col mismatch");
        for (&ur, row) in u.iter().zip(self.data.chunks_exact_mut(self.cols)) {
            let ur = ur * scale;
            for (t, &vc) in row.iter_mut().zip(v) {
                *t += ur * vc;
            }
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix add dimension mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix sub dimension mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix add dimension mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.matvec(&[2.0, 0.0]), vec![2.0, 6.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 7, &mut rng);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let via_method = a.matvec_transposed(&x);
        let via_transpose = a.transpose().matvec(&x);
        for (u, v) in via_method.iter().zip(&via_transpose) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(3, 5, &mut rng);
        let i3 = Matrix::identity(3);
        let i5 = Matrix::identity(5);
        assert_eq!(i3.matmul(&a), a);
        assert_eq!(a.matmul(&i5), a);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_associates_with_matvec() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::xavier(3, 4, &mut rng);
        let b = Matrix::xavier(4, 2, &mut rng);
        let x = vec![0.5, -1.0];
        let lhs = a.matmul(&b).matvec(&x);
        let rhs = a.matvec(&b.matvec(&x));
        for (u, v) in lhs.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::xavier(5, 3, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_outer_equals_manual() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 2.0);
        assert_eq!(
            m,
            Matrix::from_rows(&[&[6.0, 8.0, 10.0], &[12.0, 16.0, 20.0]])
        );
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 3.0, Matrix::from_rows(&[&[3.0, 6.0]]));
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, Matrix::from_rows(&[&[4.0, 7.0]]));
    }

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0 / 30.0f64).sqrt();
        for &v in m.as_slice() {
            assert!(v.abs() <= bound);
        }
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn fill_zero_and_scale() {
        let mut m = Matrix::from_rows(&[&[1.0, -2.0]]);
        m.scale_in_place(2.0);
        assert_eq!(m.as_slice(), &[2.0, -4.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn display_shows_dims() {
        let m = Matrix::zeros(2, 2);
        assert!(m.to_string().contains("2x2"));
    }

    #[test]
    fn blocked_matmul_matches_reference() {
        let mut rng = StdRng::seed_from_u64(6);
        // Dimensions straddling the 64-wide block boundary, plus skinny
        // and degenerate shapes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (17, 64, 9),
            (70, 65, 130),
            (128, 100, 1),
        ] {
            let a = Matrix::xavier(m, k, &mut rng);
            let b = Matrix::xavier(k, n, &mut rng);
            assert_eq!(a.matmul(&b), a.matmul_reference(&b), "{m}x{k}x{n}");
        }
        // Sparse input exercises the zero-skip in both kernels.
        let a = Matrix::from_fn(20, 70, |r, c| if (r + c) % 3 == 0 { 1.5 } else { 0.0 });
        let b = Matrix::xavier(70, 20, &mut rng);
        assert_eq!(a.matmul(&b), a.matmul_reference(&b));
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::xavier(9, 13, &mut rng);
        let b = Matrix::xavier(6, 13, &mut rng);
        let fused = a.matmul_transposed(&b);
        let explicit = a.matmul_reference(&b.transpose());
        assert_eq!(fused.rows(), 9);
        assert_eq!(fused.cols(), 6);
        for r in 0..9 {
            for c in 0..6 {
                assert!((fused.get(r, c) - explicit.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gate_matvec_matches_unfused_sequence() {
        let mut rng = StdRng::seed_from_u64(8);
        let w = Matrix::xavier(12, 5, &mut rng);
        let u = Matrix::xavier(12, 3, &mut rng);
        let x: Vec<f64> = (0..5).map(|i| (i as f64).sin()).collect();
        let h: Vec<f64> = (0..3).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..12).map(|i| i as f64 * 0.1 - 0.5).collect();
        let fused = w.gate_matvec(&x, &u, &h, &b);
        let mut unfused = w.matvec(&x);
        let uh = u.matvec(&h);
        for ((z, &a), &bias) in unfused.iter_mut().zip(&uh).zip(&b) {
            *z += a;
            *z += bias;
        }
        // Bit-identical, not merely close: the LSTM forward pass must not
        // change under the fusion.
        assert_eq!(fused, unfused);
    }
}
