//! E-bike battery model and fleet simulation.
//!
//! The paper "establish\[es\] an energy model based on the data crawled from
//! \[the\] XQbike App … By tracing each *bike id* with the energy status,
//! locations, the model can closely estimate the residual energy of
//! E-bikes." The crawl is not public; this module reproduces its observable
//! behaviour: distance-proportional battery drain per trip, small idle
//! drain, and the resulting per-station energy distribution of Fig. 2(d) —
//! a majority of bikes with ample charge plus a tail of low-battery bikes
//! scattered across stations.

use crate::trips::Trip;
use esharing_geo::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Battery physics of the simulated e-bikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Full-charge range in meters (typical shared e-bike: ~35 km).
    pub full_range_m: f64,
    /// Route-detour multiplier applied to straight-line trip length.
    pub detour_factor: f64,
    /// Battery fraction lost per simulated day while idle.
    pub idle_drain_per_day: f64,
    /// Bikes below this state of charge need service (paper: 20%).
    pub low_threshold: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            full_range_m: 35_000.0,
            detour_factor: 1.3,
            idle_drain_per_day: 0.01,
            low_threshold: 0.2,
        }
    }
}

impl EnergyModel {
    /// Battery fraction consumed by a trip of straight-line `length_m`.
    pub fn trip_drain(&self, length_m: f64) -> f64 {
        (length_m * self.detour_factor / self.full_range_m).max(0.0)
    }

    /// Whether a state of charge requires service.
    pub fn is_low(&self, battery: f64) -> bool {
        battery < self.low_threshold
    }
}

/// The live state of one e-bike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BikeState {
    /// Bike id, matching [`Trip::bike_id`].
    pub bike_id: u64,
    /// State of charge in `[0, 1]`.
    pub battery: f64,
    /// Current parking position.
    pub location: Point,
}

/// A fleet of e-bikes whose batteries evolve as trips are replayed.
#[derive(Debug, Clone)]
pub struct Fleet {
    bikes: Vec<BikeState>,
    model: EnergyModel,
    /// Total battery fraction consumed across the fleet (diagnostics).
    total_drain: f64,
}

impl Fleet {
    /// Creates a fleet of `size` bikes scattered uniformly over `bbox`
    /// with initial charge in `[0.25, 1.0]`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize, bbox: BBox, model: EnergyModel, seed: u64) -> Self {
        assert!(size > 0, "fleet must have at least one bike");
        let mut rng = StdRng::seed_from_u64(seed);
        let bikes = (0..size as u64)
            .map(|bike_id| BikeState {
                bike_id,
                battery: rng.gen_range(0.25..=1.0),
                location: Point::new(
                    rng.gen_range(bbox.min().x..=bbox.max().x),
                    rng.gen_range(bbox.min().y..=bbox.max().y),
                ),
            })
            .collect();
        Fleet {
            bikes,
            model,
            total_drain: 0.0,
        }
    }

    /// Number of bikes.
    pub fn len(&self) -> usize {
        self.bikes.len()
    }

    /// Whether the fleet is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.bikes.is_empty()
    }

    /// The energy model in force.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// All bike states.
    pub fn bikes(&self) -> &[BikeState] {
        &self.bikes
    }

    /// Total battery fraction drained so far.
    pub fn total_drain(&self) -> f64 {
        self.total_drain
    }

    /// Replays one trip: the bike moves to the destination and loses charge
    /// proportional to the distance. Batteries floor at 0 (a depleted bike
    /// is walked/pushed, which real systems exhibit too).
    ///
    /// # Panics
    ///
    /// Panics if `trip.bike_id` is outside the fleet.
    pub fn apply_trip(&mut self, trip: &Trip) {
        let idx = trip.bike_id as usize;
        assert!(idx < self.bikes.len(), "unknown bike id {}", trip.bike_id);
        let drain = self.model.trip_drain(trip.length());
        let bike = &mut self.bikes[idx];
        let applied = drain.min(bike.battery);
        bike.battery -= applied;
        bike.location = trip.end;
        self.total_drain += applied;
    }

    /// Replays a batch of trips in order.
    pub fn replay<'a, I: IntoIterator<Item = &'a Trip>>(&mut self, trips: I) {
        for trip in trips {
            self.apply_trip(trip);
        }
    }

    /// Applies one day of idle drain to every bike.
    pub fn apply_idle_day(&mut self) {
        for bike in &mut self.bikes {
            let applied = self.model.idle_drain_per_day.min(bike.battery);
            bike.battery -= applied;
            self.total_drain += applied;
        }
    }

    /// Recharges the given bike to full. Returns `false` for unknown ids.
    pub fn recharge(&mut self, bike_id: u64) -> bool {
        match self.bikes.get_mut(bike_id as usize) {
            Some(bike) => {
                bike.battery = 1.0;
                true
            }
            None => false,
        }
    }

    /// Moves a bike to a new location without draining (operator
    /// relocation).
    ///
    /// # Panics
    ///
    /// Panics on an unknown bike id.
    pub fn relocate(&mut self, bike_id: u64, to: Point) {
        let idx = bike_id as usize;
        assert!(idx < self.bikes.len(), "unknown bike id {bike_id}");
        self.bikes[idx].location = to;
    }

    /// All bikes below the service threshold.
    pub fn low_battery_bikes(&self) -> Vec<&BikeState> {
        self.bikes
            .iter()
            .filter(|b| self.model.is_low(b.battery))
            .collect()
    }

    /// Histogram of the state of charge with `bins` equal-width buckets
    /// over `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn battery_histogram(&self, bins: usize) -> Vec<usize> {
        assert!(bins > 0, "need at least one bin");
        let mut hist = vec![0usize; bins];
        for bike in &self.bikes {
            let k = ((bike.battery * bins as f64) as usize).min(bins - 1);
            hist[k] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use crate::trips::TripGenerator;
    use crate::SyntheticCity;

    fn test_fleet(size: usize) -> Fleet {
        Fleet::new(size, BBox::square(3000.0), EnergyModel::default(), 11)
    }

    fn trip(bike_id: u64, from: Point, to: Point) -> Trip {
        Trip {
            order_id: 1,
            user_id: 1,
            bike_id,
            bike_type: 1,
            start_time: crate::Timestamp(0),
            start: from,
            end: to,
        }
    }

    #[test]
    fn construction_invariants() {
        let f = test_fleet(100);
        assert_eq!(f.len(), 100);
        assert!(!f.is_empty());
        for b in f.bikes() {
            assert!((0.25..=1.0).contains(&b.battery));
        }
    }

    #[test]
    #[should_panic(expected = "at least one bike")]
    fn empty_fleet_panics() {
        let _ = test_fleet(0);
    }

    #[test]
    fn trip_drain_proportional_to_distance() {
        let m = EnergyModel::default();
        let d1 = m.trip_drain(1000.0);
        let d2 = m.trip_drain(2000.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
        // 35km range with 1.3 detour: ~27km of straight-line kills a full
        // battery.
        assert!((m.trip_drain(35_000.0 / 1.3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn apply_trip_moves_and_drains() {
        let mut f = test_fleet(10);
        let before = f.bikes()[3].battery;
        let dest = Point::new(1500.0, 1500.0);
        f.apply_trip(&trip(3, Point::new(0.0, 0.0), dest));
        let bike = f.bikes()[3];
        assert_eq!(bike.location, dest);
        assert!(bike.battery < before);
        assert!(f.total_drain() > 0.0);
    }

    #[test]
    fn battery_floors_at_zero() {
        let mut f = test_fleet(5);
        // Ride absurd distances repeatedly.
        for _ in 0..50 {
            f.apply_trip(&trip(0, Point::new(0.0, 0.0), Point::new(3000.0, 3000.0)));
        }
        assert!(f.bikes()[0].battery >= 0.0);
        assert!(f.model().is_low(f.bikes()[0].battery));
    }

    #[test]
    fn recharge_and_relocate() {
        let mut f = test_fleet(5);
        f.apply_trip(&trip(2, Point::new(0.0, 0.0), Point::new(2500.0, 2500.0)));
        assert!(f.recharge(2));
        assert_eq!(f.bikes()[2].battery, 1.0);
        assert!(!f.recharge(99));
        f.relocate(2, Point::new(1.0, 2.0));
        assert_eq!(f.bikes()[2].location, Point::new(1.0, 2.0));
    }

    #[test]
    fn idle_day_drains_everyone() {
        let mut f = test_fleet(20);
        let before: f64 = f.bikes().iter().map(|b| b.battery).sum();
        f.apply_idle_day();
        let after: f64 = f.bikes().iter().map(|b| b.battery).sum();
        assert!((before - after - 20.0 * 0.01).abs() < 1e-9);
    }

    #[test]
    fn histogram_counts_total() {
        let f = test_fleet(137);
        let hist = f.battery_histogram(10);
        assert_eq!(hist.iter().sum::<usize>(), 137);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = test_fleet(5).battery_histogram(0);
    }

    #[test]
    fn replay_produces_low_battery_tail() {
        // After days of trips, a tail of low bikes emerges while most of
        // the fleet stays comfortable — the Fig. 2(d) shape.
        let city = SyntheticCity::generate(&CityConfig {
            trips_per_day: 2000.0,
            fleet_size: 1000,
            ..CityConfig::default()
        });
        let trips = TripGenerator::new(&city, 21).generate_days(0, 2);
        let mut fleet = Fleet::new(1000, city.bbox(), EnergyModel::default(), 22);
        for day in 0..2u64 {
            let day_trips: Vec<_> = trips.iter().filter(|t| t.start_time.day() == day).collect();
            fleet.replay(day_trips);
            fleet.apply_idle_day();
        }
        let low = fleet.low_battery_bikes().len();
        let frac = low as f64 / fleet.len() as f64;
        assert!(
            frac > 0.02 && frac < 0.6,
            "low-battery tail fraction {frac} out of expected band"
        );
    }
}
