//! Integration tests: dataset → KS test (the Table IV structure).

use e_sharing::dataset::{arrivals, CityConfig, SyntheticCity, Timestamp, TripGenerator};
use e_sharing::geo::Point;
use e_sharing::stats::ks2d::{peacock_test, similarity_percent, SimilarityClass};

fn day_destinations(trips: &[e_sharing::dataset::Trip], day: u64, cap: usize) -> Vec<Point> {
    let pts = arrivals::destinations_in_window(
        trips,
        Timestamp::from_day_hour(day, 0),
        Timestamp::from_day_hour(day + 1, 0),
    );
    if pts.len() <= cap {
        return pts;
    }
    let stride = pts.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| pts[(i as f64 * stride) as usize])
        .collect()
}

#[test]
fn weekday_pairs_more_similar_than_cross_pairs() {
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut generator = TripGenerator::new(&city, 8);
    let trips = generator.generate_days(0, 7);
    // Day 1 = Thu, day 2 = Fri (weekdays); day 3 = Sat.
    let thu = day_destinations(&trips, 1, 200);
    let fri = day_destinations(&trips, 2, 200);
    let sat = day_destinations(&trips, 3, 200);
    let weekday_pair = similarity_percent(&thu, &fri);
    let cross_pair = similarity_percent(&fri, &sat);
    assert!(
        weekday_pair > cross_pair + 3.0,
        "thu-fri {weekday_pair:.1}% must clearly exceed fri-sat {cross_pair:.1}%"
    );
}

#[test]
fn same_day_split_reads_very_similar() {
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut generator = TripGenerator::new(&city, 9);
    let trips = generator.generate_days(0, 1);
    let all = day_destinations(&trips, 0, 400);
    let (a, b) = all.split_at(all.len() / 2);
    // Halves of one day's stream come from the same spatial process
    // (interleaved in time, so diurnal drift is shared).
    let result = peacock_test(a, b);
    assert_ne!(
        SimilarityClass::from_test(&result),
        SimilarityClass::LessSimilar,
        "same-day halves misread as a distribution shift (D={:.2})",
        result.statistic
    );
}

#[test]
fn relocated_demand_reads_less_similar() {
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut generator = TripGenerator::new(&city, 10);
    let trips = generator.generate_days(0, 1);
    let normal = day_destinations(&trips, 0, 300);
    let relocated: Vec<Point> = normal
        .iter()
        .map(|p| *p + Point::new(10_000.0, 10_000.0))
        .collect();
    let result = peacock_test(&normal, &relocated);
    assert_eq!(
        SimilarityClass::from_test(&result),
        SimilarityClass::LessSimilar
    );
    assert!(result.statistic > 0.9);
}
