//! The 1.61-factor offline placement algorithm (Algorithm 1).
//!
//! This is the greedy facility-location algorithm of Jain, Mahdian,
//! Markakis, Saberi & Vazirani (JACM 2003), analyzed by dual fitting to a
//! 1.61 approximation factor — "very close to the theoretical
//! inapproximation bound 1.46" (§III-B). At every step it selects the
//! candidate site `i*` with the smallest *average* marginal cost
//!
//! ```text
//! i* = argmin_i [ Σ_{j∈B_i} c_ij + f_i − Σ_{j∈B'_i} (c_{i'j} − c_ij) ] / |B_i|
//! ```
//!
//! where `B_i` is an optimally chosen set of still-unconnected clients and
//! `B'_i` the already-connected clients that would *save* cost by switching
//! from their current facility `i'` to `i` (the switching credit reduces
//! `i`'s effective opening cost). Already-open facilities can absorb more
//! clients at zero reopening cost. The loop ends when every client is
//! connected; a final pass drops facilities that lost all their clients to
//! switches and reassigns every client to its nearest open facility (both
//! steps only reduce cost).
//!
//! Both implementations stop each site's prefix scan with the standard JMS
//! rule: the prefix-average sequence is unimodal in `k` (costs are scanned
//! in ascending order, so once the next cost is at least the current
//! average the average can never decrease again), so the scan breaks at the
//! first `k` whose successor cost reaches the running average.
//!
//! Two implementations are provided:
//!
//! * [`jms_greedy`] — the production path. It precomputes the weighted
//!   cost matrix and the per-site client ordering **once** (so the round
//!   loop never recomputes a `Point::distance` or sorts anything), carries
//!   each client's current connection cost across rounds, and computes
//!   every site's switching credit in one sparse client-major scatter pass
//!   over per-client *column* orderings (each connected client touches only
//!   the sites cheaper than its current connection, instead of every site
//!   rescanning every client). The per-site argmin scan fans out over
//!   `crossbeam` scoped threads. Ties break to the lowest site index and
//!   per-chunk winners merge in site order, so the selected `(site,
//!   prefix)` is the first strict minimum of exactly the same candidate
//!   sequence the reference scans — fixed-seed runs are bit-identical at
//!   any thread count.
//! * [`jms_greedy_reference`] — the naive sequential loop (recomputes
//!   costs, rescans every client for credits, and re-sorts inside the
//!   round loop), retained as the oracle for the equivalence test-suite.

use crate::{PlpInstance, Solution};
use esharing_stats::parallel;

/// Below this many clients the cached-cost machinery loses: the `O(n²)`
/// precompute (cost matrix plus two sorted orderings) and the worker
/// fan-out cost more than the rounds they accelerate, so [`jms_greedy`]
/// delegates to the sequential reference (95 µs vs 249 µs at n = 50).
const SMALL_INSTANCE_CUTOFF: usize = 64;

/// Runs Algorithm 1 on `instance` and returns the greedy solution.
///
/// Cache-aware and data-parallel: `O(n² log n)` one-off precomputation
/// (cost matrix + per-site row orderings + per-client column orderings),
/// then each selection round is a sort-free scan — `O(n²)` worst case,
/// typically far less because switching credits are gathered sparsely
/// (each connected client touches only the sites cheaper than its current
/// connection) and each site's prefix scan breaks at the unimodal JMS
/// stopping point — split across worker threads. Instances smaller than
/// the crossover (64 clients) run the sequential reference directly, where
/// the precompute would cost more than it saves. Produces exactly the
/// same solution as [`jms_greedy_reference`] — same facilities, same
/// assignment — for every thread count.
///
/// # Examples
///
/// ```
/// use esharing_geo::Point;
/// use esharing_placement::{offline, PlpInstance};
///
/// let instance = PlpInstance::with_uniform_cost(
///     vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(900.0, 0.0)],
///     10.0,
/// );
/// let solution = offline::jms_greedy(&instance);
/// // The two nearby clients share one parking; the distant one gets its own.
/// assert_eq!(solution.open_facilities().len(), 2);
/// ```
pub fn jms_greedy(instance: &PlpInstance) -> Solution {
    let n = instance.len();

    // Small instances: run the reference loop directly. It IS the oracle
    // the equivalence suite checks against, so delegation is trivially
    // bit-identical, and at this size it is also the faster kernel.
    if n < SMALL_INSTANCE_CUTOFF {
        return jms_greedy_reference(instance);
    }

    // Weighted connection-cost matrix, row per site: cost[site * n + client].
    // Computed once with the exact arithmetic of `connection_cost`, so every
    // cached read matches what the reference recomputes in its inner loops.
    let cost: Vec<f64> = parallel::map_chunks(n, 8, |sites| {
        let mut block = Vec::with_capacity(sites.len() * n);
        for site in sites {
            for client in 0..n {
                block.push(instance.connection_cost(site, client));
            }
        }
        block
    })
    .concat();

    // Per-site client ordering by (cost, client index) — the canonical
    // ascending-cost order every round's prefix scan and the deployment
    // step walk, computed once instead of re-sorted per round. Flat
    // row-major layout: order[site * n..(site + 1) * n].
    // Sorting (cost, index) pairs keeps every comparison memory-sequential
    // (no per-comparison gather back into the matrix).
    let pair_cmp = |a: &(f64, u32), b: &(f64, u32)| {
        a.0.partial_cmp(&b.0)
            .expect("finite costs")
            .then(a.1.cmp(&b.1))
    };
    // `live[site]` starts as the full ordering and is lazily compacted to
    // the still-unconnected subsequence as rounds connect clients.
    let mut live: Vec<Vec<u32>> = parallel::map_chunks(n, 4, |sites| {
        let mut block = Vec::with_capacity(sites.len());
        let mut keyed: Vec<(f64, u32)> = Vec::with_capacity(n);
        for site in sites {
            let row = &cost[site * n..(site + 1) * n];
            keyed.clear();
            keyed.extend(row.iter().copied().zip(0..n as u32));
            keyed.sort_unstable_by(pair_cmp);
            block.push(keyed.iter().map(|&(_, client)| client).collect());
        }
        block
    })
    .concat();

    // Per-client column ordering by (cost, site index), with the costs
    // materialized alongside so the credit scatter pass reads sequentially.
    // Flat client-major layout: col_*[client * n..(client + 1) * n].
    let (col_cost, col_site): (Vec<f64>, Vec<u32>) = {
        let chunks = parallel::map_chunks(n, 4, |clients| {
            let mut costs_block = Vec::with_capacity(clients.len() * n);
            let mut sites_block = Vec::with_capacity(clients.len() * n);
            let mut keyed: Vec<(f64, u32)> = Vec::with_capacity(n);
            for client in clients {
                keyed.clear();
                keyed.extend((0..n as u32).map(|s| (cost[s as usize * n + client], s)));
                keyed.sort_unstable_by(pair_cmp);
                costs_block.extend(keyed.iter().map(|&(c, _)| c));
                sites_block.extend(keyed.iter().map(|&(_, s)| s));
            }
            (costs_block, sites_block)
        });
        let mut costs = Vec::with_capacity(n * n);
        let mut sites = Vec::with_capacity(n * n);
        for (c, s) in chunks {
            costs.extend_from_slice(&c);
            sites.extend_from_slice(&s);
        }
        (costs, sites)
    };

    let mut connected: Vec<Option<usize>> = vec![None; n]; // client -> facility
    let mut conn_cost: Vec<f64> = vec![f64::INFINITY; n]; // cached c(i', j)
    let mut open = vec![false; n];
    let mut connected_list: Vec<usize> = Vec::new(); // ascending client index
    let mut unconnected_count = n;
    let mut credit = vec![0.0f64; n];
    let mut compacted_len = n;

    while unconnected_count > 0 {
        // Switching credits for every site in one sparse scatter pass:
        // each connected client walks the prefix of its column ordering
        // that is cheaper than its current connection. Clients are visited
        // in ascending index order, so each `credit[site]` accumulates
        // exactly the reference's term sequence — identical f64 sums.
        credit.fill(0.0);
        for &j in &connected_list {
            let limit = conn_cost[j];
            let by_cost = &col_cost[j * n..(j + 1) * n];
            let by_site = &col_site[j * n..(j + 1) * n];
            for (c, &site) in by_cost.iter().zip(by_site) {
                if *c >= limit {
                    break;
                }
                credit[site as usize] += limit - c;
            }
        }

        // Per-site argmin scan, fanned out over site chunks. Workers only
        // read shared state; each returns its chunk's first strict minimum
        // and the chunk winners merge in site order below, reproducing the
        // sequential first-minimum tie-break (lowest site, then smallest
        // prefix) bit-for-bit.
        let chunk_best = parallel::map_chunks(n, 16, |sites| {
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, site, prefix)
            for site in sites {
                let row = &cost[site * n..(site + 1) * n];
                let effective_f = if open[site] {
                    0.0
                } else {
                    instance.opening_costs()[site]
                };
                // Optimal unconnected prefix by ascending connection cost:
                // walk the precomputed ordering, skipping connected clients,
                // stopping with the unimodal JMS prefix rule.
                let mut running = effective_f - credit[site];
                let mut k = 0usize;
                let mut last_ratio = f64::INFINITY;
                for &j in &live[site] {
                    let j = j as usize;
                    if connected[j].is_some() {
                        continue;
                    }
                    let c = row[j];
                    if k > 0 && c >= last_ratio {
                        break;
                    }
                    running += c;
                    k += 1;
                    let ratio = running / k as f64;
                    if best.is_none_or(|(b, _, _)| ratio < b) {
                        best = Some((ratio, site, k));
                    }
                    last_ratio = ratio;
                    if k == unconnected_count {
                        break;
                    }
                }
            }
            best
        });
        let mut best: Option<(f64, usize, usize)> = None;
        for cand in chunk_best.into_iter().flatten() {
            if best.is_none_or(|(b, _, _)| cand.0 < b) {
                best = Some(cand);
            }
        }
        let (_, site, prefix) = best.expect("unconnected set is non-empty");

        // Deploy: connect the `prefix` cheapest unconnected clients —
        // reusing the per-site ordering computed during precomputation
        // instead of cloning and re-sorting the unconnected set — and
        // switch every connected client that saves by moving.
        open[site] = true;
        let row = &cost[site * n..(site + 1) * n];
        let mut taken = 0usize;
        for &j in &live[site] {
            if taken == prefix {
                break;
            }
            let j = j as usize;
            if connected[j].is_none() {
                connected[j] = Some(site);
                conn_cost[j] = row[j];
                unconnected_count -= 1;
                taken += 1;
            }
        }
        for &j in &connected_list {
            if row[j] < conn_cost[j] {
                connected[j] = Some(site);
                conn_cost[j] = row[j];
            }
        }
        connected_list = (0..n).filter(|&j| connected[j].is_some()).collect();

        // Compact the per-site orderings once the unconnected set has
        // halved: `retain` keeps the surviving entries in the same relative
        // (cost, index) order, so later scans see exactly the subsequence
        // they would have reached by skipping — amortized `O(n²)` total.
        if unconnected_count * 2 <= compacted_len {
            for l in live.iter_mut() {
                l.retain(|&j| connected[j as usize].is_none());
            }
            compacted_len = unconnected_count;
        }
    }

    // Keep only facilities still serving someone, then let every client
    // take its nearest open facility (both steps are cost-non-increasing).
    let mut serving = vec![false; n];
    for conn in connected.iter().flatten() {
        serving[*conn] = true;
    }
    let open_sites: Vec<usize> = (0..n).filter(|&i| open[i] && serving[i]).collect();
    instance.assign_nearest(&open_sites)
}

/// Naive sequential reference for [`jms_greedy`]: recomputes connection
/// costs and re-sorts the unconnected set inside the round loop, exactly as
/// Algorithm 1 is written — `O(n³ log n)` for `n` clients, matching the
/// `O(N³)` bound stated in the paper. Retained as the oracle for the
/// equivalence test-suite and the speedup benchmarks.
pub fn jms_greedy_reference(instance: &PlpInstance) -> Solution {
    let n = instance.len();
    let mut connected: Vec<Option<usize>> = vec![None; n]; // client -> facility
    let mut open = vec![false; n];
    let mut unconnected: Vec<usize> = (0..n).collect();

    while !unconnected.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, site, prefix len)
        for (site, &site_open) in open.iter().enumerate() {
            let effective_f = if site_open {
                0.0
            } else {
                instance.opening_costs()[site]
            };
            // Switching credit from already-connected clients.
            let mut credit = 0.0;
            for (client, conn) in connected.iter().enumerate() {
                if let Some(current) = conn {
                    let now = instance.connection_cost(*current, client);
                    let alt = instance.connection_cost(site, client);
                    if alt < now {
                        credit += now - alt;
                    }
                }
            }
            // Optimal unconnected prefix by ascending connection cost.
            let mut costs: Vec<f64> = unconnected
                .iter()
                .map(|&j| instance.connection_cost(site, j))
                .collect();
            costs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite costs"));
            let mut running = effective_f - credit;
            let mut last_ratio = f64::INFINITY;
            for (k, c) in costs.iter().enumerate() {
                // Unimodal JMS prefix rule: averages can only rise from here.
                if k > 0 && *c >= last_ratio {
                    break;
                }
                running += c;
                let ratio = running / (k + 1) as f64;
                if best.is_none_or(|(b, _, _)| ratio < b) {
                    best = Some((ratio, site, k + 1));
                }
                last_ratio = ratio;
            }
        }
        let (_, site, prefix) = best.expect("unconnected set is non-empty");
        // Deploy: connect the `prefix` cheapest unconnected clients and
        // switch every connected client that saves by moving. Cost ties
        // break by client index — the same canonical order the fast path's
        // precomputed per-site ordering uses.
        open[site] = true;
        let mut ordered: Vec<usize> = unconnected.clone();
        ordered.sort_unstable_by(|&a, &b| {
            instance
                .connection_cost(site, a)
                .partial_cmp(&instance.connection_cost(site, b))
                .expect("finite costs")
                .then(a.cmp(&b))
        });
        for &client in ordered.iter().take(prefix) {
            connected[client] = Some(site);
        }
        for (client, conn) in connected.iter_mut().enumerate() {
            if let Some(current) = conn {
                if instance.connection_cost(site, client)
                    < instance.connection_cost(*current, client)
                {
                    *conn = Some(site);
                }
            }
        }
        unconnected.retain(|&j| connected[j].is_none());
    }

    // Keep only facilities still serving someone, then let every client
    // take its nearest open facility (both steps are cost-non-increasing).
    let mut serving = vec![false; n];
    for conn in connected.iter().flatten() {
        serving[*conn] = true;
    }
    let open_sites: Vec<usize> = (0..n).filter(|&i| open[i] && serving[i]).collect();
    instance.assign_nearest(&open_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    /// Points on a small integer lattice: duplicate points and exact cost
    /// ties are the norm, exercising every tie-break path.
    fn lattice_points(n: usize, side: u32, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    f64::from(rng.gen_range(0..side)) * 100.0,
                    f64::from(rng.gen_range(0..side)) * 100.0,
                )
            })
            .collect()
    }

    /// Exhaustive optimum by enumerating every subset of open sites
    /// (only usable for tiny instances).
    fn brute_force_optimum(instance: &PlpInstance) -> f64 {
        let n = instance.len();
        assert!(n <= 12, "brute force only for tiny instances");
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) {
            let open: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let sol = instance.assign_nearest(&open);
            best = best.min(instance.cost_of(&sol).total());
        }
        best
    }

    #[test]
    fn single_client_opens_its_site() {
        let inst = PlpInstance::with_uniform_cost(vec![Point::new(5.0, 5.0)], 10.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities(), &[0]);
        assert_eq!(inst.cost_of(&sol).walking, 0.0);
        assert_eq!(inst.cost_of(&sol).space, 10.0);
    }

    #[test]
    fn clusters_get_one_facility_each() {
        let mut clients = Vec::new();
        for cluster in 0..3 {
            let cx = cluster as f64 * 2000.0;
            for k in 0..5 {
                clients.push(Point::new(cx + k as f64 * 10.0, 0.0));
            }
        }
        let inst = PlpInstance::with_uniform_cost(clients, 300.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 3);
        // Every client within its own cluster.
        let cost = inst.cost_of(&sol);
        assert!(cost.walking < 5.0 * 3.0 * 40.0);
    }

    #[test]
    fn expensive_opening_collapses_to_one() {
        let clients = uniform_points(20, 100.0, 1);
        let inst = PlpInstance::with_uniform_cost(clients, 1e7);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 1);
    }

    #[test]
    fn cheap_opening_opens_everywhere() {
        let clients = uniform_points(15, 10_000.0, 2);
        let inst = PlpInstance::with_uniform_cost(clients, 1e-3);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 15);
        assert_eq!(inst.cost_of(&sol).walking, 0.0);
    }

    #[test]
    fn every_client_assigned_to_open_facility() {
        let clients = uniform_points(60, 1000.0, 3);
        let inst = PlpInstance::with_uniform_cost(clients, 800.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.assignment.len(), 60);
        for &f in &sol.assignment {
            assert!(sol.open.contains(&f));
        }
        // Nearest-assignment invariant.
        for (j, &f) in sol.assignment.iter().enumerate() {
            let d = inst.clients()[f].distance(inst.clients()[j]);
            for &o in &sol.open {
                assert!(
                    inst.clients()[o].distance(inst.clients()[j]) >= d - 1e-9,
                    "client {j} not at nearest facility"
                );
            }
        }
    }

    #[test]
    fn within_factor_of_bruteforce_optimum() {
        // The 1.61 guarantee, with slack for the final reassignment: check
        // against exhaustive optima on several tiny random instances.
        for seed in 0..6 {
            let clients = uniform_points(9, 500.0, 100 + seed);
            let inst = PlpInstance::with_uniform_cost(clients, 150.0);
            let greedy = inst.cost_of(&jms_greedy(&inst)).total();
            let opt = brute_force_optimum(&inst);
            assert!(
                greedy <= 1.61 * opt + 1e-9,
                "seed {seed}: greedy {greedy} vs opt {opt}"
            );
            assert!(greedy >= opt - 1e-9);
        }
    }

    #[test]
    fn weighted_clients_pull_facilities() {
        // With one facility worth opening, the greedy places it at the
        // heavy client's site: serving the heavy client remotely would
        // cost 50 x 300 = 15000, serving the light one costs 300.
        let clients = vec![Point::new(0.0, 0.0), Point::new(300.0, 0.0)];
        let light = PlpInstance::new(clients.clone(), vec![1.0, 1.0], vec![400.0, 400.0]);
        let heavy = PlpInstance::new(clients, vec![1.0, 50.0], vec![400.0, 400.0]);
        assert_eq!(jms_greedy(&light).open_facilities().len(), 1);
        let sol = jms_greedy(&heavy);
        assert_eq!(
            sol.open_facilities(),
            &[1],
            "facility must sit at the heavy client"
        );
        assert_eq!(heavy.cost_of(&sol).walking, 300.0);
    }

    #[test]
    fn deterministic() {
        let clients = uniform_points(40, 1000.0, 9);
        let inst = PlpInstance::with_uniform_cost(clients, 500.0);
        assert_eq!(jms_greedy(&inst), jms_greedy(&inst));
    }

    #[test]
    fn matches_paper_scale_on_100_random_arrivals() {
        // Fig. 4(a): 100 random arrivals in a 1000x1000 field with a space
        // cost of 5000 per station -> ~5 stations, total cost ~42k. Exact
        // numbers depend on the draw; assert the paper's *scale*.
        let clients = uniform_points(100, 1000.0, 4);
        let inst = PlpInstance::with_uniform_cost(clients, 5000.0);
        let sol = jms_greedy(&inst);
        let cost = inst.cost_of(&sol);
        let stations = sol.open_facilities().len();
        assert!(
            (3..=8).contains(&stations),
            "station count {stations} outside Fig 4(a) band"
        );
        assert!(
            (30_000.0..=55_000.0).contains(&cost.total()),
            "total cost {} outside Fig 4(a) band",
            cost.total()
        );
    }

    #[test]
    fn fast_path_matches_reference_on_random_instances() {
        for seed in 0..8 {
            let n = 20 + 5 * seed as usize;
            let clients = uniform_points(n, 1000.0, 200 + seed);
            for f in [1e-3, 150.0, 5000.0, 1e7] {
                let inst = PlpInstance::with_uniform_cost(clients.clone(), f);
                assert_eq!(
                    jms_greedy(&inst),
                    jms_greedy_reference(&inst),
                    "seed {seed} f {f}"
                );
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_with_ties() {
        // Lattice instances are riddled with duplicate points and exact
        // cost ties; the canonical (cost, client-index) / lowest-site
        // tie-breaks must agree between the two paths.
        for seed in 0..6 {
            let clients = lattice_points(30, 4, 300 + seed);
            let inst = PlpInstance::with_uniform_cost(clients, 250.0);
            assert_eq!(
                jms_greedy(&inst),
                jms_greedy_reference(&inst),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fast_path_matches_reference_weighted() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(400 + seed);
            let n = 25;
            let clients = uniform_points(n, 800.0, 500 + seed);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
            let openings: Vec<f64> = (0..n).map(|_| rng.gen_range(50.0..2000.0)).collect();
            let inst = PlpInstance::new(clients, weights, openings);
            assert_eq!(
                jms_greedy(&inst),
                jms_greedy_reference(&inst),
                "seed {seed}"
            );
        }
    }
}
