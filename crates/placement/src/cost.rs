//! Cost accounting shared by all placement algorithms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// The two conflicting cost components of PLP, both expressed in meters of
/// equivalent walking distance (the paper converts monetary space cost into
/// walking distance, "e.g. 1 $ equal to 1000 m").
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlacementCost {
    /// User dissatisfaction: Σ aⱼ · d(i, j) over assigned destinations.
    pub walking: f64,
    /// Space occupation: Σ fᵢ over established parking locations.
    pub space: f64,
}

impl PlacementCost {
    /// Zero cost.
    pub const ZERO: PlacementCost = PlacementCost {
        walking: 0.0,
        space: 0.0,
    };

    /// Creates a cost from its components.
    pub fn new(walking: f64, space: f64) -> Self {
        PlacementCost { walking, space }
    }

    /// The optimization objective: `walking + space` (Eq. 1).
    #[inline]
    pub fn total(&self) -> f64 {
        self.walking + self.space
    }
}

impl Add for PlacementCost {
    type Output = PlacementCost;
    fn add(self, rhs: PlacementCost) -> PlacementCost {
        PlacementCost {
            walking: self.walking + rhs.walking,
            space: self.space + rhs.space,
        }
    }
}

impl Sum for PlacementCost {
    fn sum<I: Iterator<Item = PlacementCost>>(iter: I) -> Self {
        iter.fold(PlacementCost::ZERO, Add::add)
    }
}

impl fmt::Display for PlacementCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "walking={:.1} space={:.1} total={:.1}",
            self.walking,
            self.space,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum() {
        let c = PlacementCost::new(10.0, 5.0);
        assert_eq!(c.total(), 15.0);
        assert_eq!(PlacementCost::ZERO.total(), 0.0);
    }

    #[test]
    fn add_and_sum() {
        let a = PlacementCost::new(1.0, 2.0);
        let b = PlacementCost::new(3.0, 4.0);
        assert_eq!(a + b, PlacementCost::new(4.0, 6.0));
        let s: PlacementCost = [a, b, a].into_iter().sum();
        assert_eq!(s, PlacementCost::new(5.0, 8.0));
    }

    #[test]
    fn display_shows_all_components() {
        let c = PlacementCost::new(1.0, 2.0);
        let s = c.to_string();
        assert!(s.contains("walking") && s.contains("space") && s.contains("total"));
    }
}
