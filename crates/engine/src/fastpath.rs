//! Lock-free substrate of the shared-nothing decision path.
//!
//! The mailbox architecture pays a thread handoff (enqueue, worker
//! wake-up, reply, caller wake-up) on every request — DESIGN.md §5
//! measured that round trip at ~360µs p50 against <2µs of decision
//! compute. The fast path removes the handoff entirely: the caller
//! thread decides **inline** under the shard's seat (see
//! `engine::SeatState`), and the only cross-thread traffic left is
//!
//! * the [`DownstreamRing`] — a bounded lock-free ring carrying one
//!   emulated-downstream job per accepted request to the shard's drain
//!   worker, whose occupancy doubles as the admission-control signal
//!   (ring full ⇒ shed), and
//! * the [`DecisionViewCell`] — a seqlock-published copy of the shard's
//!   observable decision state, so monitoring reads never touch the
//!   serving path.
//!
//! Both are written in safe code only (the crate forbids `unsafe`): the
//! ring stores its payload in atomics, Vyukov-style, with a per-slot
//! sequence number carrying the publication handshake.

use esharing_placement::online::{DecisionView, DriftTask, DriftVerdict};
use esharing_placement::penalty::PenaltyType;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One ring slot: the sequence word drives the claim/publish/free
/// handshake, the payload is the request's arrival time in nanoseconds
/// since the engine epoch (all the drain worker needs to schedule the
/// emulated downstream fetch).
struct RingSlot {
    /// `pos` ⇒ free for the producer claiming position `pos`;
    /// `pos + 1` ⇒ published, ready for the consumer at position `pos`;
    /// `pos + capacity` ⇒ freed, i.e. free for position `pos + capacity`.
    seq: AtomicU64,
    arrival_ns: AtomicU64,
}

/// Bounded MPSC ring between submitting threads and a shard's drain
/// worker, with per-slot sequence numbers (Vyukov's bounded queue, used
/// single-consumer).
///
/// Producers claim a position with one CAS on `enqueue_pos`, fill the
/// payload, and publish by storing `pos + 1` into the slot's sequence
/// word. The single consumer ([`DownstreamRing::peek`] /
/// [`DownstreamRing::advance`]) holds each job through its emulated
/// downstream fetch and frees the slot only afterwards, so
/// [`DownstreamRing::occupancy`] counts queued **and** in-fetch jobs —
/// exactly the "pending mutations" depth the shed journal reports.
pub(crate) struct DownstreamRing {
    slots: Box<[RingSlot]>,
    cap: u64,
    /// Next position a producer will claim.
    enqueue_pos: AtomicU64,
    /// Next position the consumer will free. Written only by the
    /// consumer; producers read it for occupancy.
    dequeue_pos: AtomicU64,
}

impl DownstreamRing {
    /// A ring holding at most `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots: Vec<RingSlot> = (0..capacity as u64)
            .map(|i| RingSlot {
                seq: AtomicU64::new(i),
                arrival_ns: AtomicU64::new(0),
            })
            .collect();
        DownstreamRing {
            slots: slots.into_boxed_slice(),
            cap: capacity as u64,
            enqueue_pos: AtomicU64::new(0),
            dequeue_pos: AtomicU64::new(0),
        }
    }

    /// Jobs currently pending: claimed-but-unfreed positions, which
    /// includes the job whose emulated fetch is in flight.
    pub(crate) fn occupancy(&self) -> u64 {
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        enq.saturating_sub(deq)
    }

    /// Whether no job is pending.
    pub(crate) fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// Claims one slot and publishes `arrival_ns` into it.
    ///
    /// Returns the occupancy the producer observed on failure — the
    /// depth admission control journals for the shed.
    pub(crate) fn try_claim(&self, arrival_ns: u64) -> Result<(), u64> {
        loop {
            let pos = self.enqueue_pos.load(Ordering::Relaxed);
            let slot = &self.slots[(pos % self.cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                if self
                    .enqueue_pos
                    .compare_exchange_weak(pos, pos + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    slot.arrival_ns.store(arrival_ns, Ordering::Relaxed);
                    slot.seq.store(pos + 1, Ordering::Release);
                    return Ok(());
                }
                // Lost the race for this position; retry at the new one.
            } else if seq < pos {
                // The slot still holds a job `cap` positions back: full.
                return Err(self.occupancy());
            }
            // seq > pos: another producer advanced enqueue_pos; retry.
        }
    }

    /// Claims `n` consecutive slots as one unit and publishes
    /// `arrival_ns` into each — all or nothing, matching the router's
    /// whole-sub-batch shed semantics.
    ///
    /// Correctness of the single probe: the consumer frees slots in
    /// position order, so if the *last* slot of the candidate range is
    /// free for its position, every earlier one is too.
    ///
    /// Returns the observed occupancy on failure. `n` larger than the
    /// capacity always fails.
    pub(crate) fn try_claim_batch(&self, n: u64, arrival_ns: u64) -> Result<(), u64> {
        assert!(n > 0, "batch claim needs at least one slot");
        if n > self.cap {
            return Err(self.occupancy());
        }
        loop {
            let pos = self.enqueue_pos.load(Ordering::Relaxed);
            let last = pos + n - 1;
            let slot = &self.slots[(last % self.cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == last {
                if self
                    .enqueue_pos
                    .compare_exchange_weak(pos, pos + n, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // Publish in position order: the consumer unblocks on
                    // the first slot and walks forward.
                    for p in pos..pos + n {
                        let s = &self.slots[(p % self.cap) as usize];
                        s.arrival_ns.store(arrival_ns, Ordering::Relaxed);
                        s.seq.store(p + 1, Ordering::Release);
                    }
                    return Ok(());
                }
            } else if seq < last {
                return Err(self.occupancy());
            }
        }
    }

    /// Consumer: the arrival stamp of the oldest pending job, if one is
    /// published. Does **not** free the slot — the job stays counted in
    /// the occupancy until [`DownstreamRing::advance`], which is what
    /// keeps the in-fetch job visible to admission control.
    pub(crate) fn peek(&self) -> Option<u64> {
        let pos = self.dequeue_pos.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % self.cap) as usize];
        if slot.seq.load(Ordering::Acquire) == pos + 1 {
            Some(slot.arrival_ns.load(Ordering::Relaxed))
        } else {
            None
        }
    }

    /// Consumer: frees the slot last returned by [`DownstreamRing::peek`]
    /// and advances to the next position.
    pub(crate) fn advance(&self) {
        let pos = self.dequeue_pos.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % self.cap) as usize];
        debug_assert_eq!(
            slot.seq.load(Ordering::Acquire),
            pos + 1,
            "advance without a published job"
        );
        slot.seq.store(pos + self.cap, Ordering::Release);
        self.dequeue_pos.store(pos + 1, Ordering::Release);
    }
}

/// Two-mailbox handoff carrying deferred KS re-tests between a fast-path
/// shard's seat and its drain worker.
///
/// At a doubling boundary the seat snapshots its ranked window and offers
/// the evaluation as a [`DriftTask`] here; the drain worker picks it up
/// between ring harvests, runs the Peacock re-test off-seat, and deposits
/// the [`DriftVerdict`] (with its measured evaluation time) back. The seat
/// collects the verdict before its next decision and stores it into the
/// pending drift state, where the penalty switch commits deterministically
/// at the *next* boundary.
///
/// Timing never changes decisions: the evaluation is pure, so a verdict
/// that misses its commit boundary is simply recomputed inline there (see
/// `DriftMode::Deferred` in `esharing-placement`) and a stale deposit is
/// dropped by the epoch check in `commit_drift_verdict`. The flags keep
/// the hot path to one relaxed load per side when nothing is in flight;
/// the mutexes are only touched when a task or verdict actually moves.
pub(crate) struct DriftSlot {
    task: Mutex<Option<DriftTask>>,
    task_ready: AtomicBool,
    /// The evaluated verdict plus the off-seat evaluation time in
    /// nanoseconds (observed into the `ks_retest_deferred` stage).
    verdict: Mutex<Option<(DriftVerdict, u64)>>,
    verdict_ready: AtomicBool,
}

impl DriftSlot {
    pub(crate) fn new() -> Self {
        DriftSlot {
            task: Mutex::new(None),
            task_ready: AtomicBool::new(false),
            verdict: Mutex::new(None),
            verdict_ready: AtomicBool::new(false),
        }
    }

    /// Seat side: offers a boundary re-test to the drain worker. A stale
    /// unclaimed task (its boundary already re-tested inline) is simply
    /// replaced.
    pub(crate) fn offer(&self, task: DriftTask) {
        *self.task.lock().expect("drift task slot not poisoned") = Some(task);
        self.task_ready.store(true, Ordering::Release);
    }

    /// Worker side: claims the offered task, if any.
    pub(crate) fn take_task(&self) -> Option<DriftTask> {
        if !self.task_ready.load(Ordering::Acquire) {
            return None;
        }
        self.task_ready.store(false, Ordering::Relaxed);
        self.task
            .lock()
            .expect("drift task slot not poisoned")
            .take()
    }

    /// Worker side: deposits the evaluated verdict and its evaluation
    /// time for the seat to collect.
    pub(crate) fn deposit(&self, verdict: DriftVerdict, eval_ns: u64) {
        *self
            .verdict
            .lock()
            .expect("drift verdict slot not poisoned") = Some((verdict, eval_ns));
        self.verdict_ready.store(true, Ordering::Release);
    }

    /// Seat side: collects a deposited verdict, if any.
    pub(crate) fn take_verdict(&self) -> Option<(DriftVerdict, u64)> {
        if !self.verdict_ready.load(Ordering::Acquire) {
            return None;
        }
        self.verdict_ready.store(false, Ordering::Relaxed);
        self.verdict
            .lock()
            .expect("drift verdict slot not poisoned")
            .take()
    }
}

const PENALTY_NONE: u64 = 0;
const PENALTY_I: u64 = 1;
const PENALTY_II: u64 = 2;
const PENALTY_III: u64 = 3;

fn encode_penalty(p: PenaltyType) -> u64 {
    match p {
        PenaltyType::None => PENALTY_NONE,
        PenaltyType::TypeI => PENALTY_I,
        PenaltyType::TypeII => PENALTY_II,
        PenaltyType::TypeIII => PENALTY_III,
    }
}

fn decode_penalty(code: u64) -> PenaltyType {
    match code {
        PENALTY_NONE => PenaltyType::None,
        PENALTY_I => PenaltyType::TypeI,
        PENALTY_II => PenaltyType::TypeII,
        _ => PenaltyType::TypeIII,
    }
}

/// Seqlock-published copy of a shard's [`DecisionView`].
///
/// The decider (holding the shard seat) republishes after every decision;
/// any thread may read without blocking the serving path. The version
/// word is odd while a publication is in progress; readers retry until
/// they observe the same even version before and after loading the
/// fields. All fields are relaxed atomics — the version word's
/// acquire/release pair orders them.
pub(crate) struct DecisionViewCell {
    /// 0 = never published; odd = publication in progress.
    version: AtomicU64,
    decision_cost: AtomicU64,
    penalty: AtomicU64,
    stations: AtomicU64,
    opened_online: AtomicU64,
    epoch: AtomicU64,
    window_len: AtomicU64,
    /// `f64` bits; NaN encodes "no KS test has run yet".
    last_similarity: AtomicU64,
}

impl DecisionViewCell {
    pub(crate) fn new() -> Self {
        DecisionViewCell {
            version: AtomicU64::new(0),
            decision_cost: AtomicU64::new(0),
            penalty: AtomicU64::new(PENALTY_NONE),
            stations: AtomicU64::new(0),
            opened_online: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            window_len: AtomicU64::new(0),
            last_similarity: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Publishes `view`, bumping the version to the next even value.
    /// Single-writer: callers serialize through the shard seat.
    pub(crate) fn publish(&self, view: &DecisionView) {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v + 1, Ordering::Release);
        self.decision_cost
            .store(view.decision_cost.to_bits(), Ordering::Relaxed);
        self.penalty
            .store(encode_penalty(view.penalty), Ordering::Relaxed);
        self.stations.store(view.stations as u64, Ordering::Relaxed);
        self.opened_online
            .store(view.opened_online as u64, Ordering::Relaxed);
        self.epoch.store(view.epoch, Ordering::Relaxed);
        self.window_len
            .store(view.window_len as u64, Ordering::Relaxed);
        let sim = view.last_similarity.unwrap_or(f64::NAN);
        self.last_similarity.store(sim.to_bits(), Ordering::Relaxed);
        self.version.store(v + 2, Ordering::Release);
    }

    /// A consistent copy of the last published view, or `None` before the
    /// first publication. Lock-free; retries while a publication is in
    /// flight.
    pub(crate) fn read(&self) -> Option<DecisionView> {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 == 0 {
                return None;
            }
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let decision_cost = f64::from_bits(self.decision_cost.load(Ordering::Relaxed));
            let penalty = decode_penalty(self.penalty.load(Ordering::Relaxed));
            let stations = self.stations.load(Ordering::Relaxed) as usize;
            let opened_online = self.opened_online.load(Ordering::Relaxed) as usize;
            let epoch = self.epoch.load(Ordering::Relaxed);
            let window_len = self.window_len.load(Ordering::Relaxed) as usize;
            let sim = f64::from_bits(self.last_similarity.load(Ordering::Relaxed));
            let v2 = self.version.load(Ordering::Acquire);
            if v1 == v2 {
                return Some(DecisionView {
                    decision_cost,
                    penalty,
                    stations,
                    opened_online,
                    epoch,
                    window_len,
                    last_similarity: (!sim.is_nan()).then_some(sim),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_claims_until_full_then_sheds_with_depth() {
        let ring = DownstreamRing::new(3);
        assert!(ring.is_empty());
        for i in 0..3 {
            assert_eq!(ring.try_claim(i), Ok(()));
        }
        assert_eq!(ring.occupancy(), 3);
        assert_eq!(ring.try_claim(99), Err(3));
        // Peek sees the oldest job but keeps it counted until advance.
        assert_eq!(ring.peek(), Some(0));
        assert_eq!(ring.occupancy(), 3);
        ring.advance();
        assert_eq!(ring.occupancy(), 2);
        assert_eq!(ring.try_claim(3), Ok(()));
        // FIFO across the wrap.
        assert_eq!(ring.peek(), Some(1));
        ring.advance();
        assert_eq!(ring.peek(), Some(2));
        ring.advance();
        assert_eq!(ring.peek(), Some(3));
        ring.advance();
        assert!(ring.is_empty());
        assert_eq!(ring.peek(), None);
    }

    #[test]
    fn ring_batch_claim_is_all_or_nothing() {
        let ring = DownstreamRing::new(4);
        assert_eq!(ring.try_claim_batch(3, 7), Ok(()));
        assert_eq!(ring.occupancy(), 3);
        // Two more don't fit next to three pending.
        assert_eq!(ring.try_claim_batch(2, 8), Err(3));
        assert_eq!(ring.occupancy(), 3, "failed batch must not claim slots");
        assert_eq!(ring.try_claim_batch(1, 8), Ok(()));
        // Larger than capacity can never fit.
        let empty = DownstreamRing::new(2);
        assert_eq!(empty.try_claim_batch(3, 0), Err(0));
    }

    #[test]
    fn ring_concurrent_producers_lose_no_jobs() {
        let ring = Arc::new(DownstreamRing::new(1024));
        let producers = 4;
        let per_producer = 200u64;
        std::thread::scope(|scope| {
            for t in 0..producers {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..per_producer {
                        ring.try_claim(t * per_producer + i).expect("ring sized");
                    }
                });
            }
        });
        let mut seen = Vec::new();
        while let Some(v) = ring.peek() {
            seen.push(v);
            ring.advance();
        }
        assert_eq!(seen.len() as u64, producers * per_producer);
        seen.sort_unstable();
        let want: Vec<u64> = (0..producers * per_producer).collect();
        assert_eq!(seen, want, "every claimed job must surface exactly once");
    }

    #[test]
    fn view_cell_round_trips_and_reports_unpublished() {
        let cell = DecisionViewCell::new();
        assert_eq!(cell.read(), None);
        let view = DecisionView {
            decision_cost: 123.5,
            penalty: PenaltyType::TypeIII,
            stations: 17,
            opened_online: 3,
            epoch: 9,
            window_len: 200,
            last_similarity: Some(87.5),
        };
        cell.publish(&view);
        assert_eq!(cell.read(), Some(view));
        let newer = DecisionView {
            last_similarity: None,
            epoch: 10,
            ..view
        };
        cell.publish(&newer);
        assert_eq!(cell.read(), Some(newer));
    }
}
