//! Table III / Fig. 9 — Cost of the penalty functions under uniform,
//! Poisson and normal request distributions.
//!
//! §V-B streams ~200 synthetic requests per trial (100 trials) at the
//! deviation-penalty algorithm with the offline-derived parking at the
//! field center, for each penalty type (plus the no-penalty control), and
//! reports walking / public-space / total cost in km. The paper's
//! winners: **Type I** under uniform, **Type III** under Poisson,
//! **Type II** under normal; *no penalty* always attains the minimum
//! walking cost by opening stations freely.
//!
//! Reproduction note (also in `EXPERIMENTS.md`): with the paper's own
//! penalty formulas, `g_III > g_I` for deviations *inside* the tolerance
//! (the Gaussian plateau), so once the Poisson ring is covered Type III
//! keeps opening stations and lands a close second rather than first in
//! our runs; Type I and Type II winners reproduce robustly, as do the
//! no-penalty-minimizes-walking and Type-II-minimizes-space properties.

use esharing_bench::Table;
use esharing_geo::Point;
use esharing_placement::online::{DeviationConfig, DeviationPenalty, OnlinePlacement};
use esharing_placement::penalty::PenaltyType;
use esharing_placement::PlacementCost;
use esharing_stats::samplers::{Gaussian2d, PointSampler, PoissonRadial, UniformField};
use esharing_stats::RunningStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: u64 = 100;
const REQUESTS: usize = 200;
const CENTER: Point = Point::new(1_000.0, 1_000.0);
/// Space-occupation accounting cost per station (meters ≈ 1.2 km), scaled
/// so Table III's km-magnitude costs emerge at 200 requests.
const SPACE_COST: f64 = 1_200.0;
const TOLERANCE: f64 = 200.0;
/// Fixed initial decision cost (the single-landmark `w*/k` is degenerate).
const DECISION_COST: f64 = 500.0;

fn sampler(kind: &str) -> Box<dyn PointSampler> {
    match kind {
        // Wide spread: anywhere within ±800 m of the center.
        "uniform" => Box::new(UniformField::centered_square(CENTER, 1_600.0)),
        // Mid-range ring at ~240 m (≈1.2 L) with occasional far tails.
        "poisson" => Box::new(PoissonRadial::new(CENTER, 4.0, 60.0)),
        // Aggregated around the center, 2σ within the tolerance.
        "normal" => Box::new(Gaussian2d::new(CENTER, 80.0)),
        other => unreachable!("unknown distribution {other}"),
    }
}

fn run_once(kind: &str, penalty: PenaltyType, seed: u64) -> (PlacementCost, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = sampler(kind);
    let stream: Vec<Point> = (0..REQUESTS).map(|_| s.sample(&mut rng)).collect();
    // "The offline derived parking locating at the origin" — one landmark
    // at the center; the KS switch is disabled so each penalty type is
    // evaluated in isolation.
    let mut alg = DeviationPenalty::new(
        vec![CENTER],
        Vec::new(),
        DeviationConfig {
            space_cost: SPACE_COST,
            tolerance: TOLERANCE,
            initial_penalty: penalty,
            auto_penalty: false,
            beta: 64.0,
            initial_decision_cost: Some(DECISION_COST),
            seed,
            ..DeviationConfig::default()
        },
    );
    let cost = alg.run(stream);
    (cost, alg.stations().len())
}

fn main() {
    println!(
        "Table III — cost of penalty functions under random request distributions\n\
         ({TRIALS} trials x {REQUESTS} requests, L = {TOLERANCE} m, station cost {SPACE_COST} m; costs in km)\n"
    );
    let penalties = [
        ("No Penalty", PenaltyType::None),
        ("Type I", PenaltyType::TypeI),
        ("Type II", PenaltyType::TypeII),
        ("Type III", PenaltyType::TypeIII),
    ];
    for kind in ["uniform", "poisson", "normal"] {
        let mut t = Table::new(vec![
            "penalty".into(),
            "walking (km)".into(),
            "space (km)".into(),
            "total (km)".into(),
            "# stations".into(),
        ]);
        let mut totals = Vec::new();
        let mut min_walking = ("", f64::INFINITY);
        let mut min_space = ("", f64::INFINITY);
        for (name, penalty) in penalties {
            let mut walking = RunningStats::new();
            let mut space = RunningStats::new();
            let mut total = RunningStats::new();
            let mut stations = RunningStats::new();
            for trial in 0..TRIALS {
                let (cost, n) = run_once(kind, penalty, trial * 31 + penalty as u64);
                walking.push(cost.walking / 1_000.0);
                space.push(cost.space / 1_000.0);
                total.push(cost.total() / 1_000.0);
                stations.push(n as f64);
            }
            totals.push((name, total.mean()));
            if walking.mean() < min_walking.1 {
                min_walking = (name, walking.mean());
            }
            if space.mean() < min_space.1 {
                min_space = (name, space.mean());
            }
            t.row(vec![
                name.into(),
                format!("{:.2}", walking.mean()),
                format!("{:.2}", space.mean()),
                format!("{:.2}", total.mean()),
                format!("{:.1}", stations.mean()),
            ]);
        }
        let mut ranked = totals.clone();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        println!(
            "{kind}:\n{t}total ranking: {}  |  min walking: {}  min space: {}\n",
            ranked
                .iter()
                .map(|(n, v)| format!("{n} ({v:.1})"))
                .collect::<Vec<_>>()
                .join(" < "),
            min_walking.0,
            min_space.0,
        );
    }
    println!(
        "paper winners — uniform: Type I, poisson: Type III, normal: Type II;\n\
         no-penalty minimizes walking everywhere, Type II minimizes space (see module docs\n\
         for the Type III / Poisson caveat)."
    );
}
