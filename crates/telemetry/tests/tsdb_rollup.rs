//! Property-based correctness of the tsdb rollup rings.
//!
//! Two families of properties against an unbounded-map *model* of the
//! ring semantics (same accept/advance/late-drop rules, no fixed slots,
//! so slot aliasing and clear-on-advance bugs cannot hide in it):
//!
//! 1. **Direct aggregation**: every retained bucket, at every
//!    resolution, exactly equals the rollup of the raw samples that
//!    landed in it — `sum`/`count`/`min`/`max` bit-for-bit, because both
//!    sides fold the same samples in the same feed order. Timestamps are
//!    a jittered random walk (out-of-order late samples, long gaps) so
//!    wraparound, clear-on-advance, and late-drop all get exercised.
//! 2. **Cross-resolution fold**: merging the fine buckets spanned by a
//!    coarse bucket equals the coarse bucket, whenever both resolutions
//!    retained the same samples for that span. Sample values are dyadic
//!    rationals (multiples of 0.25), so f64 summation is exact and the
//!    different accumulation grouping of the two sides cannot diverge.
//!
//! Histogram series get the same two properties with per-sweep
//! cumulative snapshots: the store must bucket exact deltas, and folded
//! deltas must merge across resolutions losslessly.

use esharing_telemetry::tsdb::{RollupSpec, SeriesKind, Tsdb, TsdbConfig};
use esharing_telemetry::LatencyHistogram;
use proptest::prelude::*;
use std::collections::BTreeMap;

const SEC: u64 = 1_000_000_000;

/// Small rings at three resolutions so ~60 samples force several wraps.
fn small_cfg() -> TsdbConfig {
    TsdbConfig::with_resolutions(vec![
        RollupSpec {
            bucket_ns: SEC,
            len: 6,
        },
        RollupSpec {
            bucket_ns: 5 * SEC,
            len: 5,
        },
        RollupSpec {
            bucket_ns: 20 * SEC,
            len: 4,
        },
    ])
}

/// Unbounded-map mirror of one ring's accept/advance/late-drop rules,
/// retaining the *raw samples* per bucket instead of a rollup.
struct ModelRing<S> {
    bucket_ns: u64,
    len: u64,
    head: Option<u64>,
    buckets: BTreeMap<u64, Vec<S>>,
}

impl<S: Clone> ModelRing<S> {
    fn new(spec: RollupSpec) -> Self {
        ModelRing {
            bucket_ns: spec.bucket_ns,
            len: spec.len as u64,
            head: None,
            buckets: BTreeMap::new(),
        }
    }

    fn observe(&mut self, t_ns: u64, s: &S) {
        let idx = t_ns / self.bucket_ns;
        match self.head {
            None => {
                self.head = Some(idx);
                self.buckets.entry(idx).or_default().push(s.clone());
            }
            Some(h) if idx >= h => {
                self.head = Some(idx);
                self.buckets.entry(idx).or_default().push(s.clone());
            }
            Some(h) => {
                // Late sample: accepted only while its bucket is retained.
                if h - idx < self.len {
                    self.buckets.entry(idx).or_default().push(s.clone());
                }
            }
        }
    }

    /// Buckets the real ring must still hold: `(head - len, head]`.
    fn retained(&self) -> Vec<(u64, &Vec<S>)> {
        let Some(h) = self.head else {
            return Vec::new();
        };
        let oldest = h.saturating_sub(self.len - 1);
        self.buckets
            .range(oldest..=h)
            .map(|(&b, v)| (b, v))
            .collect()
    }
}

/// A jittered timestamp walk: mostly forward steps of 0–4 s in 250 ms
/// units, occasional multi-minute gaps (sparse windows), occasional
/// backward jitter (late samples). Values are dyadic (quarters).
fn sample_stream() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..40, 0u32..4, -8i64..16, 0u32..4_000), 1..120).prop_map(
        |steps| {
            let mut t: i64 = 0;
            let mut out = Vec::with_capacity(steps.len());
            for (fwd, gap, jitter, val) in steps {
                // Quarter-second forward steps, rare ~100 s gaps, signed jitter.
                t += (fwd as i64) * (SEC as i64 / 4);
                if gap == 0 {
                    t += 100 * SEC as i64;
                }
                let jittered = (t + jitter * (SEC as i64 / 2)).max(0) as u64;
                out.push((jittered, f64::from(val) * 0.25));
            }
            out
        },
    )
}

/// Bucket vectors compare up to trailing zeros: a delta derived from a
/// cumulative histogram keeps the cumulative vector's length.
fn trimmed(h: &LatencyHistogram) -> &[u64] {
    let b = h.buckets();
    let last = b.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    &b[..last]
}

fn fold_scalar(samples: &[f64]) -> (f64, u64, f64, f64) {
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in samples {
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    (sum, samples.len() as u64, min, max)
}

proptest! {
    /// Property 1 (scalars): every retained bucket at every resolution is
    /// exactly the fold of the raw samples that landed in it.
    #[test]
    fn rollups_equal_direct_aggregation(stream in sample_stream()) {
        let cfg = small_cfg();
        let mut tsdb = Tsdb::new(&cfg);
        let mut models: Vec<ModelRing<f64>> =
            cfg.resolutions.iter().map(|&r| ModelRing::new(r)).collect();
        for &(t, v) in &stream {
            tsdb.record_scalar(t, "s", &[], SeriesKind::Gauge, v);
            for m in &mut models {
                m.observe(t, &v);
            }
        }
        for (res, model) in models.iter().enumerate() {
            let got = tsdb.scalar_buckets("s", &[], res, 0, u64::MAX);
            let want = model.retained();
            prop_assert_eq!(got.len(), want.len(), "resolution {}", res);
            for ((start, rollup), (bucket, samples)) in got.iter().zip(&want) {
                prop_assert_eq!(*start, bucket * cfg.resolutions[res].bucket_ns);
                let (sum, count, min, max) = fold_scalar(samples);
                prop_assert_eq!(rollup.sum, sum, "sum at res {} bucket {}", res, bucket);
                prop_assert_eq!(rollup.count, count);
                prop_assert_eq!(rollup.min, min);
                prop_assert_eq!(rollup.max, max);
            }
        }
    }

    /// Property 2 (scalars): fine buckets merged over a coarse bucket's
    /// span equal the coarse bucket whenever both rings retained the same
    /// samples for that span (dyadic values make the sums exact).
    #[test]
    fn fine_buckets_fold_into_coarse(stream in sample_stream()) {
        let cfg = small_cfg();
        let mut tsdb = Tsdb::new(&cfg);
        let mut models: Vec<ModelRing<f64>> =
            cfg.resolutions.iter().map(|&r| ModelRing::new(r)).collect();
        for &(t, v) in &stream {
            tsdb.record_scalar(t, "s", &[], SeriesKind::Gauge, v);
            for m in &mut models {
                m.observe(t, &v);
            }
        }
        for coarse_res in 1..cfg.resolutions.len() {
            let coarse_ns = cfg.resolutions[coarse_res].bucket_ns;
            let fine_ns = cfg.resolutions[0].bucket_ns;
            for (cb, coarse_samples) in models[coarse_res].retained() {
                // The fine samples retained for this coarse span, in order.
                let fine_span: Vec<f64> = models[0]
                    .retained()
                    .into_iter()
                    .filter(|(fb, _)| fb * fine_ns >= cb * coarse_ns
                        && fb * fine_ns < (cb + 1) * coarse_ns)
                    .flat_map(|(_, v)| v.clone())
                    .collect();
                let mut sorted_fine = fine_span.clone();
                let mut sorted_coarse = coarse_samples.clone();
                sorted_fine.sort_by(f64::total_cmp);
                sorted_coarse.sort_by(f64::total_cmp);
                if sorted_fine != sorted_coarse {
                    // The rings diverged legitimately (fine wrap or fine
                    // late-drop); the fold comparison is undefined here.
                    continue;
                }
                let got = tsdb.scalar_buckets("s", &[], 0, cb * coarse_ns, (cb + 1) * coarse_ns - 1);
                let mut merged = esharing_telemetry::Rollup::EMPTY;
                for (_, r) in &got {
                    merged.merge(r);
                }
                let coarse_got = tsdb.scalar_buckets("s", &[], coarse_res, cb * coarse_ns, cb * coarse_ns);
                prop_assert_eq!(coarse_got.len(), 1);
                let c = coarse_got[0].1;
                prop_assert_eq!(merged.count, c.count, "coarse res {} bucket {}", coarse_res, cb);
                prop_assert_eq!(merged.sum, c.sum);
                prop_assert_eq!(merged.min, c.min);
                prop_assert_eq!(merged.max, c.max);
            }
        }
    }

    /// Properties 1+2 for histogram series: buckets hold exact deltas of
    /// the cumulative sweeps, and fine deltas merge losslessly into
    /// coarse buckets.
    #[test]
    fn histogram_rollups_fold_exactly(
        sweeps in proptest::collection::vec(
            (0u64..30, proptest::collection::vec(500u64..5_000_000, 0..20)),
            1..40,
        ),
    ) {
        let cfg = small_cfg();
        let mut tsdb = Tsdb::new(&cfg);
        let mut models: Vec<ModelRing<LatencyHistogram>> =
            cfg.resolutions.iter().map(|&r| ModelRing::new(r)).collect();
        let mut cum = LatencyHistogram::new();
        let mut t = 0u64;
        for (step, values) in &sweeps {
            t += step * SEC / 2;
            let mut delta = LatencyHistogram::new();
            for &v in values {
                cum.record_ns(v);
                delta.record_ns(v);
            }
            tsdb.record_histogram(t, "h", &[], &cum);
            if !delta.is_empty() {
                for m in &mut models {
                    m.observe(t, &delta);
                }
            }
        }
        for (res, model) in models.iter().enumerate() {
            let got = tsdb.histogram_buckets("h", &[], res, 0, u64::MAX);
            let want = model.retained();
            prop_assert_eq!(got.len(), want.len(), "resolution {}", res);
            for ((start, hist), (bucket, deltas)) in got.iter().zip(&want) {
                prop_assert_eq!(*start, bucket * cfg.resolutions[res].bucket_ns);
                let mut merged = LatencyHistogram::new();
                for d in *deltas {
                    merged += d.clone();
                }
                prop_assert_eq!(hist.count(), merged.count());
                prop_assert_eq!(hist.sum_ns(), merged.sum_ns());
                prop_assert_eq!(trimmed(hist), trimmed(&merged));
            }
        }
        // Cross-resolution fold: merge all retained fine buckets and all
        // retained coarsest buckets over the fine window; where the fine
        // window is a suffix of the coarse one, quantiles must agree on
        // the overlap. Cheap structural check: folding coarse buckets
        // over the *entire* horizon equals the model's own merge.
        let coarsest = cfg.resolutions.len() - 1;
        let got = tsdb.histogram_buckets("h", &[], coarsest, 0, u64::MAX);
        let mut folded = LatencyHistogram::new();
        for (_, h) in &got {
            folded += h.clone();
        }
        let mut want = LatencyHistogram::new();
        for (_, deltas) in models[coarsest].retained() {
            for d in deltas {
                want += d.clone();
            }
        }
        prop_assert_eq!(trimmed(&folded), trimmed(&want));
        prop_assert_eq!(folded.sum_ns(), want.sum_ns());
    }
}
