//! Table VI / Fig. 12 — Charging cost and utility for different incentive
//! levels α.
//!
//! The paper compares α ∈ {0, 1, 0.7, 0.4} on the same fleet state and
//! reports the Eq. 10 cost breakdown (service / delay / energy /
//! incentives) of the *full* charging tour over every station still
//! requiring service, plus two shift-budget metrics: the percentage of low
//! bikes charged within fixed working hours and the operator's moving
//! distance. Expected shape: α = 0 pays the most (n scattered stations,
//! quadratic delay) and charges only ~42% within the shift; a moderate
//! α = 0.4 minimizes total cost (~47% saving); larger α overpays users;
//! the route shortens by ~17%.
//!
//! Fig. 12 sweeps the per-stop service cost `q` and reports total cost (a)
//! and charged percentage (b) per α.

use esharing_bench::Table;
use esharing_charging::{
    tsp, ChargingCostParams, IncentiveMechanism, Operator, StationEnergy, UserModel,
};
use esharing_core::{ESharing, SystemConfig};
use esharing_dataset::{CityConfig, Fleet, SyntheticCity, TripGenerator};
use esharing_geo::Point;

/// Stations with at most this many low bikes are deferred to the next
/// service period (§IV-C Remarks).
const SKIP_BELOW: usize = 2;

struct AlphaRun {
    sites: usize,
    service: f64,
    delay: f64,
    energy: f64,
    incentives: f64,
    total: f64,
    charged_pct: f64,
    distance_km: f64,
}

/// Builds the (identical) pre-maintenance station energy state.
fn station_state() -> Vec<StationEnergy> {
    let city = SyntheticCity::generate(&CityConfig {
        trips_per_day: 2_500.0,
        fleet_size: 900,
        ..CityConfig::default()
    });
    let mut gen = TripGenerator::new(&city, 7);
    let history = gen.generate_days(0, 3);
    let mut system = ESharing::new(SystemConfig {
        // A busy station sees plenty of pickups during a service period;
        // the offer loop runs "until L_i -> 0" or arrivals run out.
        offers_per_station: 120,
        ..SystemConfig::default()
    });
    system.bootstrap(&history.iter().map(|t| t.end).collect::<Vec<Point>>());
    let mut fleet = Fleet::new(900, city.bbox(), system.config().energy, 11);
    fleet.replay(history.iter());
    let live = gen.generate_days(3, 2);
    fleet.replay(live.iter());
    fleet.apply_idle_day();
    system.station_energy(&fleet).expect("bootstrapped")
}

fn run_alpha(stations: &[StationEnergy], alpha: f64, service_q: f64) -> AlphaRun {
    let params = ChargingCostParams {
        service_q,
        ..ChargingCostParams::default()
    };
    let mechanism = IncentiveMechanism::new(params, UserModel::default(), alpha, 42);
    let outcome = mechanism.run_period(stations);
    let after = Operator::stations_after_incentives(stations, &outcome);

    // Full-tour accounting (Eq. 10) over every site still needing service.
    let demand: Vec<&StationEnergy> = after.iter().filter(|s| s.low_bikes > SKIP_BELOW).collect();
    let m = demand.len();
    let serviced_bikes: usize = demand.iter().map(|s| s.low_bikes).sum();
    let service = m as f64 * params.service_q;
    let delay = (m as f64 * m as f64 - m as f64) / 2.0 * params.delay_d;
    let energy = serviced_bikes as f64 * params.energy_b;
    let total = service + delay + energy + outcome.incentives_paid;

    // Shift-budget metrics: the operator's fixed working hours.
    let operator =
        Operator::new(Point::ORIGIN, 4.0, 600.0, 3.2 * 3_600.0).with_skip_below(SKIP_BELOW);
    let shift = operator.run_shift(&after, &params);

    // Moving distance of the full tour.
    let points: Vec<Point> = demand.iter().map(|s| s.location).collect();
    let distance = if points.is_empty() {
        0.0
    } else {
        tsp::route_length(Point::ORIGIN, &points, &tsp::solve(Point::ORIGIN, &points))
    };
    AlphaRun {
        sites: m,
        service,
        delay,
        energy,
        incentives: outcome.incentives_paid,
        total,
        charged_pct: 100.0 * shift.charged_fraction(),
        distance_km: distance / 1_000.0,
    }
}

fn main() {
    let stations = station_state();
    let total_low: usize = stations.iter().map(|s| s.low_bikes).sum();
    let q_default = ChargingCostParams::default().service_q;
    println!(
        "Table VI — charging costs ($) per incentive level over {} stations / {} low bikes\n\
         (q = {q_default}, d = 5, b = 2; full-tour Eq. 10 costs, shift-budget utility)\n",
        stations.iter().filter(|s| s.low_bikes > 0).count(),
        total_low
    );
    let alphas = [0.0, 1.0, 0.7, 0.4];
    let runs: Vec<AlphaRun> = alphas
        .iter()
        .map(|&a| run_alpha(&stations, a, q_default))
        .collect();

    let mut t = Table::new(vec![
        "metric".into(),
        "alpha=0".into(),
        "alpha=1".into(),
        "alpha=0.7".into(),
        "alpha=0.4".into(),
    ]);
    let fmt_row = |name: &str, f: &dyn Fn(&AlphaRun) -> String| -> Vec<String> {
        std::iter::once(name.to_string())
            .chain(runs.iter().map(f))
            .collect()
    };
    t.row(fmt_row("Charging sites", &|r| r.sites.to_string()));
    t.row(fmt_row("Service cost", &|r| format!("{:.0}", r.service)));
    t.row(fmt_row("Delay cost", &|r| format!("{:.0}", r.delay)));
    t.row(fmt_row("Energy cost", &|r| format!("{:.0}", r.energy)));
    t.row(fmt_row("Incentives", &|r| format!("{:.0}", r.incentives)));
    t.row(fmt_row("Total cost", &|r| format!("{:.0}", r.total)));
    t.row(fmt_row("% charged (shift)", &|r| {
        format!("{:.1}", r.charged_pct)
    }));
    t.row(fmt_row("Distance (km)", &|r| {
        format!("{:.1}", r.distance_km)
    }));
    println!("{t}");

    let base = &runs[0];
    let (best_run, best_alpha) = runs
        .iter()
        .zip(alphas)
        .min_by(|a, b| a.0.total.partial_cmp(&b.0.total).expect("finite"))
        .expect("non-empty");
    println!(
        "best alpha: {} with {:.0}% total saving vs alpha=0 (paper: alpha=0.4, 47%)",
        best_alpha,
        100.0 * (base.total - best_run.total) / base.total
    );
    println!(
        "service saving {:.0}% (paper 64%), delay saving {:.0}% (paper 88%), distance saving {:.1}% (paper 17.5%)\n",
        100.0 * (base.service - runs[3].service) / base.service,
        100.0 * (base.delay - runs[3].delay) / base.delay,
        100.0 * (base.distance_km - runs[3].distance_km) / base.distance_km
    );

    // Fig. 12 — sweep the service cost q.
    println!("Fig. 12 — total cost (a) and % charged (b) vs service cost q:");
    let mut fig = Table::new(vec![
        "q".into(),
        "total a=0".into(),
        "total a=0.4".into(),
        "total a=0.7".into(),
        "total a=1".into(),
        "%chg a=0".into(),
        "%chg a=0.4".into(),
        "%chg a=0.7".into(),
        "%chg a=1".into(),
    ]);
    for q in [10.0, 30.0, 60.0, 90.0, 120.0] {
        let sweep: Vec<AlphaRun> = [0.0, 0.4, 0.7, 1.0]
            .iter()
            .map(|&a| run_alpha(&stations, a, q))
            .collect();
        fig.row(vec![
            format!("{q:.0}"),
            format!("{:.0}", sweep[0].total),
            format!("{:.0}", sweep[1].total),
            format!("{:.0}", sweep[2].total),
            format!("{:.0}", sweep[3].total),
            format!("{:.1}", sweep[0].charged_pct),
            format!("{:.1}", sweep[1].charged_pct),
            format!("{:.1}", sweep[2].charged_pct),
            format!("{:.1}", sweep[3].charged_pct),
        ]);
    }
    println!("{fig}");
    println!(
        "paper shape: incentives help most where service cost is high; charged % is\n\
         roughly flat-high for alpha > 0 and low without incentives."
    );
}
