//! A bucket-grid nearest-neighbour index.
//!
//! The online placement algorithms repeatedly ask "which established parking
//! is closest to this destination?" for every streamed request. A linear
//! scan is O(|P|) per query; this index hashes parking locations into grid
//! buckets and searches outward ring by ring, giving near-O(1) queries for
//! the spatially uniform workloads in the paper.

use crate::{Cell, Grid, Point};
use std::collections::BTreeMap;

/// A dynamic nearest-neighbour index over planar points.
///
/// Supports insertion, removal (the paper removes a station from `P` when
/// customers pick up all its e-bikes), and exact nearest-neighbour queries.
/// Iteration order is deterministic (buckets are kept in a `BTreeMap` and
/// points in insertion order within a bucket), so algorithms built on the
/// index replay identically for a fixed seed.
///
/// # Examples
///
/// ```
/// use esharing_geo::{NearestNeighborIndex, Point};
///
/// let mut index = NearestNeighborIndex::new(100.0);
/// index.insert(Point::new(0.0, 0.0));
/// index.insert(Point::new(500.0, 500.0));
/// let (nearest, d) = index.nearest(Point::new(80.0, 60.0)).unwrap();
/// assert_eq!(nearest, Point::new(0.0, 0.0));
/// assert!((d - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct NearestNeighborIndex {
    grid: Grid,
    buckets: BTreeMap<Cell, Vec<Point>>,
    len: usize,
}

impl NearestNeighborIndex {
    /// Creates an index with the given bucket size in meters. A bucket size
    /// close to the typical nearest-neighbour distance performs best.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_size` is not strictly positive and finite.
    pub fn new(bucket_size: f64) -> Self {
        NearestNeighborIndex {
            grid: Grid::new(bucket_size),
            buckets: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point. Duplicate points are allowed and count separately.
    pub fn insert(&mut self, p: Point) {
        debug_assert!(p.is_finite(), "cannot index non-finite point");
        self.buckets.entry(self.grid.cell_of(p)).or_default().push(p);
        self.len += 1;
    }

    /// Removes one occurrence of `p`. Returns `true` if a point was removed.
    pub fn remove(&mut self, p: Point) -> bool {
        let cell = self.grid.cell_of(p);
        if let Some(bucket) = self.buckets.get_mut(&cell) {
            if let Some(pos) = bucket.iter().position(|&q| q == p) {
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.buckets.remove(&cell);
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Exact nearest neighbour of `query` with its distance, or `None` when
    /// the index is empty.
    ///
    /// Searches buckets in growing Chebyshev rings around the query cell and
    /// stops once the closest found point is provably nearer than anything
    /// in the unexplored rings. For very sparse indexes (points thousands of
    /// cells apart) the ring scan is abandoned after a fixed budget in
    /// favour of a direct scan over the occupied buckets, keeping the worst
    /// case at O(n).
    pub fn nearest(&self, query: Point) -> Option<(Point, f64)> {
        if self.is_empty() {
            return None;
        }
        /// Rings scanned cell-by-cell before falling back to a bucket scan.
        const MAX_RING_SCAN: u64 = 32;
        let center = self.grid.cell_of(query);
        let cell_size = self.grid.cell_size();
        let max_ring = self.max_ring(center);
        let mut best: Option<(Point, f64)> = None;
        let mut ring: u64 = 0;
        loop {
            // Any point in a ring at Chebyshev distance r is at least
            // (r - 1) * cell_size away from the query.
            if let Some((_, best_d)) = best {
                if ring >= 1 && (ring as f64 - 1.0) * cell_size > best_d {
                    return best;
                }
            }
            if ring > MAX_RING_SCAN {
                // Sparse index: enumerate occupied buckets directly.
                return self.nearest_brute(query);
            }
            self.for_each_ring_cell(center, ring, |cell| {
                if let Some(bucket) = self.buckets.get(&cell) {
                    for &p in bucket {
                        let d = query.distance(p);
                        if best.map_or(true, |(_, bd)| d < bd) {
                            best = Some((p, d));
                        }
                    }
                }
            });
            ring += 1;
            // Beyond the bounding ring of all buckets there is nothing
            // left to explore.
            if ring > max_ring + 1 {
                return best;
            }
        }
    }

    /// Linear scan over every indexed point.
    fn nearest_brute(&self, query: Point) -> Option<(Point, f64)> {
        self.iter()
            .map(|p| (p, query.distance(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }

    /// All indexed points within `radius` of `query` (inclusive), in
    /// arbitrary order.
    pub fn within(&self, query: Point, radius: f64) -> Vec<Point> {
        let mut out = Vec::new();
        if radius < 0.0 {
            return out;
        }
        let rings = (radius / self.grid.cell_size()).ceil() as u64 + 1;
        let center = self.grid.cell_of(query);
        for ring in 0..=rings {
            self.for_each_ring_cell(center, ring, |cell| {
                if let Some(bucket) = self.buckets.get(&cell) {
                    for &p in bucket {
                        if query.distance(p) <= radius {
                            out.push(p);
                        }
                    }
                }
            });
        }
        out
    }

    /// Iterates over all indexed points.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.buckets.values().flatten().copied()
    }

    fn max_ring(&self, center: Cell) -> u64 {
        self.buckets
            .keys()
            .map(|&c| c.ring_distance(center))
            .max()
            .unwrap_or(0)
    }

    fn for_each_ring_cell<F: FnMut(Cell)>(&self, center: Cell, ring: u64, mut f: F) {
        let r = ring as i64;
        if r == 0 {
            f(center);
            return;
        }
        for col in (center.col - r)..=(center.col + r) {
            f(Cell::new(col, center.row - r));
            f(Cell::new(col, center.row + r));
        }
        for row in (center.row - r + 1)..=(center.row + r - 1) {
            f(Cell::new(center.col - r, row));
            f(Cell::new(center.col + r, row));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_nearest(points: &[Point], q: Point) -> Option<(Point, f64)> {
        points
            .iter()
            .map(|&p| (p, q.distance(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = NearestNeighborIndex::new(100.0);
        assert!(idx.nearest(Point::ORIGIN).is_none());
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn single_point() {
        let mut idx = NearestNeighborIndex::new(100.0);
        idx.insert(Point::new(5000.0, 5000.0));
        let (p, d) = idx.nearest(Point::ORIGIN).unwrap();
        assert_eq!(p, Point::new(5000.0, 5000.0));
        assert!((d - 5000.0 * std::f64::consts::SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut idx = NearestNeighborIndex::new(100.0);
        let mut pts = Vec::new();
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(0.0..3000.0), rng.gen_range(0.0..3000.0));
            idx.insert(p);
            pts.push(p);
        }
        for _ in 0..200 {
            let q = Point::new(rng.gen_range(-500.0..3500.0), rng.gen_range(-500.0..3500.0));
            let (gp, gd) = idx.nearest(q).unwrap();
            let (_, bd) = brute_nearest(&pts, q).unwrap();
            assert!(
                (gd - bd).abs() < 1e-9,
                "index distance {gd} != brute {bd} for query {q}"
            );
            assert!((q.distance(gp) - gd).abs() < 1e-9);
        }
    }

    #[test]
    fn remove_updates_results() {
        let mut idx = NearestNeighborIndex::new(50.0);
        let a = Point::new(10.0, 10.0);
        let b = Point::new(400.0, 400.0);
        idx.insert(a);
        idx.insert(b);
        assert_eq!(idx.nearest(Point::ORIGIN).unwrap().0, a);
        assert!(idx.remove(a));
        assert_eq!(idx.nearest(Point::ORIGIN).unwrap().0, b);
        assert!(!idx.remove(a), "double remove must fail");
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn duplicates_count_separately() {
        let mut idx = NearestNeighborIndex::new(50.0);
        let p = Point::new(1.0, 1.0);
        idx.insert(p);
        idx.insert(p);
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(p));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.nearest(Point::ORIGIN).unwrap().0, p);
    }

    #[test]
    fn within_radius_matches_filter() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut idx = NearestNeighborIndex::new(100.0);
        let mut pts = Vec::new();
        for _ in 0..300 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            idx.insert(p);
            pts.push(p);
        }
        let q = Point::new(500.0, 500.0);
        for radius in [0.0, 50.0, 200.0, 2000.0] {
            let mut got = idx.within(q, radius);
            let mut expected: Vec<Point> =
                pts.iter().copied().filter(|p| q.distance(*p) <= radius).collect();
            let key = |p: &Point| (p.x.to_bits(), p.y.to_bits());
            got.sort_by_key(key);
            expected.sort_by_key(key);
            assert_eq!(got, expected, "radius {radius}");
        }
    }

    #[test]
    fn iter_yields_all_points() {
        let mut idx = NearestNeighborIndex::new(100.0);
        idx.insert(Point::new(1.0, 2.0));
        idx.insert(Point::new(300.0, 4.0));
        idx.insert(Point::new(5.0, 600.0));
        assert_eq!(idx.iter().count(), 3);
    }

    #[test]
    fn very_sparse_points_fast_and_correct() {
        // Regression: points thousands of buckets apart must not trigger a
        // cell-by-cell ring walk.
        let mut idx = NearestNeighborIndex::new(50.0);
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 1.0e6, (i % 3) as f64 * 2.0e6))
            .collect();
        for &p in &pts {
            idx.insert(p);
        }
        let start = std::time::Instant::now();
        for i in 0..20 {
            let q = Point::new(i as f64 * 1.0e6 + 123.0, 456.0);
            let (gp, gd) = idx.nearest(q).unwrap();
            let (bp, bd) = brute_nearest(&pts, q).unwrap();
            assert_eq!(gp, bp);
            assert!((gd - bd).abs() < 1e-9);
        }
        assert!(
            start.elapsed().as_secs() < 5,
            "sparse nearest queries took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn negative_radius_is_empty() {
        let mut idx = NearestNeighborIndex::new(100.0);
        idx.insert(Point::ORIGIN);
        assert!(idx.within(Point::ORIGIN, -1.0).is_empty());
    }
}
