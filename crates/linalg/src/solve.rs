//! Dense linear system solving.
//!
//! The ARIMA baseline fits its autoregressive coefficients by ordinary
//! least squares, which reduces to solving the normal equations
//! `(XᵀX) β = Xᵀy`. [`solve`] implements Gaussian elimination with partial
//! pivoting, and [`least_squares`] wraps the normal-equation pipeline with
//! Tikhonov damping for near-singular designs.

use crate::Matrix;
use std::error::Error;
use std::fmt;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular or badly conditioned")
    }
}

impl Error for SingularMatrixError {}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when a pivot is (numerically) zero.
///
/// # Panics
///
/// Panics if `A` is not square or `b.len() != A.rows()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must match");
    // Augmented matrix in row-major.
    let mut aug: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                aug[i][col]
                    .abs()
                    .partial_cmp(&aug[j][col].abs())
                    .expect("finite entries")
            })
            .expect("non-empty range");
        if aug[pivot_row][col].abs() < 1e-12 {
            return Err(SingularMatrixError);
        }
        aug.swap(col, pivot_row);
        let pivot = aug[col][col];
        for row in (col + 1)..n {
            let (upper, lower) = aug.split_at_mut(row);
            let src = &upper[col];
            let dst = &mut lower[0];
            let factor = dst[col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (d, &s) in dst[col..=n].iter_mut().zip(&src[col..=n]) {
                *d -= factor * s;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = aug[row][n];
        for (k, &xk) in x.iter().enumerate().skip(row + 1) {
            acc -= aug[row][k] * xk;
        }
        x[row] = acc / aug[row][row];
    }
    Ok(x)
}

/// Ordinary least squares `min ‖X β − y‖²` via damped normal equations.
///
/// A small ridge term `damping` (e.g. `1e-8`) keeps nearly collinear
/// designs solvable, which happens for ARIMA on short or constant series.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if the damped normal matrix is still
/// singular.
///
/// # Panics
///
/// Panics if `y.len() != X.rows()`.
pub fn least_squares(x: &Matrix, y: &[f64], damping: f64) -> Result<Vec<f64>, SingularMatrixError> {
    assert_eq!(y.len(), x.rows(), "design/response length mismatch");
    let p = x.cols();
    // XtX and Xty.
    let mut xtx = Matrix::zeros(p, p);
    let mut xty = vec![0.0; p];
    for (r, &yr) in y.iter().enumerate() {
        let row = x.row(r);
        for i in 0..p {
            xty[i] += row[i] * yr;
            for j in 0..p {
                let v = xtx.get(i, j) + row[i] * row[j];
                xtx.set(i, j, v);
            }
        }
    }
    for i in 0..p {
        let v = xtx.get(i, i) + damping;
        xtx.set(i, i, v);
    }
    solve(&xtx, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn identity_returns_rhs() {
        let i = Matrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = solve(&i, &b).unwrap();
        for (u, v) in x.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SingularMatrixError));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 3 + 2 t, exactly.
        let n = 20;
        let design = Matrix::from_fn(n, 2, |r, c| if c == 0 { 1.0 } else { r as f64 });
        let y: Vec<f64> = (0..n).map(|t| 3.0 + 2.0 * t as f64).collect();
        let beta = least_squares(&design, &y, 1e-10).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // y = 1.5 t with symmetric noise cancels in expectation.
        let n = 200;
        let design = Matrix::from_fn(n, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..n)
            .map(|t| 1.5 * t as f64 + if t % 2 == 0 { 0.25 } else { -0.25 })
            .collect();
        let beta = least_squares(&design, &y, 1e-8).unwrap();
        assert!((beta[0] - 1.5).abs() < 1e-3, "beta {}", beta[0]);
    }

    #[test]
    fn damping_rescues_collinear_design() {
        // Two identical columns: raw normal equations singular.
        let design = Matrix::from_fn(10, 2, |r, _| r as f64 + 1.0);
        let y: Vec<f64> = (0..10).map(|t| 2.0 * (t as f64 + 1.0)).collect();
        assert!(least_squares(&design, &y, 0.0).is_err());
        let beta = least_squares(&design, &y, 1e-6).unwrap();
        // Split the coefficient between the twin columns.
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-3);
    }
}
