//! Fleet telemetry for the E-Sharing serving system.
//!
//! Four pieces, layered bottom-up:
//!
//! 1. [`LatencyHistogram`] — the log-bucketed mergeable histogram
//!    (formerly `esharing-core::metrics`; core re-exports it).
//! 2. [`registry`] — a single-owner metrics registry: counters, gauges,
//!    and histograms behind typed `Copy` handles, updated with plain
//!    `&mut` writes on the worker thread and merged fleet-wide at
//!    snapshot time.
//! 3. [`journal`] — a bounded per-shard structured event journal (typed
//!    events, sequence numbers, shared-epoch timestamps) with k-way
//!    ordered cross-shard merging.
//! 4. [`expose`] / [`http`] — Prometheus-text and JSON rendering plus a
//!    tiny std-only `TcpListener` responder so a live engine run can be
//!    scraped mid-flight.
//!
//! On top of those sits the *health plane* — the analysis tier:
//!
//! 5. [`tsdb`] — a fixed-memory time-series store of per-resolution
//!    rollup rings, fed by periodic [`RegistrySnapshot`] sweeps.
//! 6. [`slo`] — declarative objectives evaluated as fast/slow burn
//!    rates over the tsdb.
//! 7. [`flight_recorder`] — an always-on lock-free ring of unsampled
//!    per-decision samples, frozen into JSON "black box" dumps when a
//!    breach or lifecycle op fires.
//!
//! The crate sits below `esharing-core` and depends only on `serde`, so
//! every layer of the system (placement, core, engine, benches) can emit
//! into it without dependency cycles.

#![warn(missing_docs)]

pub mod expose;
pub mod flight_recorder;
mod histogram;
pub mod http;
pub mod journal;
pub mod registry;
pub mod slo;
pub mod tsdb;

pub use expose::{
    render_events_json, render_json, render_prometheus, snapshot_families, FamilyKind,
    FamilySample, MetricFamily, SampleValue,
};
pub use flight_recorder::{FlightRecorder, FlightRing, FlightSample};
pub use histogram::LatencyHistogram;
pub use http::{http_get, MetricsServer, Scrape, ScrapeSource};
pub use journal::{merge_event_batches, Event, EventJournal, EventKind, EventLog, EventRecord};
pub use registry::{
    CounterId, GaugeId, HistogramId, MergeMode, MetricSample, Registry, RegistrySnapshot,
};
pub use slo::{SloEngine, SloRule, SloSignal, SloStatus, SloTransition};
pub use tsdb::{Rollup, RollupSpec, SeriesKind, Tsdb, TsdbConfig};

use serde::{Deserialize, Serialize};

/// Telemetry knobs shared by the request server and the engine shards.
///
/// Instrumentation is designed to be cheap enough to leave on: registry
/// updates are `&mut` vector writes and journal records are O(1) ring
/// stores. The only per-request work that costs real time — reading the
/// clock around each decision stage — is *sampled*: one request in
/// [`TelemetryConfig::sample_every`] runs the traced decision path, the
/// rest run the untraced one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch. Disabled skips registry/journal work entirely
    /// (snapshots then carry no telemetry sections).
    pub enabled: bool,
    /// Trace one request in `sample_every` with per-stage timings
    /// (clamped to ≥ 1; 1 traces everything).
    pub sample_every: u32,
    /// Per-shard event-journal ring capacity.
    pub journal_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            sample_every: 32,
            journal_capacity: 1024,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry fully off (for overhead A/B runs).
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        }
    }

    /// The sampling period, clamped to ≥ 1.
    pub fn sample_period(&self) -> u32 {
        self.sample_every.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_on_and_sampled() {
        let c = TelemetryConfig::default();
        assert!(c.enabled);
        assert!(c.sample_every > 1, "default must sample, not trace all");
        assert!(c.journal_capacity >= 64);
        assert!(!TelemetryConfig::disabled().enabled);
        assert_eq!(
            TelemetryConfig {
                sample_every: 0,
                ..TelemetryConfig::default()
            }
            .sample_period(),
            1
        );
    }
}
