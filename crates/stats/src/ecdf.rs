//! One-dimensional empirical cumulative distribution functions.

use std::fmt;

/// An empirical CDF built from a finite sample.
///
/// # Examples
///
/// ```
/// use esharing_stats::Ecdf;
///
/// let ecdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(ecdf.eval(0.0), 0.0);
/// assert_eq!(ecdf.eval(2.0), 0.5);
/// assert_eq!(ecdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample.
    ///
    /// Returns `None` if the sample is empty or contains non-finite values.
    pub fn new(mut sample: Vec<f64>) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) {
            return None;
        }
        sample.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Some(Ecdf { sorted: sample })
    }

    /// Number of sample points.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed `Ecdf`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The fraction of sample points `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x because the
        // slice is sorted ascending.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`) using nearest-rank semantics.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1)]
    }

    /// Sample minimum.
    #[inline]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Sample maximum.
    #[inline]
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Two-sample Kolmogorov–Smirnov statistic
    /// `D = sup_x |F_a(x) − F_b(x)|`.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
            // Also evaluate just below x to capture jumps on either side.
            let x_minus = x - x.abs().max(1.0) * f64::EPSILON * 4.0;
            d = d.max((self.eval(x_minus) - other.eval(x_minus)).abs());
        }
        d
    }
}

impl fmt::Display for Ecdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ecdf(n={}, range=[{:.3}, {:.3}])",
            self.len(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
        assert!(Ecdf::new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn eval_steps() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn eval_handles_ties() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(1.9), 0.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(f64::from).collect()).unwrap();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 100.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let e = Ecdf::new(vec![1.0]).unwrap();
        let _ = e.quantile(1.5);
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_statistic(&b), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        let b = Ecdf::new(vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!(a.ks_statistic(&b), 1.0);
    }

    #[test]
    fn ks_symmetric() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0, 7.0]).unwrap();
        let b = Ecdf::new(vec![2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.ks_statistic(&b), b.ks_statistic(&a));
    }

    #[test]
    fn ks_known_value() {
        // a: mass {1,2}, b: mass {2,3}. At x in [1,2): F_a=0.5, F_b=0 -> D=0.5.
        let a = Ecdf::new(vec![1.0, 2.0]).unwrap();
        let b = Ecdf::new(vec![2.0, 3.0]).unwrap();
        assert!((a.ks_statistic(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_size() {
        let e = Ecdf::new(vec![1.0, 2.0]).unwrap();
        assert!(e.to_string().contains("n=2"));
    }
}
