//! Trip-record serialization in the Mobike CSV schema.
//!
//! The original dataset ships as CSV rows of
//! `orderid,userid,bikeid,biketype,starttime,geohashed_start_loc,
//! geohashed_end_loc`. This module writes and parses that format so the
//! synthetic workload can stand in for the real files byte-for-byte in
//! downstream tooling, and so users with access to the actual dataset can
//! load it directly.

use crate::time::Timestamp;
use crate::trips::{city_datum, Trip};
use esharing_geo::geohash;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// The CSV header line of the Mobike schema.
pub const CSV_HEADER: &str =
    "orderid,userid,bikeid,biketype,starttime,geohashed_start_loc,geohashed_end_loc";

/// Errors produced when parsing trip CSV.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row had the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The field name.
        field: &'static str,
    },
    /// A geohash failed to decode.
    BadGeohash {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 7 fields, found {found}")
            }
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: invalid number in field {field}")
            }
            CsvError::BadGeohash { line, value } => {
                write!(f, "line {line}: invalid geohash {value:?}")
            }
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Serializes one trip as a CSV row (no trailing newline).
///
/// # Errors
///
/// Returns an error if an endpoint lies outside geohashable coordinates
/// (cannot happen for trips generated within the city field).
pub fn to_csv_row(trip: &Trip) -> Result<String, CsvError> {
    let start = trip.start_geohash().map_err(|_| CsvError::BadGeohash {
        line: 0,
        value: format!("{}", trip.start),
    })?;
    let end = trip.end_geohash().map_err(|_| CsvError::BadGeohash {
        line: 0,
        value: format!("{}", trip.end),
    })?;
    Ok(format!(
        "{},{},{},{},{},{},{}",
        trip.order_id,
        trip.user_id,
        trip.bike_id,
        trip.bike_type,
        trip.start_time.seconds(),
        start,
        end
    ))
}

/// Writes a trip stream as CSV (header + one row per trip).
///
/// # Errors
///
/// Propagates I/O and encoding failures.
pub fn write_csv<W: Write>(mut writer: W, trips: &[Trip]) -> Result<(), CsvError> {
    writeln!(writer, "{CSV_HEADER}")?;
    for trip in trips {
        writeln!(writer, "{}", to_csv_row(trip)?)?;
    }
    Ok(())
}

/// Parses trips from CSV produced by [`write_csv`] (or the original
/// dataset, with timestamps given as seconds since the window start).
///
/// Geohashed endpoints decode to their cell centers in planar city
/// coordinates, so a write→read round trip quantizes locations to the
/// geohash grid (≤ ~76 m at 7 characters) — exactly the fidelity the
/// original dataset offers.
///
/// # Errors
///
/// Returns the first malformed row's error.
pub fn read_csv<R: BufRead>(reader: R) -> Result<Vec<Trip>, CsvError> {
    let datum = city_datum();
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        if idx == 0 && line.trim() == CSV_HEADER {
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(CsvError::FieldCount {
                line: line_no,
                found: fields.len(),
            });
        }
        let num = |idx: usize, name: &'static str| -> Result<u64, CsvError> {
            fields[idx].trim().parse().map_err(|_| CsvError::BadNumber {
                line: line_no,
                field: name,
            })
        };
        let decode = |idx: usize| -> Result<esharing_geo::Point, CsvError> {
            let (coord, _) =
                geohash::decode(fields[idx].trim()).map_err(|_| CsvError::BadGeohash {
                    line: line_no,
                    value: fields[idx].to_string(),
                })?;
            Ok(datum.project(coord))
        };
        out.push(Trip {
            order_id: num(0, "orderid")?,
            user_id: num(1, "userid")?,
            bike_id: num(2, "bikeid")?,
            bike_type: num(3, "biketype")? as u8,
            start_time: Timestamp(num(4, "starttime")?),
            start: decode(5)?,
            end: decode(6)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, SyntheticCity};
    use crate::trips::TripGenerator;

    fn sample_trips() -> Vec<Trip> {
        let city = SyntheticCity::generate(&CityConfig {
            trips_per_day: 200.0,
            ..CityConfig::default()
        });
        TripGenerator::new(&city, 44).generate_days(0, 1)
    }

    #[test]
    fn roundtrip_preserves_ids_and_quantizes_locations() {
        let trips = sample_trips();
        let mut buf = Vec::new();
        write_csv(&mut buf, &trips).unwrap();
        let parsed = read_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), trips.len());
        for (orig, round) in trips.iter().zip(&parsed) {
            assert_eq!(orig.order_id, round.order_id);
            assert_eq!(orig.user_id, round.user_id);
            assert_eq!(orig.bike_id, round.bike_id);
            assert_eq!(orig.bike_type, round.bike_type);
            assert_eq!(orig.start_time, round.start_time);
            // Locations quantize to the geohash cell (~76 x 153 m at worst).
            assert!(orig.start.distance(round.start) < 120.0);
            assert!(orig.end.distance(round.end) < 120.0);
            // Same geohash cell exactly.
            assert_eq!(orig.end_geohash().unwrap(), round.end_geohash().unwrap());
        }
    }

    #[test]
    fn header_written_once() {
        let trips = sample_trips();
        let mut buf = Vec::new();
        write_csv(&mut buf, &trips[..3]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with(CSV_HEADER));
        assert_eq!(text.matches("orderid").count(), 1);
    }

    #[test]
    fn rejects_malformed_rows() {
        let bad_fields = format!("{CSV_HEADER}\n1,2,3\n");
        assert!(matches!(
            read_csv(bad_fields.as_bytes()),
            Err(CsvError::FieldCount { line: 2, found: 3 })
        ));
        let bad_number = format!("{CSV_HEADER}\nx,2,3,1,0,wx4g0kz,wx4g0kz\n");
        assert!(matches!(
            read_csv(bad_number.as_bytes()),
            Err(CsvError::BadNumber {
                line: 2,
                field: "orderid"
            })
        ));
        let bad_hash = format!("{CSV_HEADER}\n1,2,3,1,0,IIIII,wx4g0kz\n");
        assert!(matches!(
            read_csv(bad_hash.as_bytes()),
            Err(CsvError::BadGeohash { line: 2, .. })
        ));
    }

    #[test]
    fn empty_input_and_blank_lines() {
        assert!(read_csv("".as_bytes()).unwrap().is_empty());
        let with_blanks = format!("{CSV_HEADER}\n\n\n");
        assert!(read_csv(with_blanks.as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn headerless_input_parses() {
        let trips = sample_trips();
        let row = to_csv_row(&trips[0]).unwrap();
        let parsed = read_csv(row.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].order_id, trips[0].order_id);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::FieldCount { line: 7, found: 2 };
        assert!(e.to_string().contains("line 7"));
        let e = CsvError::BadGeohash {
            line: 3,
            value: "zzz".into(),
        };
        assert!(e.to_string().contains("zzz"));
    }
}
