//! Destination → shard routing.
//!
//! The engine's router must place every incoming destination on a shard
//! with a few nanoseconds of work and no shared mutable state. Two
//! partition geometries cover the practical cases:
//!
//! * **Uniform grid** — the city bounding box is cut into `rows × cols`
//!   rectangles, one shard per rectangle. Cheap and oblivious to demand;
//!   good when demand is spatially even or unknown.
//! * **k-landmark Voronoi** — shard anchors are derived from the offline
//!   solution's landmark stations (clustered down to the requested shard
//!   count with a deterministic k-means), and a destination routes to its
//!   nearest anchor. This balances shards by *demand* rather than area,
//!   because the offline landmarks already concentrate where trips end.
//!
//! Both geometries are pure functions of their construction inputs, so
//! every router thread can share one immutable map.

use esharing_geo::{BBox, Point};
use serde::{Deserialize, Serialize};

/// An immutable destination → shard partition of the city.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardMap {
    /// `rows × cols` rectangles over the city bounding box.
    Grid {
        /// The partitioned field; outside points clamp to the boundary.
        bbox: BBox,
        /// Vertical cuts.
        rows: usize,
        /// Horizontal cuts.
        cols: usize,
    },
    /// Nearest-anchor (Voronoi) routing.
    Voronoi {
        /// One anchor per shard.
        anchors: Vec<Point>,
    },
    /// A static base partition refined by a binary split tree — the shape
    /// the map takes once the lifecycle subsystem starts splitting and
    /// merging zones at runtime. Routing is still a pure function: the
    /// base map picks a tree root, then axis-aligned cuts walk down to a
    /// leaf slot.
    Dynamic {
        /// The original static partition; only used to pick a root.
        base: Box<ShardMap>,
        /// One tree root per base shard (index into `nodes`).
        roots: Vec<usize>,
        /// Split-tree arena.
        nodes: Vec<ZoneNode>,
        /// One representative point per live slot.
        anchors: Vec<Point>,
    },
}

/// A coordinate axis for zone bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Split on the x coordinate.
    X,
    /// Split on the y coordinate.
    Y,
}

impl Axis {
    /// The coordinate of `p` along this axis.
    pub fn coord(self, p: Point) -> f64 {
        match self {
            Axis::X => p.x,
            Axis::Y => p.y,
        }
    }
}

/// One node of a [`ShardMap::Dynamic`] split tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ZoneNode {
    /// A terminal zone routing to `slot`.
    Leaf {
        /// The shard slot this zone routes to.
        slot: usize,
    },
    /// An axis-aligned bisection: `coord < cut` descends to `lo`, else
    /// `hi` (both indices into the node arena).
    Split {
        /// Bisection axis.
        axis: Axis,
        /// Cut coordinate; the low side is the strict `< cut` half.
        cut: f64,
        /// Arena index of the low-side child.
        lo: usize,
        /// Arena index of the high-side child.
        hi: usize,
    },
}

impl ShardMap {
    /// A uniform grid over `bbox` with exactly `shards` rectangles, using
    /// the factorization of `shards` closest to a square (a prime count
    /// degenerates to strips).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn uniform(bbox: BBox, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let mut rows = 1;
        let mut r = 1usize;
        while r * r <= shards {
            if shards.is_multiple_of(r) {
                rows = r;
            }
            r += 1;
        }
        ShardMap::Grid {
            bbox,
            rows,
            cols: shards / rows,
        }
    }

    /// Voronoi routing over explicit anchors.
    ///
    /// # Panics
    ///
    /// Panics if `anchors` is empty.
    pub fn voronoi(anchors: Vec<Point>) -> Self {
        assert!(!anchors.is_empty(), "need at least one anchor");
        ShardMap::Voronoi { anchors }
    }

    /// Voronoi anchors derived from the offline solution: the landmark
    /// stations are clustered down to (at most) `shards` anchors with a
    /// deterministic k-means (farthest-first seeding, Lloyd refinement,
    /// first-index tie-breaks — no RNG). With `landmarks.len() <= shards`
    /// every landmark anchors its own shard, so the realized shard count
    /// ([`ShardMap::shard_count`]) can be lower than requested.
    ///
    /// # Panics
    ///
    /// Panics if `landmarks` is empty or `shards` is zero.
    pub fn voronoi_over_landmarks(landmarks: &[Point], shards: usize) -> Self {
        assert!(!landmarks.is_empty(), "need at least one landmark");
        assert!(shards > 0, "need at least one shard");
        if landmarks.len() <= shards {
            return ShardMap::Voronoi {
                anchors: landmarks.to_vec(),
            };
        }
        // Farthest-first seeding: start nearest the landmark centroid, then
        // repeatedly take the landmark farthest from every chosen anchor.
        let centroid =
            landmarks.iter().fold(Point::ORIGIN, |acc, &p| acc + p) / landmarks.len() as f64;
        let first = argmin_by(landmarks, |p| p.distance_squared(centroid));
        let mut anchors = vec![landmarks[first]];
        while anchors.len() < shards {
            let next = argmin_by(landmarks, |p| {
                // argmin of negated min-distance == farthest point.
                -anchors
                    .iter()
                    .map(|a| p.distance_squared(*a))
                    .fold(f64::INFINITY, f64::min)
            });
            anchors.push(landmarks[next]);
        }
        // Lloyd refinement over the landmark set.
        for _ in 0..20 {
            let mut sums = vec![Point::ORIGIN; anchors.len()];
            let mut counts = vec![0usize; anchors.len()];
            for &p in landmarks {
                let c = argmin_by(&anchors, |a| a.distance_squared(p));
                sums[c] = sums[c] + p;
                counts[c] += 1;
            }
            let mut moved = false;
            for (i, anchor) in anchors.iter_mut().enumerate() {
                if counts[i] == 0 {
                    continue; // empty cluster keeps its seed
                }
                let mean = sums[i] / counts[i] as f64;
                if mean != *anchor {
                    *anchor = mean;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        ShardMap::Voronoi { anchors }
    }

    /// Wraps a static map into the [`ShardMap::Dynamic`] form (one leaf
    /// per base shard) so zones can be split and merged at runtime. A map
    /// that is already dynamic is returned unchanged.
    pub fn into_dynamic(self) -> Self {
        if matches!(self, ShardMap::Dynamic { .. }) {
            return self;
        }
        let shards = self.shard_count();
        let anchors = (0..shards).map(|s| self.anchor(s)).collect();
        ShardMap::Dynamic {
            base: Box::new(self),
            roots: (0..shards).collect(),
            nodes: (0..shards).map(|s| ZoneNode::Leaf { slot: s }).collect(),
            anchors,
        }
    }

    /// Bisects `slot`'s zone at `cut` along `axis`: the low half keeps
    /// `slot`, the high half becomes a fresh slot whose index is returned.
    /// Every leaf currently routing to `slot` (there may be several after
    /// merges) is split by the same cut, so the zone as a whole is
    /// bisected. `lo_anchor` / `hi_anchor` become the halves'
    /// representative points.
    ///
    /// # Panics
    ///
    /// Panics if the map is not [`ShardMap::Dynamic`] or `slot` is out of
    /// range.
    pub fn split_zone(
        &mut self,
        slot: usize,
        axis: Axis,
        cut: f64,
        lo_anchor: Point,
        hi_anchor: Point,
    ) -> usize {
        let ShardMap::Dynamic { nodes, anchors, .. } = self else {
            panic!("split_zone on a static map; call into_dynamic first");
        };
        assert!(slot < anchors.len(), "slot {slot} out of range");
        let new_slot = anchors.len();
        for i in 0..nodes.len() {
            if nodes[i] == (ZoneNode::Leaf { slot }) {
                let lo = nodes.len();
                nodes.push(ZoneNode::Leaf { slot });
                let hi = nodes.len();
                nodes.push(ZoneNode::Leaf { slot: new_slot });
                nodes[i] = ZoneNode::Split { axis, cut, lo, hi };
            }
        }
        anchors[slot] = lo_anchor;
        anchors.push(hi_anchor);
        new_slot
    }

    /// Merges slot `b`'s zone into slot `a`: every leaf routing to `b`
    /// retargets to `a`, slot indices above `b` shift down by one, and
    /// `a` takes `anchor` as its representative point.
    ///
    /// # Panics
    ///
    /// Panics if the map is not [`ShardMap::Dynamic`], either slot is out
    /// of range, or `a == b`.
    pub fn merge_zones(&mut self, a: usize, b: usize, anchor: Point) {
        let ShardMap::Dynamic { nodes, anchors, .. } = self else {
            panic!("merge_zones on a static map; call into_dynamic first");
        };
        assert!(a < anchors.len() && b < anchors.len(), "slot out of range");
        assert_ne!(a, b, "cannot merge a slot with itself");
        for node in nodes.iter_mut() {
            if let ZoneNode::Leaf { slot } = node {
                if *slot == b {
                    *slot = a;
                }
                if *slot > b {
                    *slot -= 1;
                }
            }
        }
        anchors.remove(b);
        let a = if a > b { a - 1 } else { a };
        anchors[a] = anchor;
    }

    /// Moves `slot`'s representative anchor — the epochal re-optimization
    /// loop's map update when a landmark hot-swap relocates a zone's
    /// demand center. On a [`ShardMap::Voronoi`] map this is a genuine
    /// Voronoi rebuild: the boundary between `slot` and its neighbours
    /// follows the anchor, so future destinations route with the new
    /// demand geometry. On a [`ShardMap::Dynamic`] map only the
    /// representative point moves — zone boundaries were committed by
    /// split/merge cuts and stay stable. On a [`ShardMap::Grid`] the
    /// anchor is derived from the rectangle, so the call is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn reanchor_zone(&mut self, slot: usize, anchor: Point) {
        let count = self.shard_count();
        assert!(slot < count, "slot {slot} out of range");
        match self {
            ShardMap::Grid { .. } => {}
            ShardMap::Voronoi { anchors } | ShardMap::Dynamic { anchors, .. } => {
                anchors[slot] = anchor;
            }
        }
    }

    /// Number of shards this map routes to.
    pub fn shard_count(&self) -> usize {
        match self {
            ShardMap::Grid { rows, cols, .. } => rows * cols,
            ShardMap::Voronoi { anchors } => anchors.len(),
            ShardMap::Dynamic { anchors, .. } => anchors.len(),
        }
    }

    /// The shard serving `destination`. Total: every point maps somewhere
    /// (grid clamps to the boundary, Voronoi takes the nearest anchor).
    pub fn shard_of(&self, destination: Point) -> usize {
        match self {
            ShardMap::Grid { bbox, rows, cols } => {
                let p = bbox.clamp(destination);
                let col = axis_bin(p.x, bbox.min().x, bbox.width(), *cols);
                let row = axis_bin(p.y, bbox.min().y, bbox.height(), *rows);
                row * cols + col
            }
            ShardMap::Voronoi { anchors } => {
                argmin_by(anchors, |a| a.distance_squared(destination))
            }
            ShardMap::Dynamic {
                base, roots, nodes, ..
            } => {
                let mut at = roots[base.shard_of(destination)];
                loop {
                    match nodes[at] {
                        ZoneNode::Leaf { slot } => return slot,
                        ZoneNode::Split { axis, cut, lo, hi } => {
                            at = if axis.coord(destination) < cut {
                                lo
                            } else {
                                hi
                            };
                        }
                    }
                }
            }
        }
    }

    /// A representative point of `shard`'s zone (rectangle center / anchor)
    /// — what degraded-mode fallbacks and empty-history top-ups key off.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn anchor(&self, shard: usize) -> Point {
        match self {
            ShardMap::Grid { bbox, rows, cols } => {
                assert!(shard < rows * cols, "shard {shard} out of range");
                let row = shard / cols;
                let col = shard % cols;
                let w = bbox.width() / *cols as f64;
                let h = bbox.height() / *rows as f64;
                bbox.min() + Point::new((col as f64 + 0.5) * w, (row as f64 + 0.5) * h)
            }
            ShardMap::Voronoi { anchors } => anchors[shard],
            ShardMap::Dynamic { anchors, .. } => anchors[shard],
        }
    }
}

/// Index of the minimum of `key` over `items`; first index wins ties.
fn argmin_by<T, F: Fn(&T) -> f64>(items: &[T], key: F) -> usize {
    let mut best = 0;
    let mut best_key = f64::INFINITY;
    for (i, item) in items.iter().enumerate() {
        let k = key(item);
        if k < best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

/// Bin `x` into `bins` equal intervals of `[min, min + extent)`, clamped.
fn axis_bin(x: f64, min: f64, extent: f64, bins: usize) -> usize {
    if extent <= 0.0 || bins <= 1 {
        return 0;
    }
    (((x - min) / extent * bins as f64) as usize).min(bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_factors_near_square() {
        let bbox = BBox::square(1000.0);
        match ShardMap::uniform(bbox, 8) {
            ShardMap::Grid { rows, cols, .. } => {
                assert_eq!((rows, cols), (2, 4));
            }
            _ => panic!("expected grid"),
        }
        match ShardMap::uniform(bbox, 7) {
            ShardMap::Grid { rows, cols, .. } => assert_eq!((rows, cols), (1, 7)),
            _ => panic!("expected grid"),
        }
        assert_eq!(ShardMap::uniform(bbox, 1).shard_count(), 1);
    }

    #[test]
    fn grid_routing_covers_all_shards_and_clamps() {
        let map = ShardMap::uniform(BBox::square(1000.0), 4);
        assert_eq!(map.shard_count(), 4);
        let mut seen = [false; 4];
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(i as f64 * 25.0, j as f64 * 25.0);
                seen[map.shard_of(p)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Outside points clamp instead of panicking.
        assert_eq!(map.shard_of(Point::new(-50.0, -50.0)), 0);
        assert_eq!(
            map.shard_of(Point::new(5000.0, 5000.0)),
            map.shard_count() - 1
        );
    }

    #[test]
    fn grid_anchor_lies_in_its_own_shard() {
        for shards in [1, 2, 4, 6, 8, 9] {
            let map = ShardMap::uniform(BBox::square(900.0), shards);
            for s in 0..map.shard_count() {
                assert_eq!(map.shard_of(map.anchor(s)), s, "shards={shards}");
            }
        }
    }

    #[test]
    fn voronoi_routes_to_nearest_anchor() {
        let anchors = vec![
            Point::new(0.0, 0.0),
            Point::new(1000.0, 0.0),
            Point::new(500.0, 900.0),
        ];
        let map = ShardMap::voronoi(anchors.clone());
        assert_eq!(map.shard_count(), 3);
        for (i, &a) in anchors.iter().enumerate() {
            assert_eq!(map.shard_of(a), i);
            assert_eq!(map.anchor(i), a);
        }
        assert_eq!(map.shard_of(Point::new(990.0, 10.0)), 1);
    }

    #[test]
    fn voronoi_over_landmarks_keeps_small_sets_verbatim() {
        let landmarks = vec![Point::new(100.0, 100.0), Point::new(900.0, 900.0)];
        let map = ShardMap::voronoi_over_landmarks(&landmarks, 8);
        assert_eq!(map.shard_count(), 2);
        assert_eq!(map.anchor(0), landmarks[0]);
    }

    #[test]
    fn voronoi_over_landmarks_clusters_deterministically() {
        // Two tight landmark clusters must yield one anchor per cluster.
        let mut landmarks = Vec::new();
        for i in 0..5 {
            landmarks.push(Point::new(i as f64 * 10.0, 0.0));
            landmarks.push(Point::new(2000.0 + i as f64 * 10.0, 2000.0));
        }
        let a = ShardMap::voronoi_over_landmarks(&landmarks, 2);
        let b = ShardMap::voronoi_over_landmarks(&landmarks, 2);
        assert_eq!(a, b);
        assert_eq!(a.shard_count(), 2);
        assert_ne!(
            a.shard_of(Point::new(0.0, 0.0)),
            a.shard_of(Point::new(2000.0, 2000.0))
        );
        // Anchors sit inside their clusters, not between them.
        for s in 0..2 {
            let p = a.anchor(s);
            assert!(p.x < 100.0 || p.x > 1900.0, "anchor drifted: {p:?}");
        }
    }

    #[test]
    fn degenerate_bbox_routes_everything_to_shard_zero() {
        let map = ShardMap::uniform(BBox::new(Point::ORIGIN, Point::ORIGIN), 4);
        assert_eq!(map.shard_of(Point::new(123.0, 456.0)), 0);
    }

    #[test]
    fn dynamic_wrap_preserves_routing() {
        let base = ShardMap::uniform(BBox::square(1000.0), 4);
        let dynamic = base.clone().into_dynamic();
        assert_eq!(dynamic.shard_count(), 4);
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(i as f64 * 25.0, j as f64 * 25.0);
                assert_eq!(dynamic.shard_of(p), base.shard_of(p));
            }
        }
        for s in 0..4 {
            assert_eq!(dynamic.anchor(s), base.anchor(s));
        }
    }

    #[test]
    fn split_bisects_one_zone_and_leaves_others_alone() {
        let mut map = ShardMap::uniform(BBox::square(1000.0), 2).into_dynamic();
        // Shard 0 is the left strip x in [0, 500); split it at y = 500.
        let new = map.split_zone(
            0,
            Axis::Y,
            500.0,
            Point::new(250.0, 250.0),
            Point::new(250.0, 750.0),
        );
        assert_eq!(new, 2);
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.shard_of(Point::new(100.0, 100.0)), 0);
        assert_eq!(map.shard_of(Point::new(100.0, 900.0)), 2);
        assert_eq!(map.shard_of(Point::new(900.0, 900.0)), 1);
        assert_eq!(map.anchor(2), Point::new(250.0, 750.0));
        // Cut boundary: the low side is strict `< cut`.
        assert_eq!(map.shard_of(Point::new(100.0, 500.0)), 2);
    }

    #[test]
    fn merge_retargets_and_renumbers() {
        let mut map = ShardMap::uniform(BBox::square(1000.0), 2).into_dynamic();
        let new = map.split_zone(
            0,
            Axis::Y,
            500.0,
            Point::new(250.0, 250.0),
            Point::new(250.0, 750.0),
        );
        // Merge the split halves back: slot `new` folds into slot 0.
        map.merge_zones(0, new, Point::new(250.0, 500.0));
        assert_eq!(map.shard_count(), 2);
        assert_eq!(map.shard_of(Point::new(100.0, 100.0)), 0);
        assert_eq!(map.shard_of(Point::new(100.0, 900.0)), 0);
        assert_eq!(map.shard_of(Point::new(900.0, 900.0)), 1);
        assert_eq!(map.anchor(0), Point::new(250.0, 500.0));

        // Merging a low slot into a high one renumbers the survivor too.
        let mut map = ShardMap::uniform(BBox::square(1000.0), 4).into_dynamic();
        map.merge_zones(3, 1, Point::new(900.0, 900.0));
        assert_eq!(map.shard_count(), 3);
        // Old shard 1 (right-bottom quadrant) now routes with old shard 3.
        assert_eq!(
            map.shard_of(Point::new(900.0, 100.0)),
            map.shard_of(Point::new(900.0, 900.0))
        );
        assert_eq!(map.anchor(2), Point::new(900.0, 900.0));
    }

    #[test]
    fn split_after_merge_cuts_every_leaf_of_the_zone() {
        // Merge two grid cells into one zone, then split that zone: both
        // constituent leaves must honor the cut.
        let mut map = ShardMap::uniform(BBox::square(1000.0), 2).into_dynamic();
        map.merge_zones(0, 1, Point::new(500.0, 500.0));
        assert_eq!(map.shard_count(), 1);
        let new = map.split_zone(
            0,
            Axis::Y,
            500.0,
            Point::new(500.0, 250.0),
            Point::new(500.0, 750.0),
        );
        assert_eq!(map.shard_count(), 2);
        // Both x-halves obey the y cut.
        assert_eq!(map.shard_of(Point::new(100.0, 100.0)), 0);
        assert_eq!(map.shard_of(Point::new(900.0, 100.0)), 0);
        assert_eq!(map.shard_of(Point::new(100.0, 900.0)), new);
        assert_eq!(map.shard_of(Point::new(900.0, 900.0)), new);
    }

    #[test]
    fn reanchor_moves_voronoi_boundary_but_not_dynamic_routing() {
        // Voronoi: the boundary follows the moved anchor.
        let mut map = ShardMap::voronoi(vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)]);
        assert_eq!(map.shard_of(Point::new(400.0, 0.0)), 0);
        map.reanchor_zone(0, Point::new(800.0, 0.0));
        assert_eq!(map.anchor(0), Point::new(800.0, 0.0));
        assert_eq!(map.shard_of(Point::new(400.0, 0.0)), 0);
        assert_eq!(map.shard_of(Point::new(870.0, 0.0)), 0, "boundary moved");
        // Dynamic: committed cuts stay; only the representative moves.
        let mut map = ShardMap::uniform(BBox::square(1000.0), 2).into_dynamic();
        let before: Vec<usize> = (0..20)
            .map(|i| map.shard_of(Point::new(i as f64 * 50.0, 500.0)))
            .collect();
        map.reanchor_zone(1, Point::new(600.0, 600.0));
        assert_eq!(map.anchor(1), Point::new(600.0, 600.0));
        let after: Vec<usize> = (0..20)
            .map(|i| map.shard_of(Point::new(i as f64 * 50.0, 500.0)))
            .collect();
        assert_eq!(before, after);
        // Grid: derived anchors are untouched.
        let mut map = ShardMap::uniform(BBox::square(1000.0), 2);
        let a = map.anchor(0);
        map.reanchor_zone(0, Point::new(1.0, 2.0));
        assert_eq!(map.anchor(0), a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reanchor_out_of_range_panics() {
        let mut map = ShardMap::voronoi(vec![Point::ORIGIN]);
        map.reanchor_zone(3, Point::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "call into_dynamic first")]
    fn split_on_static_map_panics() {
        let mut map = ShardMap::uniform(BBox::square(1000.0), 2);
        let _ = map.split_zone(0, Axis::X, 250.0, Point::ORIGIN, Point::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardMap::uniform(BBox::square(10.0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one anchor")]
    fn empty_anchors_rejected() {
        let _ = ShardMap::voronoi(Vec::new());
    }
}
