//! Fig. 10 — Total cost (Eq. 1) vs number of parking for the competing
//! algorithms, on (a) actual and (b) predicted requests.
//!
//! The paper samples random grid neighbourhoods, solves an independent PLP
//! per sample, and scatters (number of parking, total cost) per algorithm.
//! Expected shape: online k-means opens the most stations at the highest
//! cost, Meyerson fewer, E-sharing close to the near-optimal offline
//! frontier. Panel (b) repeats the exercise with landmarks derived from
//! LSTM-predicted per-cell demand instead of the actual history.

use esharing_bench::{PerfEmitter, Table};
use esharing_dataset::{arrivals, CityConfig, SyntheticCity, Timestamp, TripGenerator};
use esharing_forecast::{Forecaster, Lstm, LstmConfig};
use esharing_geo::{Grid, Point};
use esharing_placement::offline::jms_greedy;
use esharing_placement::online::{
    DeviationConfig, DeviationPenalty, Meyerson, OnlineKMeans, OnlinePlacement,
};
use esharing_placement::PlpInstance;
use std::time::Instant;

const SPACE_COST: f64 = 10_000.0;
const NEIGHBORHOOD: f64 = 1_000.0;

/// One sampled neighbourhood: historical and live destination streams.
struct Sample {
    history: Vec<Point>,
    live: Vec<Point>,
    /// Historical hourly totals within the neighbourhood (for prediction).
    hourly: Vec<f64>,
}

fn collect_samples(city: &SyntheticCity, n: usize) -> Vec<Sample> {
    let mut gen = TripGenerator::new(city, 99);
    let trips = gen.generate_days(0, 10);
    let hist_end = Timestamp::from_day_hour(7, 0);
    let mut samples = Vec::new();
    // Anchor neighbourhoods on a sliding window over the field.
    let side = city.bbox().width();
    for i in 0..n {
        let t = i as f64 / n.max(2) as f64;
        let origin = Point::new(
            t * (side - NEIGHBORHOOD),
            ((i * 7919) % 1000) as f64 / 1000.0 * (side - NEIGHBORHOOD),
        );
        let in_hood = |p: Point| {
            p.x >= origin.x
                && p.x < origin.x + NEIGHBORHOOD
                && p.y >= origin.y
                && p.y < origin.y + NEIGHBORHOOD
        };
        let history: Vec<Point> = trips
            .iter()
            .filter(|t| t.start_time < hist_end && in_hood(t.end))
            .map(|t| t.end)
            .collect();
        let live: Vec<Point> = trips
            .iter()
            .filter(|t| t.start_time >= hist_end && in_hood(t.end))
            .map(|t| t.end)
            .collect();
        let hourly: Vec<f64> = {
            let filtered: Vec<_> = trips
                .iter()
                .filter(|t| t.start_time < hist_end && in_hood(t.end))
                .cloned()
                .collect();
            arrivals::hourly_totals(&filtered, 0, 7 * 24)
        };
        if history.len() >= 50 && live.len() >= 50 {
            samples.push(Sample {
                history,
                live,
                hourly,
            });
        }
    }
    samples
}

/// Landmarks from the 7-day history, normalized to the 3-day live window
/// (Eq. 1 charges the opening cost per service period).
fn landmarks_from(points: &[Point]) -> (Vec<Point>, usize) {
    let grid = Grid::new(100.0);
    let centroids: Vec<(Point, u64)> = grid
        .weighted_centroids(points.iter().copied())
        .into_iter()
        .map(|(p, w)| (p, ((w as f64 * 3.0 / 7.0).round() as u64).max(1)))
        .collect();
    let inst = PlpInstance::from_weighted_centroids(&centroids, SPACE_COST);
    let sol = jms_greedy(&inst);
    let pts = sol.facility_points(&inst);
    let k = pts.len();
    (pts, k)
}

/// Scales historical per-cell weights by predicted-vs-actual volume so the
/// landmark instance reflects the forecast (panel (b)).
fn predicted_landmarks(sample: &Sample) -> Vec<Point> {
    // Forecast total demand for the live window, then thin/duplicate the
    // historical destination sample to the predicted volume. This mirrors
    // the paper's "forecasting results are fed into the parking placement
    // algorithm".
    let mut lstm = Lstm::new(LstmConfig {
        layers: 2,
        back: 12,
        hidden: 16,
        epochs: 40,
        ..LstmConfig::default()
    })
    .expect("valid config");
    let predicted_total: f64 = match lstm.fit(&sample.hourly) {
        Ok(()) => lstm
            .forecast(&sample.hourly, 24)
            .map(|f| f.iter().map(|v| v.max(0.0)).sum())
            .unwrap_or(sample.history.len() as f64),
        Err(_) => sample.history.len() as f64,
    };
    // Scale: predicted one-day volume x 3 test days over the 7-day history.
    let scale = (3.0 * predicted_total / sample.hourly.iter().sum::<f64>()).clamp(0.1, 3.0);
    let grid = Grid::new(100.0);
    let centroids: Vec<(Point, u64)> = grid
        .weighted_centroids(sample.history.iter().copied())
        .into_iter()
        .map(|(p, w)| (p, ((w as f64 * scale).round() as u64).max(1)))
        .collect();
    let inst = PlpInstance::from_weighted_centroids(&centroids, SPACE_COST);
    jms_greedy(&inst).facility_points(&inst)
}

fn main() {
    let mut perf = PerfEmitter::new("exp_fig10");
    let t0 = Instant::now();
    let city = SyntheticCity::generate(&CityConfig {
        trips_per_day: 2_000.0,
        ..CityConfig::default()
    });
    let samples = collect_samples(&city, 14);
    perf.record_duration("generate_samples", samples.len(), t0.elapsed());
    println!(
        "Fig. 10 — total cost vs # parking over {} sampled 1 km neighbourhoods (f = {SPACE_COST} m)\n",
        samples.len()
    );

    for (panel, use_prediction) in [
        ("(a) actual requests", false),
        ("(b) predicted requests", true),
    ] {
        let mut t = Table::new(vec![
            "sample".into(),
            "offline* #".into(),
            "offline* cost".into(),
            "meyerson #".into(),
            "meyerson cost".into(),
            "kmeans #".into(),
            "kmeans cost".into(),
            "esharing #".into(),
            "esharing cost".into(),
        ]);
        let mut sums = [0.0f64; 8];
        let t0 = Instant::now();
        for (idx, sample) in samples.iter().enumerate() {
            // Offline upper bound: sees the live stream itself.
            let grid = Grid::new(100.0);
            let centroids = grid.weighted_centroids(sample.live.iter().copied());
            let inst = PlpInstance::from_weighted_centroids(&centroids, SPACE_COST);
            let off = jms_greedy(&inst);
            let off_cost = inst.cost_of(&off);
            let off_n = off.open_facilities().len();

            let mut mey = Meyerson::new(SPACE_COST, idx as u64);
            let mey_cost = mey.run(sample.live.iter().copied());
            let mey_n = mey.stations().len();

            let (landmarks, k) = landmarks_from(&sample.history);
            let mut km = OnlineKMeans::new(k.max(1), sample.live.len(), SPACE_COST, idx as u64)
                .with_phase_length(k.max(1));
            let km_cost = km.run(sample.live.iter().copied());
            let km_n = km.stations().len();

            let guide = if use_prediction {
                predicted_landmarks(sample)
            } else {
                landmarks
            };
            let mut es = DeviationPenalty::new(
                guide,
                sample.history.clone(),
                DeviationConfig {
                    space_cost: SPACE_COST,
                    seed: idx as u64,
                    ..DeviationConfig::default()
                },
            );
            let es_cost = es.run(sample.live.iter().copied());
            let es_n = es.stations().len();

            for (slot, v) in [
                off_n as f64,
                off_cost.total(),
                mey_n as f64,
                mey_cost.total(),
                km_n as f64,
                km_cost.total(),
                es_n as f64,
                es_cost.total(),
            ]
            .into_iter()
            .enumerate()
            {
                sums[slot] += v;
            }
            t.row(vec![
                idx.to_string(),
                off_n.to_string(),
                format!("{:.0}", off_cost.total()),
                mey_n.to_string(),
                format!("{:.0}", mey_cost.total()),
                km_n.to_string(),
                format!("{:.0}", km_cost.total()),
                es_n.to_string(),
                format!("{:.0}", es_cost.total()),
            ]);
        }
        perf.record_duration(
            if use_prediction {
                "panel_predicted"
            } else {
                "panel_actual"
            },
            samples.len(),
            t0.elapsed(),
        );
        let n = samples.len() as f64;
        println!("{panel}:\n{t}");
        println!(
            "means — offline*: {:.1} st / {:.0}; meyerson: {:.1} st / {:.0}; k-means: {:.1} st / {:.0}; e-sharing: {:.1} st / {:.0}\n",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n,
            sums[4] / n,
            sums[5] / n,
            sums[6] / n,
            sums[7] / n
        );
    }
    println!(
        "paper shape: k-means opens the most stations at the highest cost, Meyerson opens\n\
         more than E-sharing, and E-sharing tracks the near-optimal offline frontier\n\
         (within ~20% with actual and ~25% with predicted requests)."
    );
    match perf.write() {
        Ok(path) => eprintln!("perf trajectory written to {}", path.display()),
        Err(e) => eprintln!("perf trajectory emission failed: {e}"),
    }
}
