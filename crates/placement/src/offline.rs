//! The 1.61-factor offline placement algorithm (Algorithm 1).
//!
//! This is the greedy facility-location algorithm of Jain, Mahdian,
//! Markakis, Saberi & Vazirani (JACM 2003), analyzed by dual fitting to a
//! 1.61 approximation factor — "very close to the theoretical
//! inapproximation bound 1.46" (§III-B). At every step it selects the
//! candidate site `i*` with the smallest *average* marginal cost
//!
//! ```text
//! i* = argmin_i [ Σ_{j∈B_i} c_ij + f_i − Σ_{j∈B'_i} (c_{i'j} − c_ij) ] / |B_i|
//! ```
//!
//! where `B_i` is an optimally chosen set of still-unconnected clients and
//! `B'_i` the already-connected clients that would *save* cost by switching
//! from their current facility `i'` to `i` (the switching credit reduces
//! `i`'s effective opening cost). Already-open facilities can absorb more
//! clients at zero reopening cost. The loop ends when every client is
//! connected; a final pass drops facilities that lost all their clients to
//! switches and reassigns every client to its nearest open facility (both
//! steps only reduce cost).
//!
//! Both implementations stop each site's prefix scan with the standard JMS
//! rule: the prefix-average sequence is unimodal in `k` (costs are scanned
//! in ascending order, so once the next cost is at least the current
//! average the average can never decrease again), so the scan breaks at the
//! first `k` whose successor cost reaches the running average.
//!
//! Three entry points are provided:
//!
//! * [`JmsSolverContext`] — the production solver. It owns the weighted
//!   cost matrix, the per-site client (row) orderings, the per-client site
//!   (column) orderings, and every piece of round-loop scratch, all of
//!   which persist across solves. A cold [`JmsSolverContext::solve`]
//!   rebuilds the caches for a new instance; a warm
//!   [`JmsSolverContext::resolve`] takes a *delta mask* of clients whose
//!   weights changed since the last solve and repairs only those columns
//!   (and the affected row positions) with a sorted merge — `O(Δ·n log n)`
//!   instead of `O(n² log n)` — before re-running the round loop on the
//!   patched caches. Because `(cost, index)` is a total order, the merge
//!   reproduces exactly the orderings a full re-sort would, so a warm
//!   re-solve is **bit-identical** to a cold solve of the same instance.
//!   Repeated warm solves are allocation-free after warm-up: the scratch
//!   vectors are reset in place, never reallocated.
//! * [`jms_greedy`] — a thin wrapper running one cold solve on a throwaway
//!   context; the historical one-shot API.
//! * [`jms_greedy_reference`] — the naive sequential loop (recomputes
//!   costs, rescans every client for credits, and re-sorts inside the
//!   round loop), retained as the oracle for the equivalence test-suite.
//!
//! The round loop's per-site argmin scan fans out over `crossbeam` scoped
//! threads. Ties break to the lowest site index and per-chunk winners merge
//! in site order, so the selected `(site, prefix)` is the first strict
//! minimum of exactly the same candidate sequence the reference scans —
//! fixed-seed runs are bit-identical at any thread count.

use crate::{PlpInstance, Solution};
use esharing_geo::Point;
use esharing_stats::parallel;
use std::cmp::Ordering;

/// Below this many clients the cached-cost machinery loses: the `O(n²)`
/// precompute (cost matrix plus two sorted orderings) and the worker
/// fan-out cost more than the rounds they accelerate, so the solver
/// delegates to the sequential reference (95 µs vs 249 µs at n = 50).
const SMALL_INSTANCE_CUTOFF: usize = 64;

/// Safety margin for the first-candidate lower-bound prune in the argmin
/// scan. A site is abandoned only when its cheapest unconnected candidate,
/// scaled DOWN by this margin, still exceeds the incumbent best ratio. The
/// true lower bound (first candidate cost, when the opening-minus-credit
/// term is non-negative) holds up to `n * 2^-53` relative rounding across
/// the prefix sum; `1e-9` is ~3.5e4x that bound at `n = 250`, so the prune
/// can never drop a site the exact scan would have selected.
const PRUNE_MARGIN: f64 = 1.0 - 1e-9;

/// Canonical `(cost, index)` comparison: ascending cost, ties to the lower
/// index. Indices are distinct within any row or column, so this is a total
/// order and every sorted ordering it produces is unique — the property
/// that lets the warm path's sorted merge reproduce a full re-sort exactly.
fn pair_cmp(a: &(f64, u32), b: &(f64, u32)) -> Ordering {
    a.0.partial_cmp(&b.0)
        .expect("finite costs")
        .then(a.1.cmp(&b.1))
}

/// A persistent JMS solver: cost matrix, orderings, and round-loop scratch
/// that survive across solves so successive re-solves over slowly drifting
/// demand share most of their work.
///
/// Lifecycle: [`JmsSolverContext::solve`] primes the context for an
/// instance (cold, full precompute); [`JmsSolverContext::resolve`] then
/// accepts instances that differ from the primed one only in the weights
/// of a known set of clients and patches the caches incrementally. Any
/// shape mismatch (different client count, moved client positions, changed
/// opening costs, or an inaccurate delta mask) silently falls back to a
/// cold solve, so `resolve` is always correct — the mask is a performance
/// hint, verified before use, never trusted for correctness.
///
/// # Examples
///
/// ```
/// use esharing_geo::Point;
/// use esharing_placement::offline::JmsSolverContext;
/// use esharing_placement::PlpInstance;
///
/// let clients = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(900.0, 0.0)];
/// let inst = PlpInstance::new(clients.clone(), vec![1.0, 1.0, 1.0], vec![10.0; 3]);
/// let mut ctx = JmsSolverContext::new();
/// let cold = ctx.solve(&inst);
/// // Bump one client's weight and re-solve warm: only column 2 is repaired.
/// let inst2 = PlpInstance::new(clients, vec![1.0, 1.0, 5.0], vec![10.0; 3]);
/// let warm = ctx.resolve(&inst2, &[2]);
/// assert_eq!(warm, ctx.resolve(&inst2, &[2]));
/// # let _ = (cold, warm);
/// ```
#[derive(Debug, Default)]
pub struct JmsSolverContext {
    /// Client count of the primed instance.
    n: usize,
    /// Whether the fast-path caches below describe a previously solved
    /// instance (always false after a reference-delegated small solve).
    primed: bool,
    // --- pristine caches for the primed instance ---
    /// Client positions of the primed instance (for warm validation).
    clients: Vec<Point>,
    /// Arrival weights of the primed instance.
    weights: Vec<f64>,
    /// Opening costs of the primed instance.
    openings: Vec<f64>,
    /// Weighted connection-cost matrix, site-major: `cost[site * n + j]`.
    cost: Vec<f64>,
    /// Per-site client ordering by `(cost, client)` — pristine full rows.
    rows: Vec<Vec<u32>>,
    /// Per-client site ordering costs, client-major flat layout.
    col_cost: Vec<f64>,
    /// Per-client site ordering indices, client-major flat layout.
    col_site: Vec<u32>,
    // --- round-loop scratch, reset in place every solve ---
    /// Working copies of `rows`, lazily compacted as rounds connect
    /// clients; refreshed from `rows` via `clone_from` (no realloc).
    live: Vec<Vec<u32>>,
    connected: Vec<Option<usize>>,
    /// One-byte mirror of `connected[j].is_none()`: the round loop's skip
    /// checks and compaction passes are bound by these loads, and a `bool`
    /// read costs a quarter of an `Option<usize>` one.
    unconn: Vec<bool>,
    conn_cost: Vec<f64>,
    open: Vec<bool>,
    credit: Vec<f64>,
    connected_list: Vec<usize>,
    serving: Vec<bool>,
    open_sites: Vec<usize>,
    // --- warm-path scratch ---
    /// Membership bitmap of the verified delta mask.
    changed_flag: Vec<bool>,
    /// Deduplicated delta mask in ascending client order.
    delta: Vec<usize>,
    /// Sorted `(cost, index)` patch buffer for column/row repair.
    patch: Vec<(f64, u32)>,
    /// The previous solve's solution, returned verbatim on an empty delta.
    last: Option<Solution>,
}

impl JmsSolverContext {
    /// An unprimed context. The first [`JmsSolverContext::solve`] pays the
    /// full precompute; everything after reuses its allocations.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent solution produced by this context, if any.
    pub fn last_solution(&self) -> Option<&Solution> {
        self.last.as_ref()
    }

    /// Cold solve: rebuilds the cost matrix and both orderings for
    /// `instance`, runs the round loop, and primes the context for
    /// subsequent warm [`JmsSolverContext::resolve`] calls. Produces
    /// exactly the same solution as [`jms_greedy_reference`] — same
    /// facilities, same assignment — for every thread count.
    pub fn solve(&mut self, instance: &PlpInstance) -> Solution {
        let n = instance.len();
        // Small instances: run the reference loop directly. It IS the
        // oracle the equivalence suite checks against, so delegation is
        // trivially bit-identical, and at this size it is also the faster
        // kernel.
        if n < SMALL_INSTANCE_CUTOFF {
            self.primed = false;
            let sol = jms_greedy_reference(instance);
            self.last = Some(sol.clone());
            return sol;
        }
        self.rebuild(instance);
        let sol = self.run_rounds(instance);
        self.last = Some(sol.clone());
        sol
    }

    /// Warm incremental re-solve: `changed` lists the clients whose
    /// arrival weights differ from the primed instance (the delta mask
    /// from a forecast diff). Only those columns are recomputed and
    /// re-sorted, and each row is repaired by removing the changed entries
    /// and sorted-merging their re-costed replacements — the expensive
    /// `O(n² log n)` precompute is skipped entirely. The repaired
    /// orderings are exactly what a cold re-sort would produce, so the
    /// result is **bit-identical** to [`JmsSolverContext::solve`] on the
    /// same instance.
    ///
    /// An empty (verified) mask returns the cached previous solution. If
    /// the instance is not warm-compatible — unprimed context, different
    /// client count, moved positions, changed opening costs, or a weight
    /// change outside the mask — this falls back to a cold solve.
    pub fn resolve(&mut self, instance: &PlpInstance, changed: &[usize]) -> Solution {
        let n = instance.len();
        if n < SMALL_INSTANCE_CUTOFF {
            self.primed = false;
            let sol = jms_greedy_reference(instance);
            self.last = Some(sol.clone());
            return sol;
        }
        if !self.warm_compatible(instance, changed) {
            return self.solve(instance);
        }
        if self.delta.is_empty() {
            return self
                .last
                .clone()
                .expect("primed context caches its last solution");
        }
        self.apply_delta(instance);
        let sol = self.run_rounds(instance);
        self.last = Some(sol.clone());
        sol
    }

    /// Verifies that `instance` differs from the primed one only in the
    /// weights of clients listed in `changed`; on success the deduplicated
    /// mask is left in `self.delta` / `self.changed_flag`.
    fn warm_compatible(&mut self, instance: &PlpInstance, changed: &[usize]) -> bool {
        if !self.primed || instance.len() != self.n {
            return false;
        }
        let n = self.n;
        if changed.iter().any(|&j| j >= n) {
            return false;
        }
        if instance.clients() != &self.clients[..] || instance.opening_costs() != &self.openings[..]
        {
            return false;
        }
        self.changed_flag.clear();
        self.changed_flag.resize(n, false);
        for &j in changed {
            self.changed_flag[j] = true;
        }
        // Every weight outside the mask must be untouched — the mask is a
        // hint, not a promise.
        let ok = instance
            .weights()
            .iter()
            .zip(&self.weights)
            .enumerate()
            .all(|(j, (now, then))| self.changed_flag[j] || now == then);
        if ok {
            self.delta.clear();
            self.delta.extend(
                (0..n)
                    .filter(|&j| self.changed_flag[j] && instance.weights()[j] != self.weights[j]),
            );
            // Tighten the bitmap to the effective delta so row repair only
            // touches columns that actually moved.
            self.changed_flag.iter_mut().for_each(|f| *f = false);
            for &j in &self.delta {
                self.changed_flag[j] = true;
            }
        }
        ok
    }

    /// Patches the cost matrix and both orderings for the verified delta
    /// in `self.delta`. Changed columns are recomputed with the exact
    /// arithmetic of `connection_cost` and fully re-sorted; every row
    /// drops its changed entries and sorted-merges the re-costed
    /// replacements back in, reproducing the canonical `(cost, index)`
    /// order a full re-sort would yield.
    fn apply_delta(&mut self, instance: &PlpInstance) {
        let n = self.n;
        let Self {
            weights,
            cost,
            rows,
            col_cost,
            col_site,
            changed_flag,
            delta,
            patch,
            ..
        } = self;
        for &j in delta.iter() {
            weights[j] = instance.weights()[j];
            for site in 0..n {
                cost[site * n + j] = instance.connection_cost(site, j);
            }
            patch.clear();
            patch.extend((0..n as u32).map(|s| (cost[s as usize * n + j], s)));
            patch.sort_unstable_by(pair_cmp);
            for (k, &(c, s)) in patch.iter().enumerate() {
                col_cost[j * n + k] = c;
                col_site[j * n + k] = s;
            }
        }
        for site in 0..n {
            patch.clear();
            patch.extend(delta.iter().map(|&j| (cost[site * n + j], j as u32)));
            patch.sort_unstable_by(pair_cmp);
            let row = &mut rows[site];
            row.retain(|&idx| !changed_flag[idx as usize]);
            for &(c, sidx) in patch.iter() {
                let at = row.partition_point(|&idx| {
                    pair_cmp(&(cost[site * n + idx as usize], idx), &(c, sidx)) == Ordering::Less
                });
                row.insert(at, sidx);
            }
        }
    }

    /// Full precompute for a new instance: weighted cost matrix, per-site
    /// row orderings, per-client column orderings, and the primed-instance
    /// record the warm path validates against.
    fn rebuild(&mut self, instance: &PlpInstance) {
        let n = instance.len();
        self.n = n;
        self.clients.clear();
        self.clients.extend_from_slice(instance.clients());
        self.weights.clear();
        self.weights.extend_from_slice(instance.weights());
        self.openings.clear();
        self.openings.extend_from_slice(instance.opening_costs());

        // Weighted connection-cost matrix, row per site:
        // cost[site * n + client]. Computed once with the exact arithmetic
        // of `connection_cost`, so every cached read matches what the
        // reference recomputes in its inner loops.
        self.cost = parallel::map_chunks(n, 8, |sites| {
            let mut block = Vec::with_capacity(sites.len() * n);
            for site in sites {
                for client in 0..n {
                    block.push(instance.connection_cost(site, client));
                }
            }
            block
        })
        .concat();
        let cost = &self.cost;

        // Per-site client ordering by (cost, client index) — the canonical
        // ascending-cost order every round's prefix scan and the deployment
        // step walk, computed once instead of re-sorted per round. Sorting
        // (cost, index) pairs keeps every comparison memory-sequential (no
        // per-comparison gather back into the matrix).
        self.rows = parallel::map_chunks(n, 4, |sites| {
            let mut block = Vec::with_capacity(sites.len());
            let mut keyed: Vec<(f64, u32)> = Vec::with_capacity(n);
            for site in sites {
                let row = &cost[site * n..(site + 1) * n];
                keyed.clear();
                keyed.extend(row.iter().copied().zip(0..n as u32));
                keyed.sort_unstable_by(pair_cmp);
                block.push(keyed.iter().map(|&(_, client)| client).collect());
            }
            block
        })
        .concat();

        // Per-client column ordering by (cost, site index), with the costs
        // materialized alongside so the credit scatter pass reads
        // sequentially. Flat client-major layout.
        let chunks = parallel::map_chunks(n, 4, |clients| {
            let mut costs_block = Vec::with_capacity(clients.len() * n);
            let mut sites_block = Vec::with_capacity(clients.len() * n);
            let mut keyed: Vec<(f64, u32)> = Vec::with_capacity(n);
            for client in clients {
                keyed.clear();
                keyed.extend((0..n as u32).map(|s| (cost[s as usize * n + client], s)));
                keyed.sort_unstable_by(pair_cmp);
                costs_block.extend(keyed.iter().map(|&(c, _)| c));
                sites_block.extend(keyed.iter().map(|&(_, s)| s));
            }
            (costs_block, sites_block)
        });
        self.col_cost.clear();
        self.col_site.clear();
        self.col_cost.reserve(n * n);
        self.col_site.reserve(n * n);
        for (c, s) in chunks {
            self.col_cost.extend_from_slice(&c);
            self.col_site.extend_from_slice(&s);
        }

        self.live.resize_with(n, Vec::new);
        self.live.truncate(n);
        self.primed = true;
    }

    /// The selection round loop over the current caches. Scratch is reset
    /// in place (no allocation once warmed up); `live` working rows are
    /// refreshed from the pristine `rows` and lazily compacted as clients
    /// connect. Identical operation order to the reference: credit sums in
    /// client-index order, prefix sums in canonical `(cost, index)` order,
    /// first-strict-minimum site selection.
    fn run_rounds(&mut self, instance: &PlpInstance) -> Solution {
        let n = self.n;
        let Self {
            cost,
            rows,
            col_cost,
            col_site,
            live,
            connected,
            unconn,
            conn_cost,
            open,
            credit,
            connected_list,
            serving,
            open_sites,
            ..
        } = self;
        for (l, r) in live.iter_mut().zip(rows.iter()) {
            l.clone_from(r);
        }
        connected.clear();
        connected.resize(n, None);
        unconn.clear();
        unconn.resize(n, true);
        conn_cost.clear();
        conn_cost.resize(n, f64::INFINITY);
        open.clear();
        open.resize(n, false);
        credit.clear();
        credit.resize(n, 0.0);
        connected_list.clear();
        let mut unconnected_count = n;
        let mut compacted_len = n;
        let workers = parallel::num_threads();

        while unconnected_count > 0 {
            // Switching credits for every site in one sparse scatter pass:
            // each connected client walks the prefix of its column ordering
            // that is cheaper than its current connection. Clients are
            // visited in ascending index order, so each `credit[site]`
            // accumulates exactly the reference's term sequence —
            // identical f64 sums.
            credit.fill(0.0);
            for &j in connected_list.iter() {
                let limit = conn_cost[j];
                let by_cost = &col_cost[j * n..(j + 1) * n];
                let by_site = &col_site[j * n..(j + 1) * n];
                for (c, &site) in by_cost.iter().zip(by_site) {
                    if *c >= limit {
                        break;
                    }
                    credit[site as usize] += limit - c;
                }
            }

            // Per-site argmin scan, fanned out over site chunks. Workers
            // only read shared state; each returns its chunk's first strict
            // minimum and the chunk winners merge in site order below,
            // reproducing the sequential first-minimum tie-break (lowest
            // site, then smallest prefix) bit-for-bit.
            let best = {
                let cost: &[f64] = cost;
                let open: &[bool] = open;
                let credit: &[f64] = credit;
                let unconn: &[bool] = unconn;
                let live: &[Vec<u32>] = live;
                let openings = instance.opening_costs();
                let scan = |sites: std::ops::Range<usize>| {
                    // Sentinel-encoded (ratio, site, prefix): the hot
                    // compare is a plain f64 test, no Option discriminant.
                    let mut best = (f64::INFINITY, usize::MAX, 0usize);
                    for site in sites {
                        let row = &cost[site * n..(site + 1) * n];
                        let effective_f = if open[site] { 0.0 } else { openings[site] };
                        // Optimal unconnected prefix by ascending connection
                        // cost: walk the precomputed ordering, skipping
                        // connected clients, stopping with the unimodal JMS
                        // prefix rule.
                        let mut running = effective_f - credit[site];
                        let mut k = 0usize;
                        let mut last_ratio = f64::INFINITY;
                        for &j in &live[site] {
                            let j = j as usize;
                            if !unconn[j] {
                                continue;
                            }
                            let c = row[j];
                            // Lower-bound prune on the first candidate:
                            // connection costs are non-negative (weight x
                            // distance with positive weights), so once
                            // `running >= 0` every prefix ratio is at least
                            // the first candidate's cost, up to accumulated
                            // rounding of <= n*2^-53 relative error. The
                            // margin is ~3.5e4x that bound at n = 250, so a
                            // pruned site provably cannot strictly beat the
                            // incumbent and the selected sequence is
                            // bit-identical to the unpruned scan.
                            if k == 0 && running >= 0.0 && c * PRUNE_MARGIN > best.0 {
                                break;
                            }
                            if k > 0 && c >= last_ratio {
                                break;
                            }
                            running += c;
                            k += 1;
                            let ratio = running / k as f64;
                            if ratio < best.0 {
                                best = (ratio, site, k);
                            }
                            last_ratio = ratio;
                            if k == unconnected_count {
                                break;
                            }
                        }
                    }
                    (best.1 != usize::MAX).then_some(best)
                };
                // With one worker the fan-out is pure indirection: calling
                // the scan directly keeps it inlined into the round loop
                // (measurably ~2x faster than routing the same closure
                // through the generic helper), and the single full-range
                // scan IS the canonical candidate sequence, so both paths
                // select identically.
                let chunk_best = if workers == 1 {
                    vec![scan(0..n)]
                } else {
                    parallel::map_chunks(n, 16, scan)
                };
                let mut best: Option<(f64, usize, usize)> = None;
                for cand in chunk_best.into_iter().flatten() {
                    if best.is_none_or(|(b, _, _)| cand.0 < b) {
                        best = Some(cand);
                    }
                }
                best
            };
            let (_, site, prefix) = best.expect("unconnected set is non-empty");

            // Deploy: connect the `prefix` cheapest unconnected clients —
            // reusing the per-site ordering computed during precomputation
            // instead of cloning and re-sorting the unconnected set — and
            // switch every connected client that saves by moving.
            open[site] = true;
            let row = &cost[site * n..(site + 1) * n];
            let mut taken = 0usize;
            for &j in &live[site] {
                if taken == prefix {
                    break;
                }
                let j = j as usize;
                if unconn[j] {
                    connected[j] = Some(site);
                    unconn[j] = false;
                    conn_cost[j] = row[j];
                    unconnected_count -= 1;
                    taken += 1;
                }
            }
            for &j in connected_list.iter() {
                if row[j] < conn_cost[j] {
                    connected[j] = Some(site);
                    conn_cost[j] = row[j];
                }
            }
            connected_list.clear();
            connected_list.resize(n, 0);
            let mut w = 0;
            for (j, &u) in unconn.iter().enumerate() {
                connected_list[w] = j;
                w += !u as usize;
            }
            connected_list.truncate(w);

            // Compact the per-site orderings once the unconnected set has
            // shrunk by a quarter: `retain` keeps the surviving entries in
            // the same relative (cost, index) order, so later scans see
            // exactly the subsequence they would have reached by skipping —
            // still amortized `O(n²)` total. The quarter cadence (vs
            // halving) trades a few more cheap branchless rewrite passes
            // for fewer mispredict-bound skips in the argmin walk; measured
            // ~15% off the rounds phase at n = 250.
            if unconnected_count * 4 <= compacted_len * 3 {
                // Branchless in-place compaction: whether an entry survives
                // is a coin flip to the branch predictor at this point, so
                // write unconditionally and advance the cursor by the flag
                // instead of branching per element.
                for l in live.iter_mut() {
                    let mut w = 0;
                    for r in 0..l.len() {
                        let j = l[r];
                        l[w] = j;
                        w += unconn[j as usize] as usize;
                    }
                    l.truncate(w);
                }
                compacted_len = unconnected_count;
            }
        }

        // Keep only facilities still serving someone, then let every client
        // take its nearest open facility (both steps are cost-non-increasing).
        serving.clear();
        serving.resize(n, false);
        for conn in connected.iter().flatten() {
            serving[*conn] = true;
        }
        open_sites.clear();
        open_sites.extend((0..n).filter(|&i| open[i] && serving[i]));
        instance.assign_nearest(open_sites)
    }
}

/// Runs Algorithm 1 on `instance` and returns the greedy solution.
///
/// One cold [`JmsSolverContext::solve`] on a throwaway context:
/// cache-aware and data-parallel — `O(n² log n)` one-off precomputation
/// (cost matrix + per-site row orderings + per-client column orderings),
/// then each selection round is a sort-free scan — `O(n²)` worst case,
/// typically far less because switching credits are gathered sparsely
/// (each connected client touches only the sites cheaper than its current
/// connection) and each site's prefix scan breaks at the unimodal JMS
/// stopping point — split across worker threads. Instances smaller than
/// the crossover (64 clients) run the sequential reference directly, where
/// the precompute would cost more than it saves. Produces exactly the
/// same solution as [`jms_greedy_reference`] — same facilities, same
/// assignment — for every thread count. Callers that re-solve repeatedly
/// should hold a [`JmsSolverContext`] instead and use its warm path.
///
/// # Examples
///
/// ```
/// use esharing_geo::Point;
/// use esharing_placement::{offline, PlpInstance};
///
/// let instance = PlpInstance::with_uniform_cost(
///     vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(900.0, 0.0)],
///     10.0,
/// );
/// let solution = offline::jms_greedy(&instance);
/// // The two nearby clients share one parking; the distant one gets its own.
/// assert_eq!(solution.open_facilities().len(), 2);
/// ```
pub fn jms_greedy(instance: &PlpInstance) -> Solution {
    JmsSolverContext::new().solve(instance)
}

/// Naive sequential reference for [`jms_greedy`]: recomputes connection
/// costs and re-sorts the unconnected set inside the round loop, exactly as
/// Algorithm 1 is written — `O(n³ log n)` for `n` clients, matching the
/// `O(N³)` bound stated in the paper. Retained as the oracle for the
/// equivalence test-suite and the speedup benchmarks.
pub fn jms_greedy_reference(instance: &PlpInstance) -> Solution {
    let n = instance.len();
    let mut connected: Vec<Option<usize>> = vec![None; n]; // client -> facility
    let mut open = vec![false; n];
    let mut unconnected: Vec<usize> = (0..n).collect();

    while !unconnected.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, site, prefix len)
        for (site, &site_open) in open.iter().enumerate() {
            let effective_f = if site_open {
                0.0
            } else {
                instance.opening_costs()[site]
            };
            // Switching credit from already-connected clients.
            let mut credit = 0.0;
            for (client, conn) in connected.iter().enumerate() {
                if let Some(current) = conn {
                    let now = instance.connection_cost(*current, client);
                    let alt = instance.connection_cost(site, client);
                    if alt < now {
                        credit += now - alt;
                    }
                }
            }
            // Optimal unconnected prefix by ascending connection cost.
            let mut costs: Vec<f64> = unconnected
                .iter()
                .map(|&j| instance.connection_cost(site, j))
                .collect();
            costs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite costs"));
            let mut running = effective_f - credit;
            let mut last_ratio = f64::INFINITY;
            for (k, c) in costs.iter().enumerate() {
                // Unimodal JMS prefix rule: averages can only rise from here.
                if k > 0 && *c >= last_ratio {
                    break;
                }
                running += c;
                let ratio = running / (k + 1) as f64;
                if best.is_none_or(|(b, _, _)| ratio < b) {
                    best = Some((ratio, site, k + 1));
                }
                last_ratio = ratio;
            }
        }
        let (_, site, prefix) = best.expect("unconnected set is non-empty");
        // Deploy: connect the `prefix` cheapest unconnected clients and
        // switch every connected client that saves by moving. Cost ties
        // break by client index — the same canonical order the fast path's
        // precomputed per-site ordering uses.
        open[site] = true;
        let mut ordered: Vec<usize> = unconnected.clone();
        ordered.sort_unstable_by(|&a, &b| {
            instance
                .connection_cost(site, a)
                .partial_cmp(&instance.connection_cost(site, b))
                .expect("finite costs")
                .then(a.cmp(&b))
        });
        for &client in ordered.iter().take(prefix) {
            connected[client] = Some(site);
        }
        for (client, conn) in connected.iter_mut().enumerate() {
            if let Some(current) = conn {
                if instance.connection_cost(site, client)
                    < instance.connection_cost(*current, client)
                {
                    *conn = Some(site);
                }
            }
        }
        unconnected.retain(|&j| connected[j].is_none());
    }

    // Keep only facilities still serving someone, then let every client
    // take its nearest open facility (both steps are cost-non-increasing).
    let mut serving = vec![false; n];
    for conn in connected.iter().flatten() {
        serving[*conn] = true;
    }
    let open_sites: Vec<usize> = (0..n).filter(|&i| open[i] && serving[i]).collect();
    instance.assign_nearest(&open_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    /// Points on a small integer lattice: duplicate points and exact cost
    /// ties are the norm, exercising every tie-break path.
    fn lattice_points(n: usize, side: u32, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    f64::from(rng.gen_range(0..side)) * 100.0,
                    f64::from(rng.gen_range(0..side)) * 100.0,
                )
            })
            .collect()
    }

    /// Exhaustive optimum by enumerating every subset of open sites
    /// (only usable for tiny instances).
    fn brute_force_optimum(instance: &PlpInstance) -> f64 {
        let n = instance.len();
        assert!(n <= 12, "brute force only for tiny instances");
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) {
            let open: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let sol = instance.assign_nearest(&open);
            best = best.min(instance.cost_of(&sol).total());
        }
        best
    }

    #[test]
    fn single_client_opens_its_site() {
        let inst = PlpInstance::with_uniform_cost(vec![Point::new(5.0, 5.0)], 10.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities(), &[0]);
        assert_eq!(inst.cost_of(&sol).walking, 0.0);
        assert_eq!(inst.cost_of(&sol).space, 10.0);
    }

    #[test]
    fn clusters_get_one_facility_each() {
        let mut clients = Vec::new();
        for cluster in 0..3 {
            let cx = cluster as f64 * 2000.0;
            for k in 0..5 {
                clients.push(Point::new(cx + k as f64 * 10.0, 0.0));
            }
        }
        let inst = PlpInstance::with_uniform_cost(clients, 300.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 3);
        // Every client within its own cluster.
        let cost = inst.cost_of(&sol);
        assert!(cost.walking < 5.0 * 3.0 * 40.0);
    }

    #[test]
    fn expensive_opening_collapses_to_one() {
        let clients = uniform_points(20, 100.0, 1);
        let inst = PlpInstance::with_uniform_cost(clients, 1e7);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 1);
    }

    #[test]
    fn cheap_opening_opens_everywhere() {
        let clients = uniform_points(15, 10_000.0, 2);
        let inst = PlpInstance::with_uniform_cost(clients, 1e-3);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 15);
        assert_eq!(inst.cost_of(&sol).walking, 0.0);
    }

    #[test]
    fn every_client_assigned_to_open_facility() {
        let clients = uniform_points(60, 1000.0, 3);
        let inst = PlpInstance::with_uniform_cost(clients, 800.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.assignment.len(), 60);
        for &f in &sol.assignment {
            assert!(sol.open.contains(&f));
        }
        // Nearest-assignment invariant.
        for (j, &f) in sol.assignment.iter().enumerate() {
            let d = inst.clients()[f].distance(inst.clients()[j]);
            for &o in &sol.open {
                assert!(
                    inst.clients()[o].distance(inst.clients()[j]) >= d - 1e-9,
                    "client {j} not at nearest facility"
                );
            }
        }
    }

    #[test]
    fn within_factor_of_bruteforce_optimum() {
        // The 1.61 guarantee, with slack for the final reassignment: check
        // against exhaustive optima on several tiny random instances.
        for seed in 0..6 {
            let clients = uniform_points(9, 500.0, 100 + seed);
            let inst = PlpInstance::with_uniform_cost(clients, 150.0);
            let greedy = inst.cost_of(&jms_greedy(&inst)).total();
            let opt = brute_force_optimum(&inst);
            assert!(
                greedy <= 1.61 * opt + 1e-9,
                "seed {seed}: greedy {greedy} vs opt {opt}"
            );
            assert!(greedy >= opt - 1e-9);
        }
    }

    #[test]
    fn weighted_clients_pull_facilities() {
        // With one facility worth opening, the greedy places it at the
        // heavy client's site: serving the heavy client remotely would
        // cost 50 x 300 = 15000, serving the light one costs 300.
        let clients = vec![Point::new(0.0, 0.0), Point::new(300.0, 0.0)];
        let light = PlpInstance::new(clients.clone(), vec![1.0, 1.0], vec![400.0, 400.0]);
        let heavy = PlpInstance::new(clients, vec![1.0, 50.0], vec![400.0, 400.0]);
        assert_eq!(jms_greedy(&light).open_facilities().len(), 1);
        let sol = jms_greedy(&heavy);
        assert_eq!(
            sol.open_facilities(),
            &[1],
            "facility must sit at the heavy client"
        );
        assert_eq!(heavy.cost_of(&sol).walking, 300.0);
    }

    #[test]
    fn deterministic() {
        let clients = uniform_points(40, 1000.0, 9);
        let inst = PlpInstance::with_uniform_cost(clients, 500.0);
        assert_eq!(jms_greedy(&inst), jms_greedy(&inst));
    }

    #[test]
    fn matches_paper_scale_on_100_random_arrivals() {
        // Fig. 4(a): 100 random arrivals in a 1000x1000 field with a space
        // cost of 5000 per station -> ~5 stations, total cost ~42k. Exact
        // numbers depend on the draw; assert the paper's *scale*.
        let clients = uniform_points(100, 1000.0, 4);
        let inst = PlpInstance::with_uniform_cost(clients, 5000.0);
        let sol = jms_greedy(&inst);
        let cost = inst.cost_of(&sol);
        let stations = sol.open_facilities().len();
        assert!(
            (3..=8).contains(&stations),
            "station count {stations} outside Fig 4(a) band"
        );
        assert!(
            (30_000.0..=55_000.0).contains(&cost.total()),
            "total cost {} outside Fig 4(a) band",
            cost.total()
        );
    }

    #[test]
    fn fast_path_matches_reference_on_random_instances() {
        for seed in 0..8 {
            let n = 20 + 5 * seed as usize;
            let clients = uniform_points(n, 1000.0, 200 + seed);
            for f in [1e-3, 150.0, 5000.0, 1e7] {
                let inst = PlpInstance::with_uniform_cost(clients.clone(), f);
                assert_eq!(
                    jms_greedy(&inst),
                    jms_greedy_reference(&inst),
                    "seed {seed} f {f}"
                );
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_with_ties() {
        // Lattice instances are riddled with duplicate points and exact
        // cost ties; the canonical (cost, client-index) / lowest-site
        // tie-breaks must agree between the two paths.
        for seed in 0..6 {
            let clients = lattice_points(30, 4, 300 + seed);
            let inst = PlpInstance::with_uniform_cost(clients, 250.0);
            assert_eq!(
                jms_greedy(&inst),
                jms_greedy_reference(&inst),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fast_path_matches_reference_weighted() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(400 + seed);
            let n = 25;
            let clients = uniform_points(n, 800.0, 500 + seed);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..20.0)).collect();
            let openings: Vec<f64> = (0..n).map(|_| rng.gen_range(50.0..2000.0)).collect();
            let inst = PlpInstance::new(clients, weights, openings);
            assert_eq!(
                jms_greedy(&inst),
                jms_greedy_reference(&inst),
                "seed {seed}"
            );
        }
    }

    /// A fast-path-sized weighted instance (n >= SMALL_INSTANCE_CUTOFF).
    fn big_weighted_instance(n: usize, seed: u64) -> PlpInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let clients = uniform_points(n, 2000.0, seed.wrapping_add(77));
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..30.0)).collect();
        PlpInstance::new(clients, weights, vec![3000.0; n])
    }

    #[test]
    fn context_cold_solve_matches_one_shot() {
        let inst = big_weighted_instance(90, 11);
        let mut ctx = JmsSolverContext::new();
        assert_eq!(ctx.solve(&inst), jms_greedy(&inst));
        assert_eq!(ctx.last_solution(), Some(&jms_greedy(&inst)));
    }

    #[test]
    fn warm_resolve_unchanged_returns_cached_solution() {
        let inst = big_weighted_instance(80, 12);
        let mut ctx = JmsSolverContext::new();
        let cold = ctx.solve(&inst);
        let warm = ctx.resolve(&inst, &[]);
        assert_eq!(warm, cold);
        // A mask listing untouched clients is tightened to the empty
        // effective delta and still returns the cached solution verbatim.
        let warm2 = ctx.resolve(&inst, &[3, 17, 42]);
        assert_eq!(warm2, cold);
    }

    #[test]
    fn warm_resolve_matches_cold_after_weight_changes() {
        for seed in 0..4 {
            let n = 100;
            let inst = big_weighted_instance(n, 20 + seed);
            let mut ctx = JmsSolverContext::new();
            ctx.solve(&inst);
            // Perturb a handful of weights and warm-resolve.
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let mut weights = inst.weights().to_vec();
            let changed: Vec<usize> = (0..n).filter(|_| rng.gen_range(0..10) == 0).collect();
            for &j in &changed {
                weights[j] = rng.gen_range(0.5..30.0);
            }
            let next = PlpInstance::new(
                inst.clients().to_vec(),
                weights,
                inst.opening_costs().to_vec(),
            );
            let warm = ctx.resolve(&next, &changed);
            let cold = jms_greedy(&next);
            assert_eq!(warm, cold, "seed {seed} changed {changed:?}");
            // The context stays primed: a second delta on top of the first
            // must still match a cold solve.
            let mut weights2 = next.weights().to_vec();
            weights2[5] = 42.0;
            let next2 = PlpInstance::new(
                next.clients().to_vec(),
                weights2,
                next.opening_costs().to_vec(),
            );
            assert_eq!(ctx.resolve(&next2, &[5]), jms_greedy(&next2), "seed {seed}");
        }
    }

    #[test]
    fn warm_resolve_with_ties_matches_cold() {
        // Lattice geometry: duplicate points everywhere, so row/column
        // repair must reproduce the canonical tie-broken orderings exactly.
        let n = 80;
        let clients = lattice_points(n, 5, 31);
        let weights: Vec<f64> = (0..n).map(|j| 1.0 + (j % 4) as f64).collect();
        let inst = PlpInstance::new(clients.clone(), weights.clone(), vec![500.0; n]);
        let mut ctx = JmsSolverContext::new();
        ctx.solve(&inst);
        let mut w2 = weights;
        for j in (0..n).step_by(7) {
            w2[j] = 3.0; // collides with existing weights -> exact cost ties
        }
        let changed: Vec<usize> = (0..n).step_by(7).collect();
        let next = PlpInstance::new(clients, w2, vec![500.0; n]);
        assert_eq!(ctx.resolve(&next, &changed), jms_greedy(&next));
    }

    #[test]
    fn warm_resolve_falls_back_cold_on_shape_mismatch() {
        let inst = big_weighted_instance(70, 40);
        let mut ctx = JmsSolverContext::new();
        ctx.solve(&inst);
        // Different instance entirely (moved points): mask is wrong, the
        // fallback must still produce the cold answer.
        let other = big_weighted_instance(70, 41);
        assert_eq!(ctx.resolve(&other, &[0]), jms_greedy(&other));
        // Out-of-range mask entries also fall back.
        let third = big_weighted_instance(70, 42);
        assert_eq!(ctx.resolve(&third, &[usize::MAX]), jms_greedy(&third));
    }

    #[test]
    fn warm_resolve_detects_unmasked_weight_change() {
        // A weight change *outside* the mask must not be silently ignored:
        // the compatibility check falls back to a cold solve.
        let n = 72;
        let inst = big_weighted_instance(n, 50);
        let mut ctx = JmsSolverContext::new();
        ctx.solve(&inst);
        let mut weights = inst.weights().to_vec();
        weights[10] += 1.0; // changed...
        let next = PlpInstance::new(
            inst.clients().to_vec(),
            weights,
            inst.opening_costs().to_vec(),
        );
        // ...but the mask only admits client 3.
        assert_eq!(ctx.resolve(&next, &[3]), jms_greedy(&next));
    }

    #[test]
    fn small_instances_delegate_to_reference_in_both_paths() {
        let clients = uniform_points(20, 500.0, 60);
        let inst = PlpInstance::with_uniform_cost(clients, 200.0);
        let mut ctx = JmsSolverContext::new();
        assert_eq!(ctx.solve(&inst), jms_greedy_reference(&inst));
        assert_eq!(ctx.resolve(&inst, &[1]), jms_greedy_reference(&inst));
    }
}
