//! Online k-means clustering baseline.
//!
//! The algorithm of Liberty, Sriharsha & Sviridenko (ALENEX'16) adapts
//! Meyerson's scheme to k-means: a point at squared distance `D²` from the
//! current centers becomes a new center with probability `min(D²/f_r, 1)`;
//! after every `q_max` new centers the phase advances and the notional
//! facility cost `f` doubles, which bounds the number of centers at
//! `O(k log n)`. The paper evaluates it under the PLP objective (walking
//! distance + space occupation), where its eagerness to open centers makes
//! it the weakest baseline (Table V).

use super::{Decision, OnlinePlacement};
use crate::PlacementCost;
use esharing_geo::{NearestNeighborIndex, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Online k-means clustering (Liberty et al.), accounted under the PLP
/// cost model.
#[derive(Debug)]
pub struct OnlineKMeans {
    /// Target number of clusters `k`.
    k: usize,
    /// PLP space-occupation cost charged per opened center.
    space_cost: f64,
    /// Phase-doubling trigger: number of openings per phase,
    /// `q_max = ⌈3k(1 + ln n)⌉` in the original analysis.
    q_max: usize,
    /// Current notional facility cost `f_r` (squared meters).
    f: f64,
    /// Openings in the current phase.
    q: usize,
    /// Seed buffer for the initialization phase (first k+1 points).
    seed_buffer: Vec<Point>,
    index: NearestNeighborIndex,
    rng: StdRng,
    cost: PlacementCost,
}

impl OnlineKMeans {
    /// Creates the algorithm.
    ///
    /// * `k` — target cluster count,
    /// * `n_hint` — expected stream length (sets the phase length),
    /// * `space_cost` — PLP cost charged per opened center,
    /// * `seed` — RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `n_hint == 0`, or `space_cost` is not positive.
    pub fn new(k: usize, n_hint: usize, space_cost: f64, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(n_hint > 0, "n_hint must be positive");
        assert!(
            space_cost.is_finite() && space_cost > 0.0,
            "space cost must be positive"
        );
        let q_max = (3.0 * k as f64 * (1.0 + (n_hint as f64).ln())).ceil() as usize;
        OnlineKMeans {
            k,
            space_cost,
            q_max: q_max.max(1),
            f: 0.0,
            q: 0,
            seed_buffer: Vec::with_capacity(k + 1),
            index: NearestNeighborIndex::new(space_cost.sqrt().max(50.0)),
            rng: StdRng::seed_from_u64(seed),
            cost: PlacementCost::ZERO,
        }
    }

    /// Target cluster count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Overrides the phase length (openings between cost doublings). The
    /// original analysis uses `⌈3k(1+ln n)⌉`, which tolerates `O(k log n)`
    /// centers — appropriate for the k-means objective but generous under
    /// the PLP cost model; experiments may tighten it.
    ///
    /// # Panics
    ///
    /// Panics if `q_max == 0`.
    pub fn with_phase_length(mut self, q_max: usize) -> Self {
        assert!(q_max > 0, "phase length must be positive");
        self.q_max = q_max;
        self
    }

    /// Current notional facility cost `f_r`.
    pub fn current_f(&self) -> f64 {
        self.f
    }

    fn open(&mut self, p: Point) -> Decision {
        self.index.insert(p);
        self.cost.space += self.space_cost;
        self.q += 1;
        if self.q >= self.q_max {
            self.q = 0;
            self.f *= 2.0;
        }
        Decision::Opened { station: p }
    }
}

impl OnlinePlacement for OnlineKMeans {
    fn handle(&mut self, destination: Point) -> Decision {
        // Initialization: the first k+1 points all become centers; w* is
        // half the smallest pairwise squared distance among them and seeds
        // f_1 = w*/k.
        if self.seed_buffer.len() <= self.k {
            self.seed_buffer.push(destination);
            if self.seed_buffer.len() == self.k + 1 {
                let mut w_star = f64::INFINITY;
                for i in 0..self.seed_buffer.len() {
                    for j in (i + 1)..self.seed_buffer.len() {
                        let d2 = self.seed_buffer[i].distance_squared(self.seed_buffer[j]);
                        if d2 > 0.0 {
                            w_star = w_star.min(d2);
                        }
                    }
                }
                if !w_star.is_finite() {
                    // All duplicates; any positive value works.
                    w_star = 1.0;
                }
                self.f = w_star / (2.0 * self.k as f64);
            }
            return self.open(destination);
        }
        let (nearest, d) = self
            .index
            .nearest(destination)
            .expect("seed phase opened centers");
        let p = (d * d / self.f).min(1.0);
        if self.rng.gen_range(0.0..1.0) < p {
            self.open(destination)
        } else {
            self.cost.walking += d;
            Decision::Assigned {
                station: nearest,
                walking: d,
            }
        }
    }

    fn stations(&self) -> Vec<Point> {
        self.index.iter().collect()
    }

    fn cost(&self) -> PlacementCost {
        self.cost
    }

    fn name(&self) -> String {
        format!("Online k-means(k={})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_stream(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    #[test]
    fn first_k_plus_one_all_open() {
        let mut alg = OnlineKMeans::new(3, 100, 1000.0, 1);
        for (i, p) in uniform_stream(4, 1000.0, 2).into_iter().enumerate() {
            let d = alg.handle(p);
            assert!(d.opened(), "seed point {i} must open");
        }
        assert_eq!(alg.stations().len(), 4);
        assert!(alg.current_f() > 0.0);
    }

    #[test]
    fn duplicate_points_never_reopen_after_seed() {
        let mut alg = OnlineKMeans::new(2, 100, 1000.0, 3);
        let stream = uniform_stream(3, 1000.0, 4);
        for p in stream.iter().copied() {
            alg.handle(p);
        }
        for _ in 0..50 {
            let d = alg.handle(stream[0]);
            assert!(!d.opened());
        }
    }

    #[test]
    fn f_doubles_after_phase() {
        let mut alg = OnlineKMeans::new(1, 3, 100.0, 5);
        // q_max = ceil(3 * 1 * (1 + ln 3)) = ceil(6.29) = 7.
        assert_eq!(alg.q_max, 7);
        // Feed widely separated points so openings are certain.
        let mut expected_f = None;
        for i in 0..20 {
            let p = Point::new(i as f64 * 1e6, 0.0);
            alg.handle(p);
            if i == 1 {
                expected_f = Some(alg.current_f());
            }
        }
        // After enough openings at least one doubling must have happened.
        assert!(alg.current_f() > expected_f.unwrap());
    }

    #[test]
    fn opens_more_than_meyerson_on_uniform_stream() {
        // Table V/Fig 10: online k-means establishes the most stations.
        use crate::online::Meyerson;
        let stream = uniform_stream(300, 1000.0, 6);
        let mut totals_km = 0.0;
        let mut totals_me = 0.0;
        for seed in 0..10 {
            let mut km = OnlineKMeans::new(5, 300, 5000.0, seed);
            km.run(stream.iter().copied());
            totals_km += km.stations().len() as f64;
            let mut me = Meyerson::new(5000.0, seed);
            me.run(stream.iter().copied());
            totals_me += me.stations().len() as f64;
        }
        assert!(
            totals_km > totals_me,
            "k-means opened {totals_km}, Meyerson {totals_me}"
        );
    }

    #[test]
    fn cost_accounting_consistent() {
        let mut alg = OnlineKMeans::new(4, 200, 2500.0, 7);
        let mut expected = PlacementCost::ZERO;
        for p in uniform_stream(200, 800.0, 8) {
            match alg.handle(p) {
                Decision::Opened { .. } => expected.space += 2500.0,
                Decision::Assigned { walking, .. } => expected.walking += walking,
            }
        }
        assert_eq!(alg.cost(), expected);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = uniform_stream(150, 600.0, 9);
        let mut a = OnlineKMeans::new(3, 150, 1000.0, 11);
        let mut b = OnlineKMeans::new(3, 150, 1000.0, 11);
        assert_eq!(a.run(stream.iter().copied()), b.run(stream.iter().copied()));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        let _ = OnlineKMeans::new(0, 10, 1.0, 1);
    }

    #[test]
    fn all_duplicate_seed_points_handled() {
        let mut alg = OnlineKMeans::new(2, 50, 100.0, 12);
        let p = Point::new(5.0, 5.0);
        for _ in 0..10 {
            alg.handle(p);
        }
        // Seed phase opens 3 (k+1); afterwards d=0 so no more opens.
        assert_eq!(alg.stations().len(), 3);
    }
}
