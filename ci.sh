#!/usr/bin/env bash
# Local CI: formatting, lints, the full test suite, and a smoke experiment
# run. Mirrors what a hosted pipeline would run; fails fast on the first
# broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test --workspace -q

echo "==> smoke: one experiment binary end to end"
cargo run --release -p esharing-bench --bin exp_table4

echo "==> smoke: serving engine at 1 shard and 4 shards"
cargo run --release -p esharing-bench --bin exp_engine -- --smoke --shards 1,4

echo "CI OK"
