//! Table V — Comparison of # parking and cost (km) across algorithms on
//! the full study field.
//!
//! The paper reports, over the Mobike-derived workload:
//!
//! | algorithm             | # parking | walking | space | total |
//! |-----------------------|-----------|---------|-------|-------|
//! | Offline*              | 16.0      | 242.5   | 151.0 | 393.5 |
//! | Meyerson              | 32.9      | 297.4   | 311.9 | 609.3 |
//! | Online k-means        | 45.2      | 1326.7  | 427.6 | 1754.3|
//! | E-sharing (actual)    | 25.3      | 220.8   | 239.2 | 460.0 |
//! | E-sharing (predicted) | 26.0      | 234.1   | 253.5 | 487.6 |
//!
//! Shape to reproduce: offline* lowest total; E-sharing within ~20–25% of
//! it, below Meyerson (~25% saving) and far below online k-means (~74%);
//! E-sharing's *walking* component can dip below even the offline
//! solution (it chases live demand); predictions cost only a few percent
//! extra. The harness replays a 7-day historical window into the offline
//! pipeline and streams the following 3 test days.

use esharing_bench::{PerfEmitter, Table};
use esharing_dataset::{arrivals, CityConfig, SyntheticCity, Timestamp, TripGenerator};
use esharing_forecast::{Forecaster, Lstm, LstmConfig};
use esharing_geo::{Grid, Point};
use esharing_placement::offline::jms_greedy;
use esharing_placement::online::{
    DeviationConfig, DeviationPenalty, Meyerson, OnlineKMeans, OnlinePlacement,
};
use esharing_placement::{PlacementCost, PlpInstance};
use std::time::Instant;

const SPACE_COST: f64 = 10_000.0;

/// Builds landmarks from the historical window, scaling each cell's weight
/// by `volume_scale` so the offline plan targets the *service window's*
/// demand volume (Eq. 1 charges `f_i` per period, so a 7-day history must
/// be normalized to the 3-day test window before trading walking against
/// opening cost).
fn landmarks_for(history: &[Point], volume_scale: f64) -> Vec<Point> {
    let grid = Grid::new(100.0);
    let mut centroids = grid.weighted_centroids(history.iter().copied());
    centroids.sort_by_key(|c| std::cmp::Reverse(c.1));
    centroids.truncate(250);
    for c in centroids.iter_mut() {
        c.1 = ((c.1 as f64 * volume_scale).round() as u64).max(1);
    }
    let inst = PlpInstance::from_weighted_centroids(&centroids, SPACE_COST);
    jms_greedy(&inst).facility_points(&inst)
}

fn row(t: &mut Table, name: &str, stations: f64, cost: PlacementCost) {
    t.row(vec![
        name.into(),
        format!("{stations:.1}"),
        format!("{:.1}", cost.walking / 1_000.0),
        format!("{:.1}", cost.space / 1_000.0),
        format!("{:.1}", cost.total() / 1_000.0),
    ]);
}

fn main() {
    let mut perf = PerfEmitter::new("exp_table5");
    let t0 = Instant::now();
    let city = SyntheticCity::generate(&CityConfig {
        trips_per_day: 220.0,
        ..CityConfig::default()
    });
    let mut gen = TripGenerator::new(&city, 2017);
    let trips = gen.generate_days(0, 10);
    let split = Timestamp::from_day_hour(7, 0);
    let history: Vec<Point> = trips
        .iter()
        .filter(|t| t.start_time < split)
        .map(|t| t.end)
        .collect();
    let live: Vec<Point> = trips
        .iter()
        .filter(|t| t.start_time >= split)
        .map(|t| t.end)
        .collect();
    perf.record_duration("generate_workload", trips.len(), t0.elapsed());
    println!(
        "Table V — algorithm comparison: {} historical destinations guide the online\n\
         algorithms; {} live requests are streamed (f = {SPACE_COST} m; costs in km)\n",
        history.len(),
        live.len()
    );

    let mut t = Table::new(vec![
        "algorithm".into(),
        "# parking".into(),
        "walking".into(),
        "space".into(),
        "total".into(),
    ]);

    // Offline*: sees the future (the live stream) — near-optimal bound.
    let grid = Grid::new(100.0);
    let mut live_centroids = grid.weighted_centroids(live.iter().copied());
    live_centroids.sort_by_key(|c| std::cmp::Reverse(c.1));
    live_centroids.truncate(250);
    let live_inst = PlpInstance::from_weighted_centroids(&live_centroids, SPACE_COST);
    let t0 = Instant::now();
    let off = jms_greedy(&live_inst);
    perf.record_duration("offline_jms", live_centroids.len(), t0.elapsed());
    let off_cost = live_inst.cost_of(&off);
    row(
        &mut t,
        "Offline*",
        off.open_facilities().len() as f64,
        off_cost,
    );

    // Meyerson.
    let mut mey = Meyerson::new(SPACE_COST, 1);
    let t0 = Instant::now();
    let mey_cost = mey.run(live.iter().copied());
    perf.record_duration("meyerson", live.len(), t0.elapsed());
    row(&mut t, "Meyerson", mey.stations().len() as f64, mey_cost);

    // Online k-means.
    let t0 = Instant::now();
    let landmarks = landmarks_for(&history, 3.0 / 7.0);
    perf.record_duration("landmarks_offline_jms", history.len(), t0.elapsed());
    let k = landmarks.len();
    let mut km = OnlineKMeans::new(k.max(1), live.len(), SPACE_COST, 1).with_phase_length(k.max(1));
    let t0 = Instant::now();
    let km_cost = km.run(live.iter().copied());
    perf.record_duration("online_kmeans", live.len(), t0.elapsed());
    row(
        &mut t,
        "Online k-means",
        km.stations().len() as f64,
        km_cost,
    );

    // E-sharing with actual history.
    let mut es = DeviationPenalty::new(
        landmarks.clone(),
        history.clone(),
        DeviationConfig {
            space_cost: SPACE_COST,
            seed: 1,
            ..DeviationConfig::default()
        },
    );
    let t0 = Instant::now();
    let es_cost = es.run(live.iter().copied());
    perf.record_duration("esharing_actual", live.len(), t0.elapsed());
    row(
        &mut t,
        "E-sharing (actual)",
        es.stations().len() as f64,
        es_cost,
    );

    // E-sharing with predicted demand: forecast each heavy cell's hourly
    // series with a per-cell LSTM and build the landmark instance from the
    // predicted test-window volumes instead of the historical ones.
    let grid100 = Grid::new(100.0);
    let mut hist_centroids = grid100.weighted_centroids(history.iter().copied());
    hist_centroids.sort_by_key(|c| std::cmp::Reverse(c.1));
    hist_centroids.truncate(250);
    let hist_trips: Vec<_> = trips
        .iter()
        .filter(|t| t.start_time < split)
        .cloned()
        .collect();
    let t0 = Instant::now();
    let mut predicted_centroids = Vec::with_capacity(hist_centroids.len());
    for (idx, &(centroid, weight)) in hist_centroids.iter().enumerate() {
        // Per-cell LSTM for the 40 heaviest cells (the bulk of the mass);
        // lighter cells keep their window-normalized historical weight.
        let predicted_weight = if idx < 40 {
            let cell = grid100.cell_of(centroid);
            let series = arrivals::hourly_counts_for_cell(&hist_trips, &grid100, cell, 0, 7 * 24);
            let mut lstm = Lstm::new(LstmConfig {
                layers: 2,
                back: 12,
                hidden: 8,
                epochs: 20,
                ..LstmConfig::default()
            })
            .expect("valid config");
            match lstm.fit(&series) {
                Ok(()) => lstm
                    .forecast(&series, 24)
                    .map(|f| 3.0 * f.iter().map(|v| v.max(0.0)).sum::<f64>())
                    .unwrap_or(weight as f64 * 3.0 / 7.0),
                Err(_) => weight as f64 * 3.0 / 7.0,
            }
        } else {
            weight as f64 * 3.0 / 7.0
        };
        predicted_centroids.push((centroid, (predicted_weight.round() as u64).max(1)));
    }
    perf.record_duration("lstm_prediction", hist_centroids.len(), t0.elapsed());
    let pred_inst = PlpInstance::from_weighted_centroids(&predicted_centroids, SPACE_COST);
    let pred_landmarks = jms_greedy(&pred_inst).facility_points(&pred_inst);
    let mut esp = DeviationPenalty::new(
        pred_landmarks,
        history,
        DeviationConfig {
            space_cost: SPACE_COST,
            seed: 1,
            ..DeviationConfig::default()
        },
    );
    let t0 = Instant::now();
    let esp_cost = esp.run(live.iter().copied());
    perf.record_duration("esharing_predicted", live.len(), t0.elapsed());
    row(
        &mut t,
        "E-sharing (predicted)",
        esp.stations().len() as f64,
        esp_cost,
    );

    println!("{t}");
    println!(
        "gap to offline*: E-sharing(actual) {:.0}%, E-sharing(predicted) {:.0}% (paper: ~20% / ~25%)",
        100.0 * (es_cost.total() - off_cost.total()) / off_cost.total(),
        100.0 * (esp_cost.total() - off_cost.total()) / off_cost.total(),
    );
    println!(
        "saving vs Meyerson: {:.0}% (paper: 25%); vs online k-means: {:.0}% (paper: 74%)",
        100.0 * (mey_cost.total() - es_cost.total()) / mey_cost.total(),
        100.0 * (km_cost.total() - es_cost.total()) / km_cost.total(),
    );
    let avg_walk = es_cost.walking / live.len() as f64;
    println!("average walking distance per user: {avg_walk:.0} m (paper: ~180 m, a 2-minute walk)");
    match perf.write() {
        Ok(path) => eprintln!("perf trajectory written to {}", path.display()),
        Err(e) => eprintln!("perf trajectory emission failed: {e}"),
    }
}
