//! Exposition: registry snapshots → Prometheus text format and JSON.
//!
//! The workspace deliberately carries no JSON/HTTP dependency, so both
//! formats are emitted by hand, kept flat, and covered by shape tests.
//! Histograms are exposed Prometheus-`summary`-style (pre-computed
//! quantiles plus `_sum`/`_count`) because the log-bucketed
//! [`LatencyHistogram`](crate::LatencyHistogram) already bounds quantile
//! error at 12.5% and a few quantile series scrape far smaller than ~300
//! cumulative buckets per shard.

use crate::journal::{Event, EventKind, EventRecord};
use crate::registry::{MetricSample, RegistrySnapshot};
use crate::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Exposition type of a family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FamilyKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Quantile summary rendered from a latency histogram.
    Summary,
}

impl FamilyKind {
    fn prom(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Summary => "summary",
        }
    }
}

/// One rendered sample within a family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySample {
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SampleValue,
}

/// Value of a rendered sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SampleValue {
    /// Counter value.
    Int(u64),
    /// Gauge value.
    Float(f64),
    /// Histogram summary: observation count, nanosecond sum, and
    /// `(quantile, value_ns)` pairs.
    Summary {
        /// Observations recorded.
        count: u64,
        /// Saturating nanosecond sum.
        sum_ns: u64,
        /// Pre-computed quantiles, ascending.
        quantiles: Vec<(f64, u64)>,
    },
}

/// A named metric family with its samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFamily {
    /// Family name (shared by every sample).
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// Exposition type.
    pub kind: FamilyKind,
    /// Samples, in first-seen order.
    pub samples: Vec<FamilySample>,
}

/// The quantiles a histogram exposes as a summary.
const SUMMARY_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

fn summary_value(h: &LatencyHistogram) -> SampleValue {
    SampleValue::Summary {
        count: h.count(),
        sum_ns: h.sum_ns(),
        quantiles: SUMMARY_QUANTILES
            .iter()
            .map(|&q| (q, h.quantile_ns(q)))
            .collect(),
    }
}

fn push_sample<T: Clone>(
    families: &mut Vec<MetricFamily>,
    kind: FamilyKind,
    sample: &MetricSample<T>,
    value: SampleValue,
) {
    let fam = match families
        .iter_mut()
        .find(|f| f.name == sample.name && f.kind == kind)
    {
        Some(f) => f,
        None => {
            families.push(MetricFamily {
                name: sample.name.clone(),
                help: sample.help.clone(),
                kind,
                samples: Vec::new(),
            });
            families.last_mut().expect("just pushed")
        }
    };
    fam.samples.push(FamilySample {
        labels: sample.labels.clone(),
        value,
    });
}

/// Groups the samples of one or more registry snapshots into named
/// families, preserving first-seen order. Pass the fleet-merged snapshot
/// first and shard-labelled snapshots after it so fleet totals lead each
/// family.
pub fn snapshot_families(snaps: &[&RegistrySnapshot]) -> Vec<MetricFamily> {
    let mut families = Vec::new();
    for snap in snaps {
        for s in &snap.counters {
            push_sample(
                &mut families,
                FamilyKind::Counter,
                s,
                SampleValue::Int(s.value),
            );
        }
        for s in &snap.gauges {
            push_sample(
                &mut families,
                FamilyKind::Gauge,
                s,
                SampleValue::Float(s.value),
            );
        }
        for s in &snap.histograms {
            push_sample(
                &mut families,
                FamilyKind::Summary,
                s,
                summary_value(&s.value),
            );
        }
    }
    families
}

fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", prom_escape(&v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else {
        format!("{v}")
    }
}

/// Renders families in the Prometheus text exposition format (v0.0.4).
pub fn render_prometheus(families: &[MetricFamily]) -> String {
    let mut out = String::new();
    render_prometheus_into(&mut out, families);
    out
}

/// Appends the Prometheus text rendering of `families` to `out`. Lets a
/// scrape loop reuse one buffer across requests instead of reallocating
/// the full exposition every time; callers clear the buffer themselves.
pub fn render_prometheus_into(out: &mut String, families: &[MetricFamily]) {
    for fam in families {
        out.push_str(&format!(
            "# HELP {} {}\n# TYPE {} {}\n",
            fam.name,
            fam.help.replace('\n', " "),
            fam.name,
            fam.kind.prom()
        ));
        for s in &fam.samples {
            match &s.value {
                SampleValue::Int(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        fam.name,
                        prom_labels(&s.labels, None)
                    ));
                }
                SampleValue::Float(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        fam.name,
                        prom_labels(&s.labels, None),
                        prom_f64(*v)
                    ));
                }
                SampleValue::Summary {
                    count,
                    sum_ns,
                    quantiles,
                } => {
                    for &(q, v) in quantiles {
                        out.push_str(&format!(
                            "{}{} {v}\n",
                            fam.name,
                            prom_labels(&s.labels, Some(("quantile", format!("{q}"))))
                        ));
                    }
                    let plain = prom_labels(&s.labels, None);
                    out.push_str(&format!("{}_sum{plain} {sum_ns}\n", fam.name));
                    out.push_str(&format!("{}_count{plain} {count}\n", fam.name));
                }
            }
        }
    }
}

/// Escapes a string into a JSON literal (including quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite f64 as a JSON number (`null` for NaN/±inf).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
        .collect();
    format!("{{{}}}", pairs.join(", "))
}

/// Renders families as a flat JSON document:
/// `{"families": [{"name", "kind", "help", "samples": [...]}]}`.
pub fn render_json(families: &[MetricFamily]) -> String {
    let mut out = String::from("{\n  \"families\": [\n");
    for (i, fam) in families.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": {}, \"kind\": {}, \"help\": {}, \"samples\": [\n",
            json_string(&fam.name),
            json_string(fam.kind.prom()),
            json_string(&fam.help)
        ));
        for (j, s) in fam.samples.iter().enumerate() {
            let body = match &s.value {
                SampleValue::Int(v) => format!("\"value\": {v}"),
                SampleValue::Float(v) => format!("\"value\": {}", json_f64(*v)),
                SampleValue::Summary {
                    count,
                    sum_ns,
                    quantiles,
                } => {
                    let qs: Vec<String> = quantiles
                        .iter()
                        .map(|(q, v)| format!("{}: {v}", json_string(&format!("{q}"))))
                        .collect();
                    format!(
                        "\"count\": {count}, \"sum_ns\": {sum_ns}, \"quantiles\": {{{}}}",
                        qs.join(", ")
                    )
                }
            };
            out.push_str(&format!(
                "      {{ \"labels\": {}, {body} }}{}\n",
                json_labels(&s.labels),
                if j + 1 < fam.samples.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ] }}{}\n",
            if i + 1 < families.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn event_kind_json(kind: &EventKind) -> (&'static str, String) {
    match kind {
        EventKind::ParkingOpened { x, y } => (
            "parking_opened",
            format!("\"x\": {}, \"y\": {}", json_f64(*x), json_f64(*y)),
        ),
        EventKind::EpochCrossed {
            epoch,
            decision_cost,
        } => (
            "epoch_crossed",
            format!(
                "\"epoch\": {epoch}, \"decision_cost\": {}",
                json_f64(*decision_cost)
            ),
        ),
        EventKind::KsTest {
            d_statistic,
            similarity_percent,
            penalty_before,
            penalty_after,
        } => (
            "ks_test",
            format!(
                "\"d_statistic\": {}, \"similarity_percent\": {}, \"penalty_before\": {penalty_before}, \"penalty_after\": {penalty_after}",
                json_f64(*d_statistic),
                json_f64(*similarity_percent)
            ),
        ),
        EventKind::KsVerdictCommitted {
            requests,
            d_statistic,
        } => (
            "ks_verdict_committed",
            format!(
                "\"requests\": {requests}, \"d_statistic\": {}",
                json_f64(*d_statistic)
            ),
        ),
        EventKind::ShardShed { queue_depth } => {
            ("shard_shed", format!("\"queue_depth\": {queue_depth}"))
        }
        EventKind::MaintenanceDispatch { period, total_cost } => (
            "maintenance_dispatch",
            format!(
                "\"period\": {period}, \"total_cost\": {}",
                json_f64(*total_cost)
            ),
        ),
        EventKind::RequestAdmitted { x, y } => (
            "request_admitted",
            format!("\"x\": {}, \"y\": {}", json_f64(*x), json_f64(*y)),
        ),
        EventKind::ShardSplit { parent, lo, hi } => (
            "shard_split",
            format!("\"parent\": {parent}, \"lo\": {lo}, \"hi\": {hi}"),
        ),
        EventKind::ShardMerged { a, b, into } => {
            ("shard_merged", format!("\"a\": {a}, \"b\": {b}, \"into\": {into}"))
        }
        EventKind::ShardRecovered { shard, replayed } => (
            "shard_recovered",
            format!("\"shard\": {shard}, \"replayed\": {replayed}"),
        ),
        EventKind::EpochSwapped {
            shard,
            epoch,
            landmarks_before,
            landmarks_after,
            warm,
        } => (
            "epoch_swapped",
            format!(
                "\"shard\": {shard}, \"epoch\": {epoch}, \"landmarks_before\": {landmarks_before}, \"landmarks_after\": {landmarks_after}, \"warm\": {warm}"
            ),
        ),
        EventKind::SloBreach {
            rule,
            value,
            threshold,
            burn_fast,
            burn_slow,
        } => (
            "slo_breach",
            format!(
                "\"rule\": {rule}, \"value\": {}, \"threshold\": {}, \"burn_fast\": {}, \"burn_slow\": {}",
                json_f64(*value),
                json_f64(*threshold),
                json_f64(*burn_fast),
                json_f64(*burn_slow)
            ),
        ),
        EventKind::SloRecovered { rule, burn_fast } => (
            "slo_recovered",
            format!("\"rule\": {rule}, \"burn_fast\": {}", json_f64(*burn_fast)),
        ),
    }
}

/// Renders one journal entry as a JSON object
/// (`{"shard", "seq", "t_ns", "kind", ...}`).
pub fn event_json(shard: Option<usize>, ev: &Event) -> String {
    let shard = match shard {
        Some(s) => s.to_string(),
        None => "null".into(),
    };
    let (kind, fields) = event_kind_json(&ev.kind);
    format!(
        "{{ \"shard\": {shard}, \"seq\": {}, \"t_ns\": {}, \"kind\": {}, {fields} }}",
        ev.seq,
        ev.t_ns,
        json_string(kind)
    )
}

/// Renders a merged event log as JSON:
/// `{"dropped": N, "events": [{"shard", "seq", "t_ns", "kind", ...}]}`.
pub fn render_events_json(records: &[EventRecord], dropped: u64) -> String {
    let mut out = format!("{{\n  \"dropped\": {dropped},\n  \"events\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            event_json(r.shard, &r.event),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MergeMode, Registry, RegistrySnapshot};

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        let c = r.counter("esharing_decisions_total", "Decisions served");
        r.add(c, 42);
        let g = r.gauge("esharing_ks_d_statistic", "Peacock D", MergeMode::PerShard);
        r.set(g, 0.125);
        let h = r.histogram("esharing_decision_latency_ns", "Decision latency");
        r.observe_ns(h, 1_000);
        r.observe_ns(h, 2_000);
        r
    }

    #[test]
    fn families_group_across_snapshots() {
        let r = sample_registry();
        let fleet = r.snapshot();
        let shard = r.snapshot().with_label("shard", "0");
        let fams = snapshot_families(&[&fleet, &shard]);
        assert_eq!(fams.len(), 3);
        let decisions = &fams[0];
        assert_eq!(decisions.name, "esharing_decisions_total");
        assert_eq!(decisions.samples.len(), 2);
        assert_eq!(decisions.samples[0].labels.len(), 0);
        assert_eq!(decisions.samples[1].labels[0].1, "0");
    }

    #[test]
    fn prometheus_text_shape() {
        let fams = snapshot_families(&[&sample_registry().snapshot().with_label("shard", "3")]);
        let text = render_prometheus(&fams);
        assert!(text.contains("# TYPE esharing_decisions_total counter"));
        assert!(text.contains("esharing_decisions_total{shard=\"3\"} 42"));
        assert!(text.contains("# TYPE esharing_ks_d_statistic gauge"));
        assert!(text.contains("esharing_ks_d_statistic{shard=\"3\"} 0.125"));
        assert!(text.contains("# TYPE esharing_decision_latency_ns summary"));
        assert!(text.contains("{shard=\"3\",quantile=\"0.5\"}"));
        assert!(text.contains("esharing_decision_latency_ns_sum{shard=\"3\"} 3000"));
        assert!(text.contains("esharing_decision_latency_ns_count{shard=\"3\"} 2"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad exposition line: {line}");
        }
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let mut r = Registry::new();
        r.counter_with("c", "h", &[("path", "a\"b\\c\nd")]);
        let text = render_prometheus(&snapshot_families(&[&r.snapshot()]));
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn json_shape() {
        let fams = snapshot_families(&[&sample_registry().snapshot()]);
        let json = render_json(&fams);
        assert!(json.contains("\"name\": \"esharing_decisions_total\""));
        assert!(json.contains("\"kind\": \"counter\""));
        assert!(json.contains("\"value\": 42"));
        assert!(json.contains("\"kind\": \"summary\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"sum_ns\": 3000"));
        assert!(json.contains("\"0.999\""));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn empty_snapshot_renders_empty_documents() {
        let fams = snapshot_families(&[&RegistrySnapshot::default()]);
        assert!(fams.is_empty());
        assert_eq!(render_prometheus(&fams), "");
        assert!(render_json(&fams).contains("\"families\": [\n  ]"));
    }

    #[test]
    fn events_json_covers_every_kind() {
        let kinds = [
            EventKind::ParkingOpened { x: 1.0, y: 2.0 },
            EventKind::EpochCrossed {
                epoch: 3,
                decision_cost: 4.0,
            },
            EventKind::KsTest {
                d_statistic: 0.1,
                similarity_percent: 90.0,
                penalty_before: 2,
                penalty_after: 3,
            },
            EventKind::ShardShed { queue_depth: 7 },
            EventKind::MaintenanceDispatch {
                period: 1,
                total_cost: 12.5,
            },
            EventKind::SloBreach {
                rule: 0,
                value: 250_000.0,
                threshold: 200_000.0,
                burn_fast: 1.25,
                burn_slow: 1.1,
            },
            EventKind::SloRecovered {
                rule: 0,
                burn_fast: 0.4,
            },
        ];
        let records: Vec<EventRecord> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| EventRecord {
                shard: if i == 3 { None } else { Some(i) },
                event: Event {
                    seq: i as u64,
                    t_ns: i as u64 * 10,
                    kind,
                },
            })
            .collect();
        let json = render_events_json(&records, 5);
        assert!(json.contains("\"dropped\": 5"));
        for kind in [
            "parking_opened",
            "epoch_crossed",
            "ks_test",
            "shard_shed",
            "maintenance_dispatch",
            "slo_breach",
            "slo_recovered",
        ] {
            assert!(json.contains(kind), "missing {kind}: {json}");
        }
        assert!(json.contains("\"shard\": null"));
        assert!(json.contains("\"d_statistic\": 0.1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
