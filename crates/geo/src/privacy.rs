//! Location obfuscation with geo-indistinguishability.
//!
//! The paper's system model (§II-B) notes that "for privacy-preserving,
//! additional security features can be introduced such as
//! hashing/anonymizing the user information or obfuscation with
//! location-wise differential privacy". This module implements the
//! standard mechanism for the latter: the **planar Laplace** distribution
//! of Andrés et al., which guarantees ε-geo-indistinguishability — the
//! probability of reporting any obfuscated location changes by at most
//! `e^{ε·d}` when the true location moves by distance `d`.
//!
//! The noise vector has a uniform angle and a radius drawn from
//! `Gamma(2, ε)` (density `ε² r e^{−εr}`), giving a mean displacement of
//! `2/ε` meters.

use crate::Point;
use rand::Rng;

/// The planar Laplace mechanism with privacy parameter `ε` (per meter).
///
/// Smaller `ε` means stronger privacy and larger expected displacement
/// (`2/ε` meters). For bike-sharing destinations, `ε ≈ 0.01` (mean 200 m
/// of noise) hides the exact doorstep while keeping the parking
/// assignment serviceable — see the `exp_privacy` experiment.
///
/// # Examples
///
/// ```
/// use esharing_geo::{privacy::PlanarLaplace, Point};
/// use rand::SeedableRng;
///
/// let mechanism = PlanarLaplace::new(0.02).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let reported = mechanism.obfuscate(Point::new(100.0, 100.0), &mut rng);
/// assert!(reported.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanarLaplace {
    epsilon: f64,
}

impl PlanarLaplace {
    /// Creates the mechanism.
    ///
    /// # Errors
    ///
    /// Returns `None` when `epsilon` is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Option<Self> {
        (epsilon.is_finite() && epsilon > 0.0).then_some(PlanarLaplace { epsilon })
    }

    /// The privacy parameter `ε` (per meter).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Expected displacement of the reported location, `2/ε` meters.
    pub fn mean_displacement(&self) -> f64 {
        2.0 / self.epsilon
    }

    /// Draws one noise radius from `Gamma(2, ε)` — the sum of two
    /// `Exp(ε)` variates.
    fn sample_radius<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let e1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let e2: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -(e1.ln() + e2.ln()) / self.epsilon
    }

    /// Reports an obfuscated version of `location`.
    pub fn obfuscate<R: Rng + ?Sized>(&self, location: Point, rng: &mut R) -> Point {
        let r = self.sample_radius(rng);
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        location + Point::new(r * theta.cos(), r * theta.sin())
    }

    /// Obfuscates a whole batch.
    pub fn obfuscate_all<R: Rng + ?Sized>(&self, locations: &[Point], rng: &mut R) -> Vec<Point> {
        locations.iter().map(|&p| self.obfuscate(p, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_epsilon() {
        assert!(PlanarLaplace::new(0.0).is_none());
        assert!(PlanarLaplace::new(-1.0).is_none());
        assert!(PlanarLaplace::new(f64::NAN).is_none());
        assert!(PlanarLaplace::new(f64::INFINITY).is_none());
        assert!(PlanarLaplace::new(0.01).is_some());
    }

    #[test]
    fn mean_displacement_is_two_over_epsilon() {
        let mech = PlanarLaplace::new(0.02).unwrap();
        assert_eq!(mech.mean_displacement(), 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let origin = Point::ORIGIN;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| mech.obfuscate(origin, &mut rng).norm())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 100.0).abs() < 3.0,
            "empirical mean displacement {mean}"
        );
    }

    #[test]
    fn stronger_privacy_means_more_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut spread = |eps: f64| -> f64 {
            let mech = PlanarLaplace::new(eps).unwrap();
            (0..4_000)
                .map(|_| mech.obfuscate(Point::ORIGIN, &mut rng).norm())
                .sum::<f64>()
                / 4_000.0
        };
        let weak = spread(0.1);
        let strong = spread(0.01);
        assert!(strong > 5.0 * weak, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn noise_is_isotropic() {
        let mech = PlanarLaplace::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean =
            Point::centroid((0..n).map(|_| mech.obfuscate(Point::new(500.0, 500.0), &mut rng)))
                .unwrap();
        // No directional bias: the mean stays near the true point.
        assert!(mean.distance(Point::new(500.0, 500.0)) < 2.0, "mean {mean}");
    }

    #[test]
    fn radius_distribution_matches_gamma2() {
        // For Gamma(2, eps): P(R <= 2/eps) = 1 - 3 e^{-2} ~ 0.594.
        let mech = PlanarLaplace::new(0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 30_000;
        let below = (0..n)
            .filter(|_| mech.obfuscate(Point::ORIGIN, &mut rng).norm() <= 100.0)
            .count();
        let frac = below as f64 / n as f64;
        assert!(
            (frac - 0.594).abs() < 0.02,
            "P(R <= mean) = {frac}, expected ~0.594"
        );
    }

    #[test]
    fn batch_obfuscation_preserves_length() {
        let mech = PlanarLaplace::new(0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pts = vec![Point::ORIGIN; 10];
        let out = mech.obfuscate_all(&pts, &mut rng);
        assert_eq!(out.len(), 10);
        // Virtually surely all distinct after noising.
        assert!(out.windows(2).any(|w| w[0] != w[1]));
    }
}
