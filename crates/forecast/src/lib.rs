//! # esharing-forecast
//!
//! The prediction engine of the E-Sharing reproduction.
//!
//! §V-A of the paper forecasts per-grid trip requests 1–6 hours ahead and
//! compares a stacked **LSTM** (the system's engine) against **Moving
//! Average** and **ARIMA** statistical baselines (Table II). The paper's
//! LSTM ran on TensorFlow/P100; this crate implements the same model from
//! scratch on the CPU:
//!
//! * [`Lstm`] — stacked LSTM layers + linear head, full backpropagation
//!   through time, Adam, gradient clipping, min-max input scaling,
//! * [`MovingAverage`] — window-mean baseline (`wz` in Table II),
//! * [`Arima`] — AR(p) fit by least squares on a `d`-times differenced
//!   series (`p`, `d` in Table II),
//! * [`HoltWinters`] / [`SeasonalNaive`] — seasonal statistical baselines
//!   extending the comparison (hourly demand has a strong period-24
//!   component),
//! * [`Forecaster`] — the object-safe trait the placement pipeline consumes,
//! * [`eval`] — the Table II grid-search harness.
//!
//! # Examples
//!
//! ```
//! use esharing_forecast::{Forecaster, MovingAverage};
//!
//! let series: Vec<f64> = (0..48).map(|h| 10.0 + (h % 24) as f64).collect();
//! let mut ma = MovingAverage::new(3).unwrap();
//! ma.fit(&series).unwrap();
//! let forecast = ma.forecast(&series, 6).unwrap();
//! assert_eq!(forecast.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arima;
mod ensemble;
mod error;
pub mod eval;
mod holt_winters;
mod lstm;
mod moving_average;
pub mod series;

pub use arima::Arima;
pub use ensemble::Ensemble;
pub use error::ForecastError;
pub use holt_winters::{HoltWinters, SeasonalNaive};
pub use lstm::{Lstm, LstmConfig};
pub use moving_average::MovingAverage;

/// A univariate time-series forecaster.
///
/// Implementations are fitted on a training series and then produce
/// `horizon`-step-ahead forecasts from the tail of an arbitrary history.
/// The trait is object-safe so the pipeline can switch engines at runtime
/// ("It can be integrated with any prediction engine" — §I).
pub trait Forecaster {
    /// Fits the model to a training series.
    ///
    /// # Errors
    ///
    /// Returns an error if the series is too short for the model's
    /// structure or the fit is numerically degenerate.
    fn fit(&mut self, series: &[f64]) -> Result<(), ForecastError>;

    /// Incrementally refits the model on an updated training series,
    /// reusing whatever fitted state makes a warm continuation cheaper
    /// than a cold [`fit`]. The default implementation delegates to
    /// [`fit`]; stateful engines (e.g. [`Lstm`]) override it to continue
    /// training from their current weights at a fraction of the cold
    /// epoch budget — the retrain mode the epochal re-optimization loop
    /// runs on the trailing window.
    ///
    /// # Errors
    ///
    /// Same contract as [`fit`].
    ///
    /// [`fit`]: Forecaster::fit
    fn fit_incremental(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        self.fit(series)
    }

    /// Forecasts the `horizon` values following `history`.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::NotFitted`] if called before [`fit`],
    /// or [`ForecastError::SeriesTooShort`] if `history` is shorter than
    /// the model's lookback.
    ///
    /// [`fit`]: Forecaster::fit
    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError>;

    /// A short human-readable description (used in experiment tables).
    fn name(&self) -> String;
}
