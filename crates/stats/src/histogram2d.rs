//! Two-dimensional histograms and ASCII heatmaps.
//!
//! Fig. 11 of the paper visualizes the spatial distribution of low-energy
//! e-bikes as a heatmap before and after incentivizing. [`Histogram2d`]
//! bins weighted points over a bounding box and renders a terminal
//! heatmap so the experiment binaries can show the same picture.

use esharing_geo::{BBox, Point};
use std::fmt;

/// A fixed-resolution 2-D histogram over a bounding box.
///
/// # Examples
///
/// ```
/// use esharing_geo::{BBox, Point};
/// use esharing_stats::Histogram2d;
///
/// let mut hist = Histogram2d::new(BBox::square(100.0), 4, 4);
/// hist.add(Point::new(10.0, 10.0), 3.0);
/// hist.add(Point::new(90.0, 90.0), 1.0);
/// assert_eq!(hist.total(), 4.0);
/// assert_eq!(hist.count(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram2d {
    bbox: BBox,
    cols: usize,
    rows: usize,
    counts: Vec<f64>,
}

impl Histogram2d {
    /// Creates an empty histogram with `cols × rows` bins over `bbox`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the box is degenerate.
    pub fn new(bbox: BBox, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "histogram needs positive dimensions");
        assert!(
            bbox.width() > 0.0 && bbox.height() > 0.0,
            "bounding box must have positive area"
        );
        Histogram2d {
            bbox,
            cols,
            rows,
            counts: vec![0.0; cols * rows],
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn bin_of(&self, p: Point) -> Option<(usize, usize)> {
        if !self.bbox.contains(p) {
            return None;
        }
        let col = (((p.x - self.bbox.min().x) / self.bbox.width()) * self.cols as f64) as usize;
        let row = (((p.y - self.bbox.min().y) / self.bbox.height()) * self.rows as f64) as usize;
        Some((col.min(self.cols - 1), row.min(self.rows - 1)))
    }

    /// Adds `weight` at `p`; points outside the box are ignored and
    /// reported by the return value.
    pub fn add(&mut self, p: Point, weight: f64) -> bool {
        debug_assert!(weight.is_finite() && weight >= 0.0);
        match self.bin_of(p) {
            Some((col, row)) => {
                self.counts[row * self.cols + col] += weight;
                true
            }
            None => false,
        }
    }

    /// Adds a batch of unit-weight points, returning how many fell inside.
    pub fn extend<I: IntoIterator<Item = Point>>(&mut self, points: I) -> usize {
        points.into_iter().filter(|&p| self.add(p, 1.0)).count()
    }

    /// The weight in bin `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn count(&self, col: usize, row: usize) -> f64 {
        assert!(col < self.cols && row < self.rows, "bin out of range");
        self.counts[row * self.cols + col]
    }

    /// Total weight captured.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The maximum bin weight.
    pub fn max_count(&self) -> f64 {
        self.counts.iter().copied().fold(0.0, f64::max)
    }

    /// Renders an ASCII heatmap (rows printed north-to-south), using a
    /// 10-step density ramp normalized to the maximum bin.
    pub fn render(&self) -> String {
        const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = self.max_count();
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                let c = if max == 0.0 {
                    ' '
                } else {
                    let norm = self.count(col, row) / max;
                    RAMP[((norm * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Histogram2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_totals() {
        let mut h = Histogram2d::new(BBox::square(100.0), 10, 10);
        assert!(h.add(Point::new(5.0, 5.0), 2.0));
        assert!(h.add(Point::new(95.0, 95.0), 1.0));
        assert!(!h.add(Point::new(150.0, 5.0), 1.0)); // outside
        assert_eq!(h.count(0, 0), 2.0);
        assert_eq!(h.count(9, 9), 1.0);
        assert_eq!(h.total(), 3.0);
        assert_eq!(h.max_count(), 2.0);
    }

    #[test]
    fn boundary_points_clamp_into_last_bin() {
        let mut h = Histogram2d::new(BBox::square(100.0), 4, 4);
        assert!(h.add(Point::new(100.0, 100.0), 1.0));
        assert_eq!(h.count(3, 3), 1.0);
    }

    #[test]
    fn extend_counts_inside_only() {
        let mut h = Histogram2d::new(BBox::square(10.0), 2, 2);
        let inside = h.extend(vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(20.0, 0.0),
        ]);
        assert_eq!(inside, 2);
        assert_eq!(h.total(), 2.0);
    }

    #[test]
    fn render_shape_and_symbols() {
        let mut h = Histogram2d::new(BBox::square(100.0), 5, 3);
        h.add(Point::new(5.0, 95.0), 10.0); // top-left in display
        let art = h.render();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 5));
        // The hottest bin renders '@' and sits on the first (north) row.
        assert_eq!(lines[0].chars().next().unwrap(), '@');
        // Empty histogram renders blanks.
        let empty = Histogram2d::new(BBox::square(10.0), 3, 3);
        assert!(empty.render().chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn zero_dims_panic() {
        let _ = Histogram2d::new(BBox::square(10.0), 0, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn count_out_of_range_panics() {
        let h = Histogram2d::new(BBox::square(10.0), 2, 2);
        let _ = h.count(2, 0);
    }
}
