//! Forecast evaluation harness (Table II).
//!
//! The paper evaluates each model by its RMSE when predicting "trip
//! requests in the next 1 to 6 hours" on held-out test days. This module
//! provides the rolling-origin evaluation that produces one RMSE per model
//! configuration and the grid-search drivers for the exact configurations
//! in Table II.

use crate::{Arima, ForecastError, Forecaster, Lstm, LstmConfig, MovingAverage};
use esharing_stats::metrics::rmse;
use esharing_stats::parallel;

/// RMSE of `model` on `test`, forecasting `horizon` steps ahead from each
/// rolling origin. The model must already be fitted on training data; the
/// history passed at each origin is `train ++ test[..origin]`.
///
/// # Errors
///
/// Propagates forecast errors; returns [`ForecastError::SeriesTooShort`]
/// when the test segment is shorter than `horizon`.
pub fn rolling_rmse(
    model: &dyn Forecaster,
    train: &[f64],
    test: &[f64],
    horizon: usize,
) -> Result<f64, ForecastError> {
    if test.len() < horizon || horizon == 0 {
        return Err(ForecastError::SeriesTooShort {
            needed: horizon.max(1),
            got: test.len(),
        });
    }
    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    let mut history: Vec<f64> = train.to_vec();
    let mut origin = 0usize;
    while origin + horizon <= test.len() {
        let f = model.forecast(&history, horizon)?;
        predicted.extend_from_slice(&f);
        actual.extend_from_slice(&test[origin..origin + horizon]);
        history.extend_from_slice(&test[origin..origin + horizon]);
        origin += horizon;
    }
    Ok(rmse(&predicted, &actual))
}

/// One row of the Table II comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Model description (e.g. `LSTM(2-layer, back=12)`).
    pub model: String,
    /// Rolling RMSE over the test segment.
    pub rmse: f64,
}

/// Evaluates every LSTM configuration of Table II: `layers ∈ {1,2,3}` ×
/// `back ∈ {24,12,6,3,1}`.
///
/// `base` supplies the non-grid hyperparameters (hidden width, epochs,
/// learning rate, seed).
///
/// # Errors
///
/// Propagates fit/forecast failures from any configuration.
pub fn lstm_grid(
    train: &[f64],
    test: &[f64],
    horizon: usize,
    base: &LstmConfig,
) -> Result<Vec<EvalResult>, ForecastError> {
    let mut configs = Vec::new();
    for layers in [1usize, 2, 3] {
        for back in [24usize, 12, 6, 3, 1] {
            configs.push((layers, back));
        }
    }
    // Each configuration trains an independent model from its own seed, so
    // the fifteen fits fan out across worker threads; results come back in
    // grid order, identical to the sequential sweep.
    let results = parallel::par_map(
        configs.len(),
        1,
        |idx| -> Result<EvalResult, ForecastError> {
            let (layers, back) = configs[idx];
            let cfg = LstmConfig {
                layers,
                back,
                ..base.clone()
            };
            let mut model = Lstm::new(cfg)?;
            model.fit(train)?;
            Ok(EvalResult {
                model: model.name(),
                rmse: rolling_rmse(&model, train, test, horizon)?,
            })
        },
    );
    results.into_iter().collect()
}

/// Evaluates every MA configuration of Table II: `wz ∈ {1..5}`.
///
/// # Errors
///
/// Propagates fit/forecast failures.
pub fn ma_grid(
    train: &[f64],
    test: &[f64],
    horizon: usize,
) -> Result<Vec<EvalResult>, ForecastError> {
    let mut out = Vec::new();
    for wz in 1usize..=5 {
        let mut model = MovingAverage::new(wz)?;
        model.fit(train)?;
        out.push(EvalResult {
            model: model.name(),
            rmse: rolling_rmse(&model, train, test, horizon)?,
        });
    }
    Ok(out)
}

/// Evaluates every ARIMA configuration of Table II: `p ∈ {2,4,6,8,10}` ×
/// `d ∈ {0,1,2}`.
///
/// # Errors
///
/// Propagates fit/forecast failures.
pub fn arima_grid(
    train: &[f64],
    test: &[f64],
    horizon: usize,
) -> Result<Vec<EvalResult>, ForecastError> {
    let mut configs = Vec::new();
    for d in [0usize, 1, 2] {
        for p in [2usize, 4, 6, 8, 10] {
            configs.push((p, d));
        }
    }
    let results = parallel::par_map(
        configs.len(),
        1,
        |idx| -> Result<EvalResult, ForecastError> {
            let (p, d) = configs[idx];
            let mut model = Arima::new(p, d)?;
            model.fit(train)?;
            Ok(EvalResult {
                model: model.name(),
                rmse: rolling_rmse(&model, train, test, horizon)?,
            })
        },
    );
    results.into_iter().collect()
}

/// The best (lowest-RMSE) result of a grid.
pub fn best(results: &[EvalResult]) -> Option<&EvalResult> {
    results
        .iter()
        .min_by(|a, b| a.rmse.partial_cmp(&b.rmse).expect("finite RMSE"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                20.0 + 10.0 * (t as f64 * std::f64::consts::TAU / 24.0).sin()
                    + 3.0 * (t as f64 * std::f64::consts::TAU / 12.0).cos()
            })
            .collect()
    }

    #[test]
    fn rolling_rmse_perfect_model_is_zero() {
        // MA(1) on a constant series predicts perfectly.
        let series = vec![4.0; 60];
        let mut ma = MovingAverage::new(1).unwrap();
        ma.fit(&series[..40]).unwrap();
        let r = rolling_rmse(&ma, &series[..40], &series[40..], 6).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn rolling_rmse_rejects_bad_horizon() {
        let series = vec![4.0; 20];
        let mut ma = MovingAverage::new(1).unwrap();
        ma.fit(&series).unwrap();
        assert!(rolling_rmse(&ma, &series, &[1.0, 2.0], 0).is_err());
        assert!(rolling_rmse(&ma, &series, &[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn ma_grid_covers_five_windows() {
        let series = periodic_series(120);
        let (train, test) = series.split_at(96);
        let results = ma_grid(train, test, 6).unwrap();
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|r| r.rmse.is_finite()));
        // The paper observes RMSE increases with window size (wz=1 best).
        assert!(results[0].rmse <= results[4].rmse);
    }

    #[test]
    fn arima_grid_covers_fifteen_configs() {
        let series = periodic_series(160);
        let (train, test) = series.split_at(130);
        let results = arima_grid(train, test, 6).unwrap();
        assert_eq!(results.len(), 15);
        assert!(results.iter().all(|r| r.rmse.is_finite()));
    }

    #[test]
    fn best_picks_minimum() {
        let results = vec![
            EvalResult {
                model: "a".into(),
                rmse: 3.0,
            },
            EvalResult {
                model: "b".into(),
                rmse: 1.0,
            },
            EvalResult {
                model: "c".into(),
                rmse: 2.0,
            },
        ];
        assert_eq!(best(&results).unwrap().model, "b");
        assert!(best(&[]).is_none());
    }

    #[test]
    fn arima_beats_naive_on_periodic_data() {
        let series = periodic_series(200);
        let (train, test) = series.split_at(160);
        let mut good = Arima::new(10, 0).unwrap();
        good.fit(train).unwrap();
        let arima_rmse = rolling_rmse(&good, train, test, 6).unwrap();
        let mut naive = MovingAverage::new(5).unwrap();
        naive.fit(train).unwrap();
        let ma_rmse = rolling_rmse(&naive, train, test, 6).unwrap();
        assert!(
            arima_rmse < ma_rmse,
            "ARIMA {arima_rmse} should beat MA {ma_rmse} on periodic data"
        );
    }
}
