//! Demand-shift scenario — the paper's motivating online case.
//!
//! "Events such as concerts or sports games might lead to short-time
//! demand surge at previously unexpected locations" (§III-C). This example
//! bootstraps the system on normal traffic, then injects a surge in a
//! corner of the field no landmark covers, and shows the KS test detecting
//! the shift, the penalty switching to Type I, and new stations following
//! the crowd — then traffic returning to normal.
//!
//! Run with: `cargo run --release --example demand_shift`

use e_sharing::geo::Point;
use e_sharing::placement::offline::jms_greedy;
use e_sharing::placement::online::{DeviationConfig, DeviationPenalty, OnlinePlacement};
use e_sharing::placement::PlpInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn uniform(rng: &mut StdRng, n: usize, min: Point, side: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                min.x + rng.gen_range(0.0..side),
                min.y + rng.gen_range(0.0..side),
            )
        })
        .collect()
}

fn status(alg: &DeviationPenalty, phase: &str) {
    println!(
        "{phase:<28} stations={:<3} opened_online={:<3} penalty={:<9} similarity={}",
        alg.stations().len(),
        alg.opened_online(),
        alg.penalty_kind().to_string(),
        alg.last_similarity()
            .map(|s| format!("{s:.0}%"))
            .unwrap_or_else(|| "-".into()),
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Normal demand lives in the 2x2 km core of the field.
    let core = Point::new(0.0, 0.0);
    let history = uniform(&mut rng, 400, core, 2_000.0);

    let instance = PlpInstance::with_uniform_cost(history.clone(), 5_000.0);
    let landmarks = jms_greedy(&instance).facility_points(&instance);
    println!("offline landmarks from history: {}\n", landmarks.len());

    let mut alg = DeviationPenalty::new(
        landmarks,
        history,
        DeviationConfig {
            space_cost: 5_000.0,
            seed: 7,
            ..DeviationConfig::default()
        },
    );

    // Phase 1: business as usual.
    for p in uniform(&mut rng, 300, core, 2_000.0) {
        alg.handle(p);
    }
    status(&alg, "normal traffic");

    // Phase 2: a stadium event 3 km away — demand the landmarks never saw.
    let stadium = Point::new(4_000.0, 4_000.0);
    for p in uniform(&mut rng, 250, stadium, 500.0) {
        alg.handle(p);
    }
    status(&alg, "surge at the stadium");
    let near_stadium = alg
        .stations()
        .iter()
        .filter(|s| s.x > 3_500.0 && s.y > 3_500.0)
        .count();
    println!("{near_stadium} stations now serve the stadium area\n");

    // Phase 3: the event ends; traffic reverts.
    for p in uniform(&mut rng, 300, core, 2_000.0) {
        alg.handle(p);
    }
    status(&alg, "traffic back to normal");

    println!("\nfinal cost: {}", alg.cost());
}
