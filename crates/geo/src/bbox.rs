//! Axis-aligned bounding boxes over planar points.

use crate::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle in the planar (meter) coordinate system.
///
/// Used to delimit the study field (e.g. the paper's 3 × 3 km area) and to
/// clip synthetic arrivals.
///
/// # Examples
///
/// ```
/// use esharing_geo::{BBox, Point};
///
/// let field = BBox::new(Point::new(0.0, 0.0), Point::new(3000.0, 3000.0));
/// assert!(field.contains(Point::new(1500.0, 10.0)));
/// assert!(!field.contains(Point::new(-1.0, 10.0)));
/// assert_eq!(field.area(), 9_000_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    min: Point,
    max: Point,
}

impl BBox {
    /// Creates a bounding box from two opposite corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square field with the south-west corner at the origin.
    pub fn square(side: f64) -> Self {
        BBox::new(Point::ORIGIN, Point::new(side, side))
    }

    /// The smallest box containing all `points`, or `None` when empty.
    pub fn from_points<I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut bbox = BBox::new(first, first);
        for p in iter {
            bbox = bbox.expanded_to(p);
        }
        Some(bbox)
    }

    /// South-west corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// North-east corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (x extent) in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent) in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the box (inclusive of all edges).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns a copy grown to include `p`.
    pub fn expanded_to(&self, p: Point) -> BBox {
        BBox {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// Returns a copy padded by `margin` meters on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative `margin` would invert the box.
    pub fn padded(&self, margin: f64) -> BBox {
        let b = BBox {
            min: self.min - Point::new(margin, margin),
            max: self.max + Point::new(margin, margin),
        };
        assert!(
            b.min.x <= b.max.x && b.min.y <= b.max.y,
            "padding {margin} inverts bbox"
        );
        b
    }

    /// Clamps `p` to the nearest point inside the box.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Whether two boxes overlap (touching edges count as overlapping).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_corners() {
        let b = BBox::new(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        assert_eq!(b.min(), Point::new(1.0, 1.0));
        assert_eq!(b.max(), Point::new(5.0, 5.0));
    }

    #[test]
    fn square_field() {
        let b = BBox::square(1000.0);
        assert_eq!(b.width(), 1000.0);
        assert_eq!(b.height(), 1000.0);
        assert_eq!(b.area(), 1_000_000.0);
        assert_eq!(b.center(), Point::new(500.0, 500.0));
    }

    #[test]
    fn contains_is_inclusive() {
        let b = BBox::square(10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(b.contains(Point::new(5.0, 5.0)));
        assert!(!b.contains(Point::new(10.0001, 5.0)));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 7.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let b = BBox::from_points(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min(), Point::new(-2.0, -1.0));
        assert_eq!(b.max(), Point::new(4.0, 7.0));
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn clamp_projects_inside() {
        let b = BBox::square(10.0);
        assert_eq!(b.clamp(Point::new(-5.0, 5.0)), Point::new(0.0, 5.0));
        assert_eq!(b.clamp(Point::new(20.0, 20.0)), Point::new(10.0, 10.0));
        let inside = Point::new(3.0, 4.0);
        assert_eq!(b.clamp(inside), inside);
    }

    #[test]
    fn padded_grows_symmetrically() {
        let b = BBox::square(10.0).padded(2.0);
        assert_eq!(b.min(), Point::new(-2.0, -2.0));
        assert_eq!(b.max(), Point::new(12.0, 12.0));
    }

    #[test]
    #[should_panic(expected = "inverts bbox")]
    fn padded_panics_on_inversion() {
        let _ = BBox::square(10.0).padded(-6.0);
    }

    #[test]
    fn intersects_detects_overlap_and_touching() {
        let a = BBox::square(10.0);
        let b = BBox::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        let c = BBox::new(Point::new(10.0, 0.0), Point::new(20.0, 10.0));
        let d = BBox::new(Point::new(11.0, 11.0), Point::new(20.0, 20.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(a.intersects(&c)); // touching edge
        assert!(!a.intersects(&d));
    }

    #[test]
    fn expanded_to_is_monotone() {
        let b = BBox::square(1.0);
        let grown = b.expanded_to(Point::new(50.0, -3.0));
        assert!(grown.contains(Point::new(50.0, -3.0)));
        assert!(grown.contains(b.min()));
        assert!(grown.contains(b.max()));
    }
}
