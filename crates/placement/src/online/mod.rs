//! Online placement algorithms.
//!
//! All three algorithms consume a stream of destination requests and make
//! immediate, irrevocable decisions: open a new parking at the destination
//! (paying the space-occupation cost) or assign the user to an existing one
//! (paying the walking cost). They share the [`OnlinePlacement`] trait so
//! the experiment harnesses can swap them freely:
//!
//! * [`Meyerson`] — the classical randomized online facility location
//!   algorithm \[Meyerson, FOCS'01\],
//! * [`OnlineKMeans`] — online k-means clustering \[Liberty, Sriharsha &
//!   Sviridenko, ALENEX'16\],
//! * [`DeviationPenalty`] — the paper's Algorithm 2, guiding online
//!   decisions with the offline solution via penalty functions and a
//!   periodic 2-D KS test.

mod deviation;
mod kmeans;
mod meyerson;

pub use deviation::{
    DecisionView, DeviationCheckpoint, DeviationConfig, DeviationPenalty, DeviationPenaltyCore,
    DriftMode, DriftTask, DriftVerdict, HandleTrace, PendingDrift, PlacementEvent,
    EVENT_BUFFER_CAP,
};
pub use kmeans::OnlineKMeans;
pub use meyerson::Meyerson;

use crate::PlacementCost;
use esharing_geo::Point;
use serde::{Deserialize, Serialize};

/// The outcome of one online request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// A new parking was established at the request's destination.
    Opened {
        /// The new parking location (== the destination).
        station: Point,
    },
    /// The request was assigned to an existing parking.
    Assigned {
        /// The serving parking location.
        station: Point,
        /// Walking distance paid by the user.
        walking: f64,
    },
}

impl Decision {
    /// The parking serving this request.
    pub fn station(&self) -> Point {
        match *self {
            Decision::Opened { station } | Decision::Assigned { station, .. } => station,
        }
    }

    /// Whether a new parking was opened.
    pub fn opened(&self) -> bool {
        matches!(self, Decision::Opened { .. })
    }
}

/// An online PLP algorithm processing one destination request at a time.
pub trait OnlinePlacement {
    /// Handles one streamed destination and returns the decision made.
    fn handle(&mut self, destination: Point) -> Decision;

    /// Currently open parking locations.
    fn stations(&self) -> Vec<Point>;

    /// Accumulated cost so far (walking + space, in meters).
    fn cost(&self) -> PlacementCost;

    /// A short human-readable name for tables.
    fn name(&self) -> String;

    /// Convenience: process a whole stream, returning the final cost.
    fn run<I>(&mut self, stream: I) -> PlacementCost
    where
        I: IntoIterator<Item = Point>,
        Self: Sized,
    {
        for p in stream {
            self.handle(p);
        }
        self.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        let p = Point::new(1.0, 2.0);
        let open = Decision::Opened { station: p };
        assert!(open.opened());
        assert_eq!(open.station(), p);
        let assigned = Decision::Assigned {
            station: p,
            walking: 10.0,
        };
        assert!(!assigned.opened());
        assert_eq!(assigned.station(), p);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _take(_: &dyn OnlinePlacement) {}
    }
}
