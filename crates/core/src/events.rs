//! Event-driven operation with condition-based maintenance.
//!
//! The day-granular [`Simulation`](crate::Simulation) runs maintenance on
//! a fixed schedule. Real deployments stream battery telemetry to the
//! server ("the energy status of the E-bikes are streamed back to the
//! server" — §IV-C) and dispatch operators *when needed*. This engine
//! processes trips in strict timestamp order and fires a maintenance
//! period whenever the fleet's low-battery count crosses a threshold,
//! rate-limited by a minimum gap between dispatches.

use crate::orchestrator::MaintenanceReport;
use crate::{ESharing, SystemConfig};
use esharing_dataset::{CityConfig, Fleet, SyntheticCity, Timestamp, TripGenerator};

/// When the operator is dispatched.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceEvent {
    /// Time of the dispatch.
    pub time: Timestamp,
    /// Low-battery bikes that triggered it.
    pub low_bikes: usize,
    /// The tier-2 report.
    pub report: MaintenanceReport,
}

/// Configuration of the condition-based trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerPolicy {
    /// Dispatch when the fleet-wide low-battery count reaches this.
    pub low_bike_threshold: usize,
    /// Minimum seconds between dispatches (an operator shift cannot be
    /// restarted arbitrarily often).
    pub min_gap_s: u64,
}

impl Default for TriggerPolicy {
    fn default() -> Self {
        TriggerPolicy {
            low_bike_threshold: 40,
            min_gap_s: 4 * 3_600,
        }
    }
}

/// An event-driven simulation: trips replay in timestamp order and
/// maintenance fires on the battery-telemetry condition.
#[derive(Debug)]
pub struct EventDrivenSim {
    system: ESharing,
    fleet: Fleet,
    generator: TripGenerator,
    policy: TriggerPolicy,
    now: Timestamp,
    last_maintenance: Option<Timestamp>,
    maintenance_log: Vec<MaintenanceEvent>,
    trips_processed: u64,
}

impl EventDrivenSim {
    /// Creates the engine over a fresh synthetic city.
    pub fn new(
        city_config: &CityConfig,
        system_config: SystemConfig,
        policy: TriggerPolicy,
        seed: u64,
    ) -> Self {
        let city = SyntheticCity::generate(city_config);
        let fleet = Fleet::new(
            city_config.fleet_size,
            city.bbox(),
            system_config.energy,
            seed ^ 0xE4E17,
        );
        let generator = TripGenerator::new(&city, seed);
        EventDrivenSim {
            system: ESharing::new(system_config),
            fleet,
            generator,
            policy,
            now: Timestamp(0),
            last_maintenance: None,
            maintenance_log: Vec::new(),
            trips_processed: 0,
        }
    }

    /// The orchestrated system.
    pub fn system(&self) -> &ESharing {
        &self.system
    }

    /// The fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Maintenance dispatches so far, in time order.
    pub fn maintenance_log(&self) -> &[MaintenanceEvent] {
        &self.maintenance_log
    }

    /// Trips processed so far.
    pub fn trips_processed(&self) -> u64 {
        self.trips_processed
    }

    /// Current simulation clock.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Bootstraps the offline landmarks from `n_days` of history (the
    /// clock advances past them).
    pub fn bootstrap_days(&mut self, n_days: u64) -> usize {
        let start_day = self.now.day();
        let trips = self.generator.generate_days(start_day, n_days);
        let destinations: Vec<_> = trips.iter().map(|t| t.end).collect();
        self.fleet.replay(trips.iter());
        self.system.bootstrap(&destinations);
        self.now = Timestamp::from_day_hour(start_day + n_days, 0);
        trips.len()
    }

    fn maintenance_allowed(&self) -> bool {
        match self.last_maintenance {
            None => true,
            Some(t) => self.now.seconds() >= t.seconds() + self.policy.min_gap_s,
        }
    }

    /// Advances the clock to `until`, processing every trip in order and
    /// firing condition-based maintenance. Returns the dispatches that
    /// occurred in the window.
    ///
    /// # Panics
    ///
    /// Panics if called before [`EventDrivenSim::bootstrap_days`] or with
    /// `until` in the past.
    pub fn run_until(&mut self, until: Timestamp) -> Vec<MaintenanceEvent> {
        assert!(until >= self.now, "cannot run backwards");
        let first_day = self.now.day();
        let last_day = until.day();
        let mut fired = Vec::new();
        for day in first_day..=last_day {
            // Trips are generated per day and interleaved by timestamp.
            let trips = self.generator.generate_days(day, 1);
            for trip in trips {
                if trip.start_time < self.now || trip.start_time >= until {
                    continue;
                }
                self.now = trip.start_time;
                self.system
                    .handle_request(trip.end)
                    .expect("engine must be bootstrapped before run_until");
                self.fleet.apply_trip(&trip);
                self.trips_processed += 1;
                // Telemetry check after every drop-off.
                let low = self.fleet.low_battery_bikes().len();
                if low >= self.policy.low_bike_threshold && self.maintenance_allowed() {
                    let report = self
                        .system
                        .maintenance_period(&mut self.fleet)
                        .expect("bootstrapped");
                    let event = MaintenanceEvent {
                        time: self.now,
                        low_bikes: low,
                        report,
                    };
                    self.last_maintenance = Some(self.now);
                    self.maintenance_log.push(event.clone());
                    fired.push(event);
                }
            }
        }
        self.now = until;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_city() -> CityConfig {
        CityConfig {
            trips_per_day: 900.0,
            fleet_size: 350,
            ..CityConfig::default()
        }
    }

    #[test]
    fn trips_process_in_time_order_and_count() {
        let mut sim = EventDrivenSim::new(
            &small_city(),
            SystemConfig::default(),
            TriggerPolicy {
                low_bike_threshold: usize::MAX, // never fire
                min_gap_s: 0,
            },
            5,
        );
        sim.bootstrap_days(1);
        let fired = sim.run_until(Timestamp::from_day_hour(3, 0));
        assert!(fired.is_empty());
        assert!(sim.trips_processed() > 500);
        assert_eq!(
            sim.system().metrics().requests_served,
            sim.trips_processed()
        );
        assert_eq!(sim.now(), Timestamp::from_day_hour(3, 0));
    }

    #[test]
    fn threshold_triggers_maintenance() {
        let mut sim = EventDrivenSim::new(
            &small_city(),
            SystemConfig::default(),
            TriggerPolicy {
                low_bike_threshold: 25,
                min_gap_s: 3_600,
            },
            6,
        );
        sim.bootstrap_days(1);
        let fired = sim.run_until(Timestamp::from_day_hour(4, 0));
        assert!(!fired.is_empty(), "dispatch expected under heavy usage");
        for event in &fired {
            assert!(event.low_bikes >= 25);
        }
        assert_eq!(sim.maintenance_log().len(), fired.len());
        // The fleet is being kept alive.
        assert!(sim.fleet().low_battery_bikes().len() < sim.fleet().len() / 2);
    }

    #[test]
    fn min_gap_rate_limits_dispatches() {
        let run = |gap_s: u64| -> usize {
            let mut sim = EventDrivenSim::new(
                &small_city(),
                SystemConfig::default(),
                TriggerPolicy {
                    low_bike_threshold: 10,
                    min_gap_s: gap_s,
                },
                7,
            );
            sim.bootstrap_days(1);
            sim.run_until(Timestamp::from_day_hour(3, 0)).len()
        };
        let frequent = run(600);
        let rare = run(24 * 3_600);
        assert!(
            frequent > rare,
            "gap 10min fired {frequent}, gap 24h fired {rare}"
        );
        assert!(rare >= 1);
    }

    #[test]
    fn dispatch_times_respect_gap() {
        let mut sim = EventDrivenSim::new(
            &small_city(),
            SystemConfig::default(),
            TriggerPolicy {
                low_bike_threshold: 10,
                min_gap_s: 2 * 3_600,
            },
            8,
        );
        sim.bootstrap_days(1);
        sim.run_until(Timestamp::from_day_hour(4, 0));
        let log = sim.maintenance_log();
        for pair in log.windows(2) {
            assert!(
                pair[1].time.seconds() >= pair[0].time.seconds() + 2 * 3_600,
                "dispatches too close: {} then {}",
                pair[0].time,
                pair[1].time
            );
        }
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn cannot_run_backwards() {
        let mut sim = EventDrivenSim::new(
            &small_city(),
            SystemConfig::default(),
            TriggerPolicy::default(),
            9,
        );
        sim.bootstrap_days(2);
        let _ = sim.run_until(Timestamp::from_day_hour(1, 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = EventDrivenSim::new(
                &small_city(),
                SystemConfig::default(),
                TriggerPolicy::default(),
                10,
            );
            sim.bootstrap_days(1);
            sim.run_until(Timestamp::from_day_hour(3, 0));
            (
                sim.trips_processed(),
                *sim.system().metrics(),
                sim.maintenance_log().len(),
            )
        };
        assert_eq!(run(), run());
    }
}
