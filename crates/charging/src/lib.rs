//! # esharing-charging
//!
//! Tier 2 of the E-Sharing framework: charging-maintenance optimization
//! through user incentives (§IV of the paper).
//!
//! Operators tour the parking locations to recharge e-bikes whose battery
//! fell below a threshold. Serving `n` stations with `l` low bikes costs
//! `C = n·q + l·b + (n²−n)/2·d` (Eq. 10: per-stop service cost `q`,
//! per-bike energy cost `b`, positional delay cost `d`). Aggregating the
//! scattered low-battery tail onto fewer stations shrinks both the `n·q`
//! and the quadratic delay terms (Eq. 11); the paper achieves this by
//! paying users a uniform incentive `v = α(q + t·d)/|L_i|` (bounded by the
//! cost saved, Eq. 12) to ride a low bike to a designated neighbour
//! station instead of a fresh one.
//!
//! This crate implements:
//!
//! * [`ChargingCostParams`] — the Eq. 10 cost model and the Eq. 11 savings
//!   ratio (Fig. 7),
//! * [`tsp`] — the operator's touring problem (nearest neighbour, 2-opt,
//!   exact Held–Karp for small stops),
//! * [`UserModel`]/[`IncentiveMechanism`] — the Eq. 13 acceptance model
//!   with population heterogeneity and the online offer loop (Algorithm 3),
//! * [`Operator`] — a shift-limited maintenance tour producing the
//!   %-charged utility metric of Fig. 12(b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod incentive;
mod operator;
pub mod rebalance;
pub mod scheduler;
pub mod tsp;

pub use cost::ChargingCostParams;
pub use incentive::{IncentiveMechanism, IncentiveOutcome, StationEnergy, UserModel};
pub use operator::{Operator, ShiftReport};
