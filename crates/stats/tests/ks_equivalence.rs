//! Property-based equivalence between the rank-based 2-D KS kernels and
//! their naive quadrant-counting oracles.
//!
//! The fast paths are engineered to produce the *same integer quadrant
//! counts* and then perform the *same f64 arithmetic* as the naive loops,
//! so every property here asserts exact equality — no tolerances.

use esharing_geo::Point;
use esharing_stats::ks2d::{
    ff_statistic, ff_statistic_naive, peacock_statistic, peacock_statistic_naive, DriftHistory,
    DriftMonitor, DriftSnapshot, IncrementalWindow, RankedSample,
};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

fn continuous(raw: &[(f64, f64)]) -> Vec<Point> {
    raw.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

/// Integer-lattice coordinates: duplicate-heavy, exercising the tie paths
/// (shared ranks, equal-x Fenwick groups, repeated split points).
fn lattice(raw: &[(u32, u32)]) -> Vec<Point> {
    raw.iter()
        .map(|&(x, y)| Point::new(f64::from(x) * 125.0, f64::from(y) * 125.0))
        .collect()
}

proptest! {
    #[test]
    fn ff_matches_naive_continuous(
        a in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..50),
        b in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..50),
    ) {
        let (a, b) = (continuous(&a), continuous(&b));
        prop_assert_eq!(ff_statistic(&a, &b), ff_statistic_naive(&a, &b));
    }

    #[test]
    fn ff_matches_naive_lattice(
        a in proptest::collection::vec((0u32..5, 0u32..5), 1..40),
        b in proptest::collection::vec((0u32..5, 0u32..5), 1..40),
    ) {
        let (a, b) = (lattice(&a), lattice(&b));
        prop_assert_eq!(ff_statistic(&a, &b), ff_statistic_naive(&a, &b));
    }

    #[test]
    fn peacock_matches_naive_continuous(
        a in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..40),
        b in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..40),
    ) {
        let (a, b) = (continuous(&a), continuous(&b));
        prop_assert_eq!(peacock_statistic(&a, &b), peacock_statistic_naive(&a, &b));
    }

    #[test]
    fn peacock_matches_naive_lattice(
        a in proptest::collection::vec((0u32..5, 0u32..5), 1..40),
        b in proptest::collection::vec((0u32..5, 0u32..5), 1..40),
    ) {
        let (a, b) = (lattice(&a), lattice(&b));
        prop_assert_eq!(peacock_statistic(&a, &b), peacock_statistic_naive(&a, &b));
    }

    #[test]
    fn ranked_sample_reuse_matches_one_shot(
        hist in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..40),
        w1 in proptest::collection::vec((0u32..5, 0u32..5), 1..30),
        w2 in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..30),
    ) {
        // A RankedSample built once and tested against successive windows
        // (the DeviationPenalty streaming pattern) must match fresh
        // one-shot tests exactly. The test statistic is the FF variant
        // (split points at sample points), per the `peacock_test` contract.
        let hist = continuous(&hist);
        let ranked = RankedSample::new(&hist);
        for window in [lattice(&w1), continuous(&w2)] {
            let reused = ranked.peacock_test_against(&window);
            let fresh = RankedSample::new(&hist)
                .peacock_test(&RankedSample::new(&window));
            prop_assert_eq!(reused.statistic, fresh.statistic);
            prop_assert_eq!(reused.p_value, fresh.p_value);
            prop_assert_eq!(
                reused.statistic,
                ff_statistic_naive(&hist, &window)
            );
        }
    }

    /// The incremental FIFO window must reproduce the batch re-rank test
    /// bit-for-bit (statistic AND p-value) at every point of a random
    /// push/pop schedule, including after the window wraps its cap many
    /// times. Lattice coordinates drive duplicates through the treap
    /// equal-runs.
    #[test]
    fn incremental_window_matches_batch_rerank(
        hist in proptest::collection::vec((0u32..6, 0u32..6), 5..60),
        stream in proptest::collection::vec((0u32..6, 0u32..6), 1..150),
        cap in 3usize..40,
    ) {
        let hist = lattice(&hist);
        let ranked = RankedSample::new(&hist);
        let mut fast = IncrementalWindow::new();
        let mut mirror: VecDeque<Point> = VecDeque::new();
        for (step, p) in lattice(&stream).into_iter().enumerate() {
            fast.push_back(p);
            mirror.push_back(p);
            if mirror.len() > cap {
                prop_assert_eq!(fast.pop_front(), mirror.pop_front());
            }
            prop_assert_eq!(fast.len(), mirror.len());
            if step % 5 == 0 {
                let batch: Vec<Point> = mirror.iter().copied().collect();
                let incremental = ranked.peacock_test_window(&mut fast);
                let rerank = ranked.peacock_test_against(&batch);
                prop_assert_eq!(incremental.statistic, rerank.statistic, "step {}", step);
                prop_assert_eq!(incremental.p_value, rerank.p_value, "step {}", step);
                prop_assert_eq!(incremental.statistic, ff_statistic_naive(&hist, &batch));
            }
        }
    }

    /// The cached-quadrant drift monitor — the kernel both `DriftMode`s
    /// run on — must reproduce the batch re-rank test bit-for-bit under
    /// random FIFO churn, on both of its evaluation paths: the in-place
    /// inline re-test and the immutable snapshot evaluated later (after
    /// further churn) or rebuilt from its bare points, as checkpoint
    /// restore does.
    #[test]
    fn drift_monitor_and_snapshot_match_batch_rerank(
        hist in proptest::collection::vec((0u32..6, 0u32..6), 1..60),
        stream in proptest::collection::vec((0u32..6, 0u32..6), 1..150),
        cap in 3usize..40,
    ) {
        let hist = lattice(&hist);
        let ranked = RankedSample::new(&hist);
        let shared = Arc::new(DriftHistory::new(&hist));
        let mut monitor = DriftMonitor::new(Arc::clone(&shared));
        let mut mirror: VecDeque<Point> = VecDeque::new();
        let mut pending: Option<(DriftSnapshot, esharing_stats::ks2d::Ks2dResult)> = None;
        for (step, p) in lattice(&stream).into_iter().enumerate() {
            monitor.push_back(p);
            mirror.push_back(p);
            if mirror.len() > cap {
                prop_assert_eq!(monitor.pop_front(), mirror.pop_front());
            }
            prop_assert_eq!(monitor.len(), mirror.len());
            if step % 5 == 0 {
                let batch: Vec<Point> = mirror.iter().copied().collect();
                let rerank = ranked.peacock_test_against(&batch);
                let inline = monitor.evaluate_now();
                prop_assert_eq!(inline, rerank, "step {}", step);
                prop_assert_eq!(inline.statistic, ff_statistic_naive(&hist, &batch));
                // A snapshot taken one probe ago, evaluated now — after
                // the window churned past it — must still report the
                // verdict of its own boundary, and rebuild identically.
                if let Some((snap, expect)) = pending.take() {
                    prop_assert_eq!(snap.evaluate(), expect, "deferred step {}", step);
                    let pts: Vec<Point> = snap.points().collect();
                    let rebuilt = DriftSnapshot::from_points(&shared, &pts);
                    prop_assert_eq!(rebuilt.evaluate(), expect, "rebuilt step {}", step);
                }
                pending = Some((monitor.snapshot(), rerank));
            }
        }
    }
}
