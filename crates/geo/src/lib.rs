//! # esharing-geo
//!
//! Geometric and geographic primitives for the E-Sharing reproduction.
//!
//! The E-Sharing system (ICDCS 2020) operates on a metropolitan area divided
//! into uniform grids; trip destinations are geohash-encoded and binned into
//! 100 × 100 m cells, each represented by its centroid. This crate provides
//! the geometry substrate every other crate builds on:
//!
//! * [`Point`] — planar coordinates in meters with Euclidean distance,
//! * [`LatLon`] — geographic coordinates with haversine distance and a local
//!   equirectangular projection,
//! * [`geohash`] — base-32 geohash encode/decode matching the format used by
//!   the Mobike dataset the paper evaluates on,
//! * [`Grid`] — uniform binning of points into cells and back to centroids,
//! * [`BBox`] — axis-aligned bounding boxes,
//! * [`NearestNeighborIndex`] — an allocation-free flat-hash-grid index for
//!   the nearest-parking queries issued by the online placement algorithms
//!   (with [`NearestNeighborIndexReference`], the simple `BTreeMap` bucket
//!   store, retained as its equivalence oracle).
//!
//! # Examples
//!
//! ```
//! use esharing_geo::{Point, Grid};
//!
//! // Bin a destination into the 100 m grid the paper uses and recover the
//! // centroid that stands in for every arrival in that cell.
//! let grid = Grid::new(100.0);
//! let destination = Point::new(233.0, 471.0);
//! let cell = grid.cell_of(destination);
//! let centroid = grid.centroid(cell);
//! assert!(destination.distance(centroid) <= grid.cell_diagonal() / 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod error;
pub mod geohash;
mod grid;
mod index;
mod latlon;
mod point;
pub mod privacy;

pub use bbox::BBox;
pub use error::GeoError;
pub use grid::{Cell, Grid};
pub use index::{candidate_cmp, NearestNeighborIndex, NearestNeighborIndexReference, SpatialIndex};
pub use latlon::{LatLon, LocalProjection};
pub use point::Point;
