//! Uniform grid binning.
//!
//! The paper divides the metropolitan area into grids that "represent the
//! minimum granularity such that users all agree to walk within a grid"
//! (100 × 100 m in the evaluation) and represents every arrival in a grid by
//! its centroid. [`Grid`] performs exactly that binning.

use crate::{BBox, GeoError, Point};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Integer coordinates of a grid cell: `(column, row)` counted from the
/// grid origin. Negative indices are valid for points south/west of the
/// origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cell {
    /// Column index (x / cell size, floored).
    pub col: i64,
    /// Row index (y / cell size, floored).
    pub row: i64,
}

impl Cell {
    /// Creates a cell from column/row indices.
    #[inline]
    pub const fn new(col: i64, row: i64) -> Self {
        Cell { col, row }
    }

    /// Chebyshev (ring) distance between cells; neighbours are at distance 1.
    #[inline]
    pub fn ring_distance(self, other: Cell) -> u64 {
        let dc = (self.col - other.col).unsigned_abs();
        let dr = (self.row - other.row).unsigned_abs();
        dc.max(dr)
    }
}

/// A uniform square grid anchored at the planar origin.
///
/// # Examples
///
/// ```
/// use esharing_geo::{Grid, Point, Cell};
///
/// let grid = Grid::new(100.0);
/// assert_eq!(grid.cell_of(Point::new(250.0, 10.0)), Cell::new(2, 0));
/// assert_eq!(grid.centroid(Cell::new(2, 0)), Point::new(250.0, 50.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    cell_size: f64,
}

impl Grid {
    /// Creates a grid with square cells of `cell_size` meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite. Use
    /// [`Grid::try_new`] for a fallible constructor.
    pub fn new(cell_size: f64) -> Self {
        Grid::try_new(cell_size).expect("cell size must be positive")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::NonPositiveCellSize`] if `cell_size <= 0` or is
    /// not finite.
    pub fn try_new(cell_size: f64) -> Result<Self, GeoError> {
        if !cell_size.is_finite() || cell_size <= 0.0 {
            return Err(GeoError::NonPositiveCellSize(cell_size));
        }
        Ok(Grid { cell_size })
    }

    /// Cell side length in meters.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Length of a cell diagonal — the maximum distance between any point in
    /// a cell and another point in the same cell.
    #[inline]
    pub fn cell_diagonal(&self) -> f64 {
        self.cell_size * std::f64::consts::SQRT_2
    }

    /// The cell containing `p`. Points exactly on a boundary belong to the
    /// cell to their north-east (floor semantics).
    #[inline]
    pub fn cell_of(&self, p: Point) -> Cell {
        Cell {
            col: (p.x / self.cell_size).floor() as i64,
            row: (p.y / self.cell_size).floor() as i64,
        }
    }

    /// Centroid of `cell` — the representative location for every arrival
    /// binned into it.
    #[inline]
    pub fn centroid(&self, cell: Cell) -> Point {
        Point::new(
            (cell.col as f64 + 0.5) * self.cell_size,
            (cell.row as f64 + 0.5) * self.cell_size,
        )
    }

    /// Bounding box of `cell`.
    pub fn cell_bbox(&self, cell: Cell) -> BBox {
        let min = Point::new(
            cell.col as f64 * self.cell_size,
            cell.row as f64 * self.cell_size,
        );
        BBox::new(min, min + Point::new(self.cell_size, self.cell_size))
    }

    /// Snaps `p` to the centroid of its cell.
    #[inline]
    pub fn snap(&self, p: Point) -> Point {
        self.centroid(self.cell_of(p))
    }

    /// Bins a stream of points into per-cell arrival counts.
    ///
    /// This mirrors the paper's preprocessing: "divide all the trips into
    /// non-overlapping bins based on the ending locations".
    pub fn bin_counts<I>(&self, points: I) -> HashMap<Cell, u64>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut counts = HashMap::new();
        for p in points {
            *counts.entry(self.cell_of(p)).or_insert(0u64) += 1;
        }
        counts
    }

    /// Bins points and returns `(centroid, count)` pairs — the weighted
    /// client set consumed by the placement algorithms.
    pub fn weighted_centroids<I>(&self, points: I) -> Vec<(Point, u64)>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut v: Vec<(Cell, u64)> = self.bin_counts(points).into_iter().collect();
        // Deterministic output order regardless of hash iteration.
        v.sort_unstable_by_key(|&(cell, _)| cell);
        v.into_iter()
            .map(|(cell, n)| (self.centroid(cell), n))
            .collect()
    }

    /// All cells overlapping `bbox`, row-major from the south-west.
    pub fn cells_in(&self, bbox: &BBox) -> Vec<Cell> {
        let lo = self.cell_of(bbox.min());
        let hi = self.cell_of(bbox.max());
        let mut cells = Vec::new();
        for row in lo.row..=hi.row {
            for col in lo.col..=hi.col {
                cells.push(Cell { col, row });
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_assignment_floor_semantics() {
        let g = Grid::new(100.0);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), Cell::new(0, 0));
        assert_eq!(g.cell_of(Point::new(99.999, 99.999)), Cell::new(0, 0));
        assert_eq!(g.cell_of(Point::new(100.0, 0.0)), Cell::new(1, 0));
        assert_eq!(g.cell_of(Point::new(-0.5, -0.5)), Cell::new(-1, -1));
    }

    #[test]
    fn centroid_is_cell_center() {
        let g = Grid::new(100.0);
        assert_eq!(g.centroid(Cell::new(0, 0)), Point::new(50.0, 50.0));
        assert_eq!(g.centroid(Cell::new(-1, 2)), Point::new(-50.0, 250.0));
    }

    #[test]
    fn snap_is_idempotent() {
        let g = Grid::new(100.0);
        let p = Point::new(233.0, 471.0);
        let s = g.snap(p);
        assert_eq!(g.snap(s), s);
        assert!(p.distance(s) <= g.cell_diagonal() / 2.0);
    }

    #[test]
    fn rejects_bad_cell_size() {
        assert!(Grid::try_new(0.0).is_err());
        assert!(Grid::try_new(-10.0).is_err());
        assert!(Grid::try_new(f64::NAN).is_err());
        assert!(Grid::try_new(f64::INFINITY).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn new_panics_on_zero() {
        let _ = Grid::new(0.0);
    }

    #[test]
    fn bin_counts_totals_match() {
        let g = Grid::new(100.0);
        let pts = vec![
            Point::new(10.0, 10.0),
            Point::new(20.0, 30.0),
            Point::new(150.0, 10.0),
        ];
        let counts = g.bin_counts(pts);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[&Cell::new(0, 0)], 2);
        assert_eq!(counts[&Cell::new(1, 0)], 1);
        assert_eq!(counts.values().sum::<u64>(), 3);
    }

    #[test]
    fn weighted_centroids_sorted_and_weighted() {
        let g = Grid::new(100.0);
        let pts = vec![
            Point::new(150.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(20.0, 30.0),
        ];
        let wc = g.weighted_centroids(pts);
        assert_eq!(
            wc,
            vec![(Point::new(50.0, 50.0), 2), (Point::new(150.0, 50.0), 1)]
        );
    }

    #[test]
    fn cells_in_field() {
        let g = Grid::new(100.0);
        // A 3x3 km field contains 30x30 = 900 interior cells, plus the
        // boundary row/col because bbox.max() lies exactly on a grid line.
        let cells = g.cells_in(&BBox::square(2999.0));
        assert_eq!(cells.len(), 30 * 30);
        let cells = g.cells_in(&BBox::square(250.0));
        assert_eq!(cells.len(), 3 * 3);
    }

    #[test]
    fn ring_distance_of_neighbors() {
        let c = Cell::new(5, 5);
        assert_eq!(c.ring_distance(Cell::new(5, 5)), 0);
        assert_eq!(c.ring_distance(Cell::new(6, 6)), 1);
        assert_eq!(c.ring_distance(Cell::new(5, 8)), 3);
        assert_eq!(c.ring_distance(Cell::new(2, 6)), 3);
    }
}
