//! # esharing-dataset
//!
//! Synthetic Mobike-like trip and energy workload.
//!
//! The paper evaluates on the Mobike Big Data Challenge dataset — 3.2 M
//! bicycle trips in Beijing (May 10–24 2017) with geohashed endpoints —
//! plus an e-bike energy model "based on the data crawled from \[the\]
//! XQbike App". Neither source is publicly redistributable, so this crate
//! generates a statistically equivalent workload (see `DESIGN.md` §2 for
//! the substitution argument):
//!
//! * [`SyntheticCity`] — a city model with POI anchors (subway, office,
//!   residential, recreation, university, restaurant) whose categories
//!   carry weekday/weekend diurnal demand profiles; this reproduces the
//!   spatio-temporal regularity and the weekday↔weekend distribution shift
//!   the paper's KS test detects (Table IV),
//! * [`TripGenerator`] — a deterministic, seeded stream of [`Trip`] records
//!   in the Mobike schema (order/user/bike ids, start time, geohashed
//!   endpoints),
//! * [`EnergyModel`]/[`Fleet`] — per-bike battery traces with
//!   distance-proportional drain, producing the "majority high energy +
//!   low-battery tail" distribution of Fig. 2(d),
//! * [`arrivals`] — hourly per-cell arrival series for the prediction
//!   engine.
//!
//! # Examples
//!
//! ```
//! use esharing_dataset::{CityConfig, SyntheticCity, TripGenerator};
//!
//! let city = SyntheticCity::generate(&CityConfig::default());
//! let mut gen = TripGenerator::new(&city, 99);
//! let trips = gen.generate_days(0, 2);
//! assert!(!trips.is_empty());
//! assert!(trips.windows(2).all(|w| w[0].start_time <= w[1].start_time));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
mod city;
mod energy;
pub mod io;
mod time;
mod trips;

pub use city::{CityConfig, Poi, PoiCategory, SyntheticCity};
pub use energy::{BikeState, EnergyModel, Fleet};
pub use time::{Timestamp, HOURS_PER_DAY, SECONDS_PER_DAY, SECONDS_PER_HOUR};
pub use trips::{destinations, SpecialEvent, Trip, TripGenerator};
