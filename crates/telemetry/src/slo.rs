//! Declarative SLO rules evaluated as multi-window burn rates over the
//! time-series store.
//!
//! Each [`SloRule`] names a signal derived from [`Tsdb`] windows — a
//! histogram quantile, a ratio of counter deltas, or a gauge maximum —
//! and a threshold. Following the Google SRE multi-window alerting shape,
//! the signal is evaluated over a *fast* and a *slow* window and
//! normalised into a burn rate (`value / threshold`, so 1.0 means
//! "exactly at the objective"). A rule breaches only when **both**
//! windows burn at ≥ 1: the fast window makes alerts prompt, the slow
//! window keeps one spiky bucket from paging. Recovery needs only the
//! fast window back under 1, so breaches clear as soon as the recent
//! signal is healthy.
//!
//! The engine ([`SloEngine`]) is a pure state machine: callers hand it a
//! `&Tsdb` and a timestamp; it returns the [`SloTransition`]s that fired
//! so the embedding layer can journal them (`EventKind::SloBreach` /
//! `SloRecovered`), trip the flight recorder, and export
//! `esharing_slo_burn{slo}` gauges from [`SloEngine::statuses`].

use crate::tsdb::Tsdb;
use serde::{Deserialize, Serialize};

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;

/// The measurable quantity an SLO rule watches, resolved against the
/// tsdb at evaluation time over each burn window.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSignal {
    /// `quantile(q)` of the merged histogram family `name` in the window,
    /// in nanoseconds.
    HistogramQuantileNs {
        /// Histogram family name (merged across labels/shards).
        name: String,
        /// Quantile in `[0, 1]`, e.g. 0.99.
        q: f64,
    },
    /// Windowed counter delta of `numerator` divided by that of
    /// `denominator` (e.g. sheds / decisions). Undefined (no verdict)
    /// while the denominator delta is zero.
    CounterRatio {
        /// Counter family whose delta forms the numerator.
        numerator: String,
        /// Counter family whose delta forms the denominator.
        denominator: String,
    },
    /// Maximum of a gauge family across all series and buckets in the
    /// window.
    GaugeMax {
        /// Gauge family name.
        name: String,
    },
}

/// One declarative objective: "signal stays below threshold", enforced
/// as a fast/slow burn-rate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Stable identifier, used as the `slo` label and in journal events.
    pub id: String,
    /// What to measure.
    pub signal: SloSignal,
    /// Objective ceiling; burn = value / threshold. Must be > 0.
    pub threshold: f64,
    /// Fast (paging) window in nanoseconds.
    pub fast_window_ns: u64,
    /// Slow (confirmation) window in nanoseconds.
    pub slow_window_ns: u64,
}

impl SloRule {
    /// A quantile-latency objective: `p(q)(histogram) < threshold_ns`.
    pub fn quantile_below(id: &str, histogram: &str, q: f64, threshold_ns: u64) -> Self {
        SloRule {
            id: id.to_string(),
            signal: SloSignal::HistogramQuantileNs {
                name: histogram.to_string(),
                q,
            },
            threshold: threshold_ns.max(1) as f64,
            fast_window_ns: 60 * SEC,
            slow_window_ns: 1_800 * SEC,
        }
    }

    /// A ratio objective: `num / den < threshold` (e.g. shed ratio < 1%).
    pub fn ratio_below(id: &str, numerator: &str, denominator: &str, threshold: f64) -> Self {
        SloRule {
            id: id.to_string(),
            signal: SloSignal::CounterRatio {
                numerator: numerator.to_string(),
                denominator: denominator.to_string(),
            },
            threshold,
            fast_window_ns: 60 * SEC,
            slow_window_ns: 1_800 * SEC,
        }
    }

    /// A gauge-ceiling objective: `max(gauge) < threshold`.
    pub fn gauge_below(id: &str, gauge: &str, threshold: f64) -> Self {
        SloRule {
            id: id.to_string(),
            signal: SloSignal::GaugeMax {
                name: gauge.to_string(),
            },
            threshold,
            fast_window_ns: 60 * SEC,
            slow_window_ns: 1_800 * SEC,
        }
    }

    /// Overrides both burn windows (milliseconds); smoke runs last well
    /// under the SRE-default 1 m / 30 m.
    pub fn with_windows_ms(mut self, fast_ms: u64, slow_ms: u64) -> Self {
        self.fast_window_ns = fast_ms.max(1) * MS;
        self.slow_window_ns = slow_ms.max(1) * MS;
        self
    }

    fn value(&self, tsdb: &Tsdb, window_ns: u64, now_ns: u64) -> Option<f64> {
        match &self.signal {
            SloSignal::HistogramQuantileNs { name, q } => tsdb
                .quantile_ns(name, *q, window_ns, now_ns)
                .map(|v| v as f64),
            SloSignal::CounterRatio {
                numerator,
                denominator,
            } => {
                let den = tsdb.counter_delta(denominator, window_ns, now_ns)?;
                if den <= 0.0 {
                    return None;
                }
                let num = tsdb
                    .counter_delta(numerator, window_ns, now_ns)
                    .unwrap_or(0.0);
                Some(num / den)
            }
            SloSignal::GaugeMax { name } => tsdb.aggregate(name, window_ns, now_ns).map(|r| r.max),
        }
    }
}

/// The default fleet objectives from the issue: decision p99 under
/// 200 µs, shed ratio under 1%, drift backlog under 4.
pub fn default_rules() -> Vec<SloRule> {
    vec![
        SloRule::quantile_below(
            "decision_p99",
            "esharing_decision_latency_ns",
            0.99,
            200_000,
        ),
        SloRule::ratio_below(
            "shed_ratio",
            "esharing_router_sheds_total",
            "esharing_decisions_total",
            0.01,
        ),
        SloRule::gauge_below("drift_pending", "esharing_drift_pending", 4.0),
    ]
}

/// A state change produced by one evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloTransition {
    /// Rule `rule` (index into [`SloEngine::rules`]) entered breach.
    Breach {
        /// Index of the breaching rule.
        rule: usize,
        /// Fast-window signal value that crossed the threshold.
        value: f64,
        /// The rule's threshold at evaluation time.
        threshold: f64,
        /// Fast-window burn rate (≥ 1 at breach).
        burn_fast: f64,
        /// Slow-window burn rate (≥ 1 at breach).
        burn_slow: f64,
    },
    /// Rule `rule` recovered (fast-window burn back under 1).
    Recover {
        /// Index of the recovered rule.
        rule: usize,
        /// Fast-window burn rate at recovery.
        burn_fast: f64,
    },
}

/// Point-in-time verdict for one rule, for gauges and run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// The rule's stable identifier.
    pub id: String,
    /// True while the rule is in breach.
    pub breached: bool,
    /// Most recent fast-window burn rate (0 before any data).
    pub burn_fast: f64,
    /// Most recent slow-window burn rate (0 before any data).
    pub burn_slow: f64,
    /// Total Ok→Breach transitions observed.
    pub breaches: u64,
    /// Total Breach→Ok transitions observed.
    pub recoveries: u64,
}

#[derive(Debug, Clone)]
struct RuleState {
    breached: bool,
    burn_fast: f64,
    burn_slow: f64,
    breaches: u64,
    recoveries: u64,
}

/// Evaluates a rule set against the tsdb and tracks breach state.
#[derive(Debug, Clone)]
pub struct SloEngine {
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
}

impl SloEngine {
    /// An engine over `rules` with every rule initially healthy.
    pub fn new(rules: Vec<SloRule>) -> Self {
        let states = rules
            .iter()
            .map(|_| RuleState {
                breached: false,
                burn_fast: 0.0,
                burn_slow: 0.0,
                breaches: 0,
                recoveries: 0,
            })
            .collect();
        SloEngine { rules, states }
    }

    /// The rule set, in [`SloTransition`] index order.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule at `now_ns` and returns the transitions that
    /// fired. Windows with no data yield no verdict: a rule cannot breach
    /// without both windows measured, and cannot recover without a fast
    /// window.
    pub fn evaluate(&mut self, tsdb: &Tsdb, now_ns: u64) -> Vec<SloTransition> {
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            let fast = rule.value(tsdb, rule.fast_window_ns, now_ns);
            let slow = rule.value(tsdb, rule.slow_window_ns, now_ns);
            let st = &mut self.states[i];
            if let Some(v) = fast {
                st.burn_fast = v / rule.threshold;
            }
            if let Some(v) = slow {
                st.burn_slow = v / rule.threshold;
            }
            if !st.breached {
                if let (Some(vf), Some(_)) = (fast, slow) {
                    if st.burn_fast >= 1.0 && st.burn_slow >= 1.0 {
                        st.breached = true;
                        st.breaches += 1;
                        out.push(SloTransition::Breach {
                            rule: i,
                            value: vf,
                            threshold: rule.threshold,
                            burn_fast: st.burn_fast,
                            burn_slow: st.burn_slow,
                        });
                    }
                }
            } else if fast.is_some() && st.burn_fast < 1.0 {
                st.breached = false;
                st.recoveries += 1;
                out.push(SloTransition::Recover {
                    rule: i,
                    burn_fast: st.burn_fast,
                });
            }
        }
        out
    }

    /// Current verdict per rule, in rule order.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.rules
            .iter()
            .zip(&self.states)
            .map(|(r, s)| SloStatus {
                id: r.id.clone(),
                breached: s.breached,
                burn_fast: s.burn_fast,
                burn_slow: s.burn_slow,
                breaches: s.breaches,
                recoveries: s.recoveries,
            })
            .collect()
    }

    /// True while any rule is in breach.
    pub fn any_breached(&self) -> bool {
        self.states.iter().any(|s| s.breached)
    }

    /// Total Ok→Breach transitions across all rules.
    pub fn total_breaches(&self) -> u64 {
        self.states.iter().map(|s| s.breaches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::{RollupSpec, SeriesKind, Tsdb, TsdbConfig};
    use crate::LatencyHistogram;

    fn tsdb() -> Tsdb {
        Tsdb::new(&TsdbConfig::with_resolutions(vec![RollupSpec {
            bucket_ns: SEC,
            len: 64,
        }]))
    }

    #[test]
    fn quantile_rule_breaches_and_recovers_on_fast_window() {
        let mut t = tsdb();
        let rule =
            SloRule::quantile_below("p99", "lat", 0.99, 100_000).with_windows_ms(3_000, 10_000);
        let mut eng = SloEngine::new(vec![rule]);
        // Healthy traffic: 1 µs decisions.
        let mut cum = LatencyHistogram::new();
        for s in 1..=3u64 {
            for _ in 0..50 {
                cum.record_ns(1_000);
            }
            t.record_histogram(s * SEC, "lat", &[], &cum);
        }
        assert!(eng.evaluate(&t, 3 * SEC).is_empty());
        assert!(!eng.any_breached());
        // Then a slow second: 1 ms decisions dominate the fast window.
        for s in 4..=6u64 {
            for _ in 0..500 {
                cum.record_ns(1_000_000);
            }
            t.record_histogram(s * SEC, "lat", &[], &cum);
        }
        let trans = eng.evaluate(&t, 6 * SEC);
        assert_eq!(trans.len(), 1);
        match trans[0] {
            SloTransition::Breach {
                rule,
                burn_fast,
                burn_slow,
                ..
            } => {
                assert_eq!(rule, 0);
                assert!(burn_fast >= 1.0 && burn_slow >= 1.0);
            }
            _ => panic!("expected breach"),
        }
        assert!(eng.any_breached());
        assert_eq!(eng.total_breaches(), 1);
        // No new data in the fast window -> still breached (no verdict).
        assert!(eng.evaluate(&t, 30 * SEC).is_empty());
        assert!(eng.any_breached());
        // Fresh fast traffic recovers it.
        for s in 31..=34u64 {
            for _ in 0..5_000 {
                cum.record_ns(1_000);
            }
            t.record_histogram(s * SEC, "lat", &[], &cum);
        }
        let trans = eng.evaluate(&t, 34 * SEC);
        assert!(matches!(trans[0], SloTransition::Recover { rule: 0, .. }));
        assert!(!eng.any_breached());
        let st = &eng.statuses()[0];
        assert_eq!((st.breaches, st.recoveries), (1, 1));
        assert!(st.burn_fast < 1.0);
    }

    #[test]
    fn ratio_rule_needs_denominator_and_slow_window() {
        let mut t = tsdb();
        let rule =
            SloRule::ratio_below("shed", "sheds", "decisions", 0.01).with_windows_ms(2_000, 8_000);
        let mut eng = SloEngine::new(vec![rule]);
        // No data at all: no verdict.
        assert!(eng.evaluate(&t, SEC).is_empty());
        // 5% shed rate sustained over both windows.
        for s in 0..=8u64 {
            t.record_scalar(
                s * SEC,
                "decisions",
                &[],
                SeriesKind::Counter,
                (s * 100) as f64,
            );
            t.record_scalar(s * SEC, "sheds", &[], SeriesKind::Counter, (s * 5) as f64);
        }
        let trans = eng.evaluate(&t, 8 * SEC);
        assert_eq!(trans.len(), 1);
        match trans[0] {
            SloTransition::Breach {
                value, threshold, ..
            } => {
                assert!((value - 0.05).abs() < 1e-9, "value {value}");
                assert!((threshold - 0.01).abs() < 1e-12);
            }
            _ => panic!("expected breach"),
        }
        let st = &eng.statuses()[0];
        assert!(st.breached && st.burn_fast >= 1.0);
    }

    #[test]
    fn gauge_rule_uses_window_max_and_burn_gauge_reports_ratio() {
        let mut t = tsdb();
        let rule = SloRule::gauge_below("drift", "pending", 4.0).with_windows_ms(2_000, 4_000);
        let mut eng = SloEngine::new(vec![rule]);
        for s in 0..=4u64 {
            t.record_scalar(s * SEC, "pending", &[], SeriesKind::Gauge, 2.0);
        }
        assert!(eng.evaluate(&t, 4 * SEC).is_empty());
        assert!((eng.statuses()[0].burn_fast - 0.5).abs() < 1e-12);
        t.record_scalar(5 * SEC, "pending", &[], SeriesKind::Gauge, 8.0);
        let trans = eng.evaluate(&t, 5 * SEC);
        assert_eq!(trans.len(), 1);
        assert!(eng.statuses()[0].burn_fast >= 2.0 - 1e-12);
        assert!(matches!(trans[0], SloTransition::Breach { .. }));
    }

    #[test]
    fn default_rules_cover_the_issue_objectives() {
        let rules = default_rules();
        let ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["decision_p99", "shed_ratio", "drift_pending"]);
        assert!(rules.iter().all(|r| r.fast_window_ns == 60 * SEC));
        assert!(rules.iter().all(|r| r.slow_window_ns == 1_800 * SEC));
    }
}
