//! Meyerson's randomized online facility location.
//!
//! For each arriving request at distance `d` from the nearest open
//! facility, a new facility is opened at the request with probability
//! `min(d / f, 1)`, otherwise the request is assigned to the nearest
//! facility. Meyerson (FOCS'01) shows this is O(1)-competitive on random
//! order streams and O(log n)-competitive adversarially; the paper uses it
//! as the main online baseline and §III-C shows it "tends to establish more
//! stations than ours but some of them are redundant".

use super::{Decision, OnlinePlacement};
use crate::PlacementCost;
use esharing_geo::{NearestNeighborIndex, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Meyerson's online facility location algorithm.
///
/// # Examples
///
/// ```
/// use esharing_geo::Point;
/// use esharing_placement::online::{Meyerson, OnlinePlacement};
///
/// let mut alg = Meyerson::new(5_000.0, 42);
/// let cost = alg.run((0..100).map(|i| Point::new((i * 37 % 1000) as f64, (i * 91 % 1000) as f64)));
/// assert!(cost.total() > 0.0);
/// assert!(!alg.stations().is_empty());
/// ```
#[derive(Debug)]
pub struct Meyerson {
    opening_cost: f64,
    index: NearestNeighborIndex,
    rng: StdRng,
    cost: PlacementCost,
}

impl Meyerson {
    /// Creates the algorithm with a uniform facility cost `f` (meters of
    /// equivalent walking distance) and an RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `opening_cost` is not positive and finite.
    pub fn new(opening_cost: f64, seed: u64) -> Self {
        assert!(
            opening_cost.is_finite() && opening_cost > 0.0,
            "opening cost must be positive"
        );
        Meyerson {
            opening_cost,
            index: NearestNeighborIndex::new(opening_cost.sqrt().max(50.0)),
            rng: StdRng::seed_from_u64(seed),
            cost: PlacementCost::ZERO,
        }
    }

    /// The uniform opening cost `f`.
    pub fn opening_cost(&self) -> f64 {
        self.opening_cost
    }
}

impl OnlinePlacement for Meyerson {
    fn handle(&mut self, destination: Point) -> Decision {
        match self.index.nearest(destination) {
            None => {
                // First request always opens.
                self.index.insert(destination);
                self.cost.space += self.opening_cost;
                Decision::Opened {
                    station: destination,
                }
            }
            Some((nearest, d)) => {
                let p = (d / self.opening_cost).min(1.0);
                if self.rng.gen_range(0.0..1.0) < p {
                    self.index.insert(destination);
                    self.cost.space += self.opening_cost;
                    Decision::Opened {
                        station: destination,
                    }
                } else {
                    self.cost.walking += d;
                    Decision::Assigned {
                        station: nearest,
                        walking: d,
                    }
                }
            }
        }
    }

    fn stations(&self) -> Vec<Point> {
        self.index.iter().collect()
    }

    fn cost(&self) -> PlacementCost {
        self.cost
    }

    fn name(&self) -> String {
        "Meyerson".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_stream(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    #[test]
    fn first_request_opens() {
        let mut alg = Meyerson::new(1000.0, 1);
        let d = alg.handle(Point::new(5.0, 5.0));
        assert!(d.opened());
        assert_eq!(alg.stations().len(), 1);
        assert_eq!(alg.cost().space, 1000.0);
        assert_eq!(alg.cost().walking, 0.0);
    }

    #[test]
    fn duplicate_requests_never_reopen() {
        let mut alg = Meyerson::new(1000.0, 2);
        let p = Point::new(5.0, 5.0);
        for _ in 0..50 {
            alg.handle(p);
        }
        // d = 0 after the first open, so the opening probability is 0.
        assert_eq!(alg.stations().len(), 1);
        assert_eq!(alg.cost().walking, 0.0);
    }

    #[test]
    fn far_requests_open_deterministically() {
        // d > f forces probability 1.
        let mut alg = Meyerson::new(100.0, 3);
        alg.handle(Point::new(0.0, 0.0));
        let d = alg.handle(Point::new(10_000.0, 0.0));
        assert!(d.opened());
        assert_eq!(alg.stations().len(), 2);
    }

    #[test]
    fn accumulates_consistent_cost() {
        let mut alg = Meyerson::new(5000.0, 4);
        let stream = uniform_stream(200, 1000.0, 5);
        let mut expected = PlacementCost::ZERO;
        for &p in &stream {
            match alg.handle(p) {
                Decision::Opened { .. } => expected.space += 5000.0,
                Decision::Assigned { walking, .. } => expected.walking += walking,
            }
        }
        assert_eq!(alg.cost(), expected);
        assert_eq!(
            alg.stations().len(),
            (expected.space / 5000.0).round() as usize
        );
    }

    #[test]
    fn matches_paper_scale_on_fig4b_setup() {
        // Fig. 4(b): 100 random arrivals in 1000x1000 m with f = 5000 m ->
        // ~9 stations, total ~65k (i.e. noticeably worse than offline).
        let mut counts = Vec::new();
        let mut totals = Vec::new();
        for seed in 0..20 {
            let mut alg = Meyerson::new(5000.0, seed);
            let cost = alg.run(uniform_stream(100, 1000.0, 1000 + seed));
            counts.push(alg.stations().len());
            totals.push(cost.total());
        }
        let mean_count = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let mean_total = totals.iter().sum::<f64>() / totals.len() as f64;
        assert!(
            (6.0..=14.0).contains(&mean_count),
            "mean station count {mean_count} outside Fig 4(b) band"
        );
        assert!(
            (45_000.0..=90_000.0).contains(&mean_total),
            "mean total {mean_total} outside Fig 4(b) band"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = uniform_stream(100, 500.0, 6);
        let mut a = Meyerson::new(2000.0, 9);
        let mut b = Meyerson::new(2000.0, 9);
        assert_eq!(a.run(stream.iter().copied()), b.run(stream.iter().copied()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_cost() {
        let _ = Meyerson::new(0.0, 1);
    }
}
