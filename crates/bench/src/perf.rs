//! Machine-readable perf-trajectory emitter.
//!
//! Every Criterion bench group and headline experiment binary writes a
//! `BENCH_<name>.json` file at the repository root summarising its hot-path
//! timings (median wall-clock nanoseconds, instance size, derived
//! throughput). The files are committed with each PR so the performance
//! trajectory of the kernels can be diffed across revisions without
//! re-running the benches.
//!
//! The JSON is emitted by hand — the workspace deliberately carries no JSON
//! dependency — and kept flat so `jq`-style tooling and plain diffing both
//! work:
//!
//! ```json
//! {
//!   "bench": "placement",
//!   "generated_unix_ms": 1722945712345,
//!   "threads": 8,
//!   "records": [
//!     { "name": "jms_greedy", "instance_size": 400, "iters": 5,
//!       "median_ns": 1234567, "throughput_per_s": 324.1 }
//!   ]
//! }
//! ```
//!
//! Speedups are read by comparing a fast kernel's row against its
//! `*_reference` row at the same `instance_size`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One timed kernel at one instance size.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Kernel or phase name (e.g. `jms_greedy`, `offline_solve`).
    pub name: String,
    /// Problem-size parameter the timing was taken at (clients, sample
    /// points, …); `0` when not meaningful.
    pub instance_size: usize,
    /// Number of timed iterations the median was taken over.
    pub iters: usize,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u128,
    /// `instance_size` elements per second at the median, when
    /// `instance_size > 0`.
    pub throughput_per_s: Option<f64>,
}

/// Collects [`PerfRecord`]s and writes `BENCH_<name>.json` at the repo root.
#[derive(Debug)]
pub struct PerfEmitter {
    bench: String,
    records: Vec<PerfRecord>,
}

impl PerfEmitter {
    /// New emitter for the bench group `bench` (names the output file).
    pub fn new(bench: &str) -> Self {
        PerfEmitter {
            bench: bench.to_string(),
            records: Vec::new(),
        }
    }

    /// Times `f` over `iters` runs (after one untimed warm-up) and records
    /// the median. Returns the median duration.
    ///
    /// # Panics
    ///
    /// Panics if `iters` is zero.
    pub fn measure<T, F: FnMut() -> T>(
        &mut self,
        name: &str,
        instance_size: usize,
        iters: usize,
        mut f: F,
    ) -> Duration {
        assert!(iters > 0, "need at least one timed iteration");
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        self.push(name, instance_size, iters, median);
        median
    }

    /// Records an externally measured duration (e.g. a whole experiment
    /// phase timed once).
    pub fn record_duration(&mut self, name: &str, instance_size: usize, elapsed: Duration) {
        self.push(name, instance_size, 1, elapsed);
    }

    fn push(&mut self, name: &str, instance_size: usize, iters: usize, median: Duration) {
        let median_ns = median.as_nanos();
        let throughput_per_s = if instance_size > 0 && median_ns > 0 {
            Some(instance_size as f64 / median.as_secs_f64())
        } else {
            None
        };
        self.records.push(PerfRecord {
            name: name.to_string(),
            instance_size,
            iters,
            median_ns,
            throughput_per_s,
        });
    }

    /// The records collected so far.
    pub fn records(&self) -> &[PerfRecord] {
        &self.records
    }

    /// Serialises the records to the flat JSON document described in the
    /// module docs.
    pub fn to_json(&self) -> String {
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let threads = esharing_stats::parallel::num_threads();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.bench)));
        out.push_str(&format!("  \"generated_unix_ms\": {now_ms},\n"));
        out.push_str(&format!("  \"threads\": {threads},\n"));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let throughput = match r.throughput_per_s {
                Some(t) if t.is_finite() => format!("{t:.1}"),
                _ => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{ \"name\": {}, \"instance_size\": {}, \"iters\": {}, \"median_ns\": {}, \"throughput_per_s\": {} }}{}\n",
                json_string(&r.name),
                r.instance_size,
                r.iters,
                r.median_ns,
                throughput,
                if i + 1 < self.records.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<bench>.json` and returns the path written.
    ///
    /// The file lands at the repository root, or in `$ESHARING_BENCH_DIR`
    /// when that variable is set — which is how CI smoke runs emit (and
    /// then validate) the JSON without clobbering the committed trajectory
    /// files.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("ESHARING_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(repo_root);
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The workspace root: two levels above this crate's manifest, falling back
/// to the current directory when the compile-time path no longer exists
/// (e.g. a relocated binary).
fn repo_root() -> PathBuf {
    let compiled = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled.is_dir() {
        compiled.canonicalize().unwrap_or(compiled)
    } else {
        PathBuf::from(".")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_median() {
        let mut emitter = PerfEmitter::new("unit");
        let d = emitter.measure("spin", 100, 3, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        assert!(d.as_nanos() > 0);
        assert_eq!(emitter.records().len(), 1);
        let r = &emitter.records()[0];
        assert_eq!(r.name, "spin");
        assert_eq!(r.instance_size, 100);
        assert_eq!(r.iters, 3);
        assert!(r.throughput_per_s.unwrap() > 0.0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut emitter = PerfEmitter::new("unit");
        emitter.record_duration("phase_a", 0, Duration::from_micros(1500));
        emitter.record_duration("phase_b", 42, Duration::from_micros(2500));
        let json = emitter.to_json();
        assert!(json.contains("\"bench\": \"unit\""));
        assert!(json.contains("\"name\": \"phase_a\""));
        assert!(json.contains("\"median_ns\": 1500000"));
        assert!(json.contains("\"instance_size\": 42"));
        // phase_a has no size -> null throughput; phase_b has one.
        assert!(json.contains("\"throughput_per_s\": null"));
        assert_eq!(json.matches("{ \"name\":").count(), 2);
    }

    #[test]
    fn json_escapes_names() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn repo_root_exists() {
        assert!(repo_root().is_dir());
    }
}
