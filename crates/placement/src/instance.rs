//! The PLP problem instance and solutions over it.

use crate::PlacementCost;
use esharing_geo::Point;
use serde::{Deserialize, Serialize};

/// A Parking Location Placement instance.
///
/// Clients are grid centroids with arrival weights `a_j`; candidate
/// facility sites coincide with the client sites (the paper selects
/// `P ⊆ N` among the grid locations). Connection cost is
/// `c_ij = a_j · d(i, j)` and opening site `i` costs `f_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlpInstance {
    clients: Vec<Point>,
    weights: Vec<f64>,
    opening_costs: Vec<f64>,
}

impl PlpInstance {
    /// Instance with unit client weights and a uniform opening cost.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty or `opening_cost` is not positive and
    /// finite.
    pub fn with_uniform_cost(clients: Vec<Point>, opening_cost: f64) -> Self {
        let n = clients.len();
        Self::new(clients, vec![1.0; n], vec![opening_cost; n])
    }

    /// Fully general instance.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have mismatched lengths, are empty, or contain
    /// non-positive/non-finite weights or opening costs.
    pub fn new(clients: Vec<Point>, weights: Vec<f64>, opening_costs: Vec<f64>) -> Self {
        assert!(!clients.is_empty(), "instance needs at least one client");
        assert_eq!(clients.len(), weights.len(), "weights length mismatch");
        assert_eq!(
            clients.len(),
            opening_costs.len(),
            "opening costs length mismatch"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        assert!(
            opening_costs.iter().all(|f| f.is_finite() && *f > 0.0),
            "opening costs must be positive and finite"
        );
        assert!(
            clients.iter().all(|p| p.is_finite()),
            "client locations must be finite"
        );
        PlpInstance {
            clients,
            weights,
            opening_costs,
        }
    }

    /// Builds an instance from `(centroid, arrival_count)` pairs (the
    /// output of grid binning) and a uniform opening cost.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PlpInstance::new`].
    pub fn from_weighted_centroids(pairs: &[(Point, u64)], opening_cost: f64) -> Self {
        let clients: Vec<Point> = pairs.iter().map(|&(p, _)| p).collect();
        let weights: Vec<f64> = pairs.iter().map(|&(_, w)| w.max(1) as f64).collect();
        let n = clients.len();
        Self::new(clients, weights, vec![opening_cost; n])
    }

    /// Number of clients (= candidate sites).
    #[inline]
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the instance is empty (never true once constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Client locations.
    pub fn clients(&self) -> &[Point] {
        &self.clients
    }

    /// Arrival weights `a_j`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Opening costs `f_i` per candidate site.
    pub fn opening_costs(&self) -> &[f64] {
        &self.opening_costs
    }

    /// Connection cost `c_ij = a_j · d(i, j)` between candidate site `i`
    /// and client `j`.
    #[inline]
    pub fn connection_cost(&self, site: usize, client: usize) -> f64 {
        self.weights[client] * self.clients[site].distance(self.clients[client])
    }

    /// Evaluates a solution: each client pays the connection cost to its
    /// assigned facility, each distinct open facility pays its opening
    /// cost.
    ///
    /// # Panics
    ///
    /// Panics if the solution's shape does not match the instance.
    pub fn cost_of(&self, solution: &Solution) -> PlacementCost {
        assert_eq!(
            solution.assignment.len(),
            self.clients.len(),
            "assignment length mismatch"
        );
        let mut walking = 0.0;
        for (client, &fac) in solution.assignment.iter().enumerate() {
            assert!(
                solution.open.contains(&fac),
                "client {client} assigned to closed facility {fac}"
            );
            walking += self.connection_cost(fac, client);
        }
        let space: f64 = solution.open.iter().map(|&i| self.opening_costs[i]).sum();
        PlacementCost { walking, space }
    }

    /// The best achievable cost for a *given* set of open sites: assigns
    /// every client to its nearest open facility.
    ///
    /// # Panics
    ///
    /// Panics if `open` is empty or contains out-of-range indices.
    pub fn assign_nearest(&self, open: &[usize]) -> Solution {
        assert!(!open.is_empty(), "need at least one open facility");
        let assignment: Vec<usize> = self
            .clients
            .iter()
            .map(|&c| {
                *open
                    .iter()
                    .min_by(|&&a, &&b| {
                        let da = self.clients[a].distance(c);
                        let db = self.clients[b].distance(c);
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("non-empty open set")
            })
            .collect();
        Solution {
            open: open.to_vec(),
            assignment,
        }
    }
}

/// A feasible PLP solution: the set of open candidate-site indices and a
/// per-client assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// Indices of open facilities (candidate sites).
    pub open: Vec<usize>,
    /// `assignment[j]` = open facility serving client `j`.
    pub assignment: Vec<usize>,
}

impl Solution {
    /// Indices of the open facilities.
    pub fn open_facilities(&self) -> &[usize] {
        &self.open
    }

    /// Locations of the open facilities within `instance`.
    pub fn facility_points(&self, instance: &PlpInstance) -> Vec<Point> {
        self.open.iter().map(|&i| instance.clients()[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_instance() -> PlpInstance {
        PlpInstance::with_uniform_cost(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(0.0, 100.0),
                Point::new(100.0, 100.0),
            ],
            50.0,
        )
    }

    #[test]
    fn construction_validations() {
        assert_eq!(square_instance().len(), 4);
        assert!(!square_instance().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_clients_panic() {
        let _ = PlpInstance::with_uniform_cost(vec![], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_opening_cost_panics() {
        let _ = PlpInstance::with_uniform_cost(vec![Point::ORIGIN], 0.0);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn negative_weight_panics() {
        let _ = PlpInstance::new(vec![Point::ORIGIN], vec![-1.0], vec![1.0]);
    }

    #[test]
    fn connection_cost_weighted() {
        let inst = PlpInstance::new(
            vec![Point::new(0.0, 0.0), Point::new(30.0, 40.0)],
            vec![1.0, 3.0],
            vec![10.0, 10.0],
        );
        assert_eq!(inst.connection_cost(0, 1), 150.0); // 3 * 50
        assert_eq!(inst.connection_cost(1, 0), 50.0); // 1 * 50
        assert_eq!(inst.connection_cost(0, 0), 0.0);
    }

    #[test]
    fn cost_of_single_facility() {
        let inst = square_instance();
        let sol = inst.assign_nearest(&[0]);
        let cost = inst.cost_of(&sol);
        assert_eq!(cost.space, 50.0);
        // Distances: 0 + 100 + 100 + 141.42.
        assert!((cost.walking - (200.0 + 100.0 * 2f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn assign_nearest_is_optimal_assignment() {
        let inst = square_instance();
        let sol = inst.assign_nearest(&[0, 3]);
        assert_eq!(sol.assignment[0], 0);
        assert_eq!(sol.assignment[3], 3);
        // Corner clients split between the two diagonal facilities.
        let cost = inst.cost_of(&sol);
        assert_eq!(cost.space, 100.0);
        assert_eq!(cost.walking, 200.0);
    }

    #[test]
    #[should_panic(expected = "closed facility")]
    fn cost_rejects_assignment_to_closed() {
        let inst = square_instance();
        let bad = Solution {
            open: vec![0],
            assignment: vec![0, 0, 0, 3],
        };
        let _ = inst.cost_of(&bad);
    }

    #[test]
    fn from_weighted_centroids_clamps_zero() {
        let inst = PlpInstance::from_weighted_centroids(
            &[(Point::ORIGIN, 0), (Point::new(1.0, 0.0), 5)],
            10.0,
        );
        assert_eq!(inst.weights(), &[1.0, 5.0]);
    }

    #[test]
    fn facility_points_map_indices() {
        let inst = square_instance();
        let sol = inst.assign_nearest(&[1, 2]);
        let pts = sol.facility_points(&inst);
        assert_eq!(pts, vec![Point::new(100.0, 0.0), Point::new(0.0, 100.0)]);
    }
}
