//! Fig. 4 — Examples of solving PLP: offline 1.61-factor algorithm vs
//! Meyerson's online algorithm.
//!
//! Reproduces the paper's illustrative experiment: "A stream of 100 random
//! arrivals in a square field (1000 × 1000 m²)" with a space-occupation
//! cost of 5 000 m per station. The paper reports the offline algorithm
//! opening 5 stations (walking 16 795, space 25 000, total 41 795) and the
//! online algorithm 9 stations (25 400 / 40 000 / 65 400, a 56% increase).
//! Absolute values depend on the random draw; the harness prints both a
//! single-draw example (seeded) and a 50-draw average so the gap is
//! visible beyond noise.

use esharing_bench::table::{f1, Table};
use esharing_geo::Point;
use esharing_placement::online::{Meyerson, OnlinePlacement};
use esharing_placement::{offline, PlpInstance};
use esharing_stats::RunningStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIELD: f64 = 1_000.0;
const ARRIVALS: usize = 100;
const SPACE_COST: f64 = 5_000.0;

fn arrivals(seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ARRIVALS)
        .map(|_| Point::new(rng.gen_range(0.0..FIELD), rng.gen_range(0.0..FIELD)))
        .collect()
}

fn main() {
    println!("Fig. 4 — offline 1.61-factor vs Meyerson online (100 arrivals, 1km^2, f = {SPACE_COST} m)\n");

    // (a)/(b): one representative draw.
    let stream = arrivals(4);
    let instance = PlpInstance::with_uniform_cost(stream.clone(), SPACE_COST);
    let off = offline::jms_greedy(&instance);
    let off_cost = instance.cost_of(&off);
    let mut meyerson = Meyerson::new(SPACE_COST, 4);
    let on_cost = meyerson.run(stream.iter().copied());

    let mut t = Table::new(vec![
        "algorithm".into(),
        "# parking".into(),
        "walking".into(),
        "space".into(),
        "total".into(),
    ]);
    t.row(vec![
        "Offline (Fig 4a)".into(),
        off.open_facilities().len().to_string(),
        f1(off_cost.walking),
        f1(off_cost.space),
        f1(off_cost.total()),
    ]);
    t.row(vec![
        "Meyerson (Fig 4b)".into(),
        meyerson.stations().len().to_string(),
        f1(on_cost.walking),
        f1(on_cost.space),
        f1(on_cost.total()),
    ]);
    println!("{t}");
    println!(
        "single-draw online/offline total cost increase: {:.0}%  (paper: 56%)\n",
        100.0 * (on_cost.total() - off_cost.total()) / off_cost.total()
    );

    // Averaged over 50 draws.
    let mut off_total = RunningStats::new();
    let mut on_total = RunningStats::new();
    let mut off_parking = RunningStats::new();
    let mut on_parking = RunningStats::new();
    for seed in 0..50 {
        let stream = arrivals(1_000 + seed);
        let instance = PlpInstance::with_uniform_cost(stream.clone(), SPACE_COST);
        let off = offline::jms_greedy(&instance);
        off_total.push(instance.cost_of(&off).total());
        off_parking.push(off.open_facilities().len() as f64);
        let mut meyerson = Meyerson::new(SPACE_COST, seed);
        let c = meyerson.run(stream.iter().copied());
        on_total.push(c.total());
        on_parking.push(meyerson.stations().len() as f64);
    }
    println!("50-draw averages:");
    println!(
        "  offline : {:.1} parking, total {:.0}",
        off_parking.mean(),
        off_total.mean()
    );
    println!(
        "  meyerson: {:.1} parking, total {:.0}",
        on_parking.mean(),
        on_total.mean()
    );
    println!(
        "  mean online cost increase: {:.0}%  (paper: 56%)",
        100.0 * (on_total.mean() - off_total.mean()) / off_total.mean()
    );
}
