//! Engine scaling — sharded serving engine vs. the single-worker request
//! server on a replayed synthetic-city trip stream.
//!
//! Both backends emulate the same downstream dependency: `--delay-us` of
//! off-CPU service time per request (persistence, push notification). The
//! single-worker server blocks its only thread on each call, so every
//! request pays the delay, the thread wake-up latency, and the decision
//! compute serially. Each engine shard instead drives its own downstream
//! channel as a FIFO pipe — queued requests issue back-to-back and the
//! decision compute hides inside the fetch window — and sharding
//! multiplies the channels. The replay stream is real day-1 drop-offs,
//! interleaved round-robin across the 8-way grid zones so every shard
//! sees an equal share (peak-capacity workload; zone counts nest, so the
//! same stream is balanced for 1, 2, 4 and 8 shards).
//!
//! Emits `BENCH_engine.json` at the repo root (throughput plus
//! p50/p99/p99.9 client latency per backend, and per-shard worker-side
//! arrival → decision quantiles from the shard latency histograms) and
//! dumps the final fleet snapshot of the widest engine run to
//! `results/engine_snapshot.json`. Setting `ESHARING_BENCH_DIR` redirects
//! the JSON (including in `--smoke` mode, which otherwise skips it).
//!
//! Usage: `exp_engine [--smoke] [--requests N] [--delay-us D]
//!                    [--clients C] [--shards S1,S2,...]`
//!
//! `--smoke` shrinks the run and skips the artifact writes (CI mode).

use esharing_bench::perf::PerfEmitter;
use esharing_bench::Table;
use esharing_core::server::{RequestServer, ServerConfig};
use esharing_core::{ESharing, SystemConfig};
use esharing_dataset::{destinations, CityConfig, SyntheticCity, TripGenerator};
use esharing_engine::replay::{replay, ReplayConfig, ReplayReport};
use esharing_engine::{Engine, EngineConfig, Partition, ShardMap};
use esharing_geo::{BBox, Point};
use std::time::Duration;

/// The stream is balanced across this many grid zones; the shard counts
/// under test must divide it for the nesting argument to hold.
const BALANCE_ZONES: usize = 8;

struct Args {
    smoke: bool,
    requests: usize,
    delay: Duration,
    clients: usize,
    shards: Vec<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        requests: 4_000,
        delay: Duration::from_micros(300),
        clients: 16,
        shards: vec![1, 2, 8],
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.requests = 320;
                args.clients = 8;
                args.delay = Duration::from_micros(200);
            }
            "--requests" => args.requests = value("--requests").parse().expect("--requests N"),
            "--delay-us" => {
                args.delay =
                    Duration::from_micros(value("--delay-us").parse().expect("--delay-us D"))
            }
            "--clients" => args.clients = value("--clients").parse().expect("--clients C"),
            "--shards" => {
                args.shards = value("--shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards S1,S2,..."))
                    .collect()
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Buckets day ≥ 1 drop-offs by `BALANCE_ZONES`-way grid zone and
/// interleaves the buckets round-robin until `target` destinations, so the
/// offered load splits evenly across every nested shard count.
fn balanced_stream(gen: &mut TripGenerator, map: &ShardMap, target: usize) -> Vec<Point> {
    let per_zone = target.div_ceil(BALANCE_ZONES);
    let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); BALANCE_ZONES];
    for day in 1..14 {
        for p in destinations(&gen.generate_days(day, 1)) {
            let z = map.shard_of(p);
            if buckets[z].len() < per_zone {
                buckets[z].push(p);
            }
        }
        if buckets.iter().all(|b| b.len() >= per_zone) {
            break;
        }
    }
    let depth = buckets.iter().map(Vec::len).min().expect("zones exist");
    assert!(depth > 0, "a grid zone saw no demand in two weeks of trips");
    let mut out = Vec::with_capacity(depth * BALANCE_ZONES);
    for i in 0..depth {
        for bucket in &buckets {
            out.push(bucket[i]);
        }
    }
    out
}

fn run_server(
    history: &[Point],
    stream: &[Point],
    delay: Duration,
    clients: usize,
) -> ReplayReport {
    let mut system = ESharing::new(SystemConfig::default());
    system.bootstrap(history);
    let server = RequestServer::start_with(
        system,
        ServerConfig {
            service_delay: delay,
            ..ServerConfig::default()
        },
    );
    let handle = server.handle();
    let report = replay(
        &handle,
        stream,
        &ReplayConfig {
            clients,
            rate_per_s: None,
        },
    );
    let _ = server.shutdown();
    report
}

fn start_engine(history: &[Point], shards: usize, delay: Duration) -> Engine {
    Engine::start(
        history,
        EngineConfig {
            shards,
            partition: Partition::UniformGrid,
            service_delay: delay,
            system: SystemConfig::default(),
            ..EngineConfig::default()
        },
    )
}

fn record(emitter: &mut PerfEmitter, name: &str, report: &ReplayReport) {
    emitter.record_duration(name, report.served as usize, report.elapsed);
    emitter.record_duration(
        &format!("{name}_p50"),
        0,
        Duration::from_micros(report.latency.p50_us),
    );
    emitter.record_duration(
        &format!("{name}_p99"),
        0,
        Duration::from_micros(report.latency.p99_us),
    );
    emitter.record_duration(
        &format!("{name}_p999"),
        0,
        Duration::from_micros(report.latency.p999_us),
    );
}

fn main() {
    let args = parse_args();
    for &s in &args.shards {
        assert!(
            s > 0 && BALANCE_ZONES % s == 0,
            "shard counts must divide {BALANCE_ZONES} so the balanced stream nests (got {s})"
        );
    }

    let city = SyntheticCity::generate(&CityConfig::default());
    let mut gen = TripGenerator::new(&city, 2017);
    let history = destinations(&gen.generate_days(0, 1));
    let bbox = BBox::from_points(history.iter().copied()).expect("non-empty history");
    let map = ShardMap::uniform(bbox, BALANCE_ZONES);
    let stream = balanced_stream(&mut gen, &map, args.requests);
    println!(
        "engine scaling — {} replayed requests, {} clients, {} µs emulated service delay",
        stream.len(),
        args.clients,
        args.delay.as_micros()
    );

    let mut emitter = PerfEmitter::new("engine");
    let mut table = Table::new(vec![
        "backend".into(),
        "req/s".into(),
        "speedup".into(),
        "p50 ms".into(),
        "p99 ms".into(),
        "p99.9 ms".into(),
        "degraded".into(),
    ]);

    let base = run_server(&history, &stream, args.delay, args.clients);
    record(&mut emitter, "request_server", &base);
    let base_rate = base.served_per_s();
    table.row(vec![
        "request_server".into(),
        format!("{base_rate:.0}"),
        "1.00x".into(),
        format!("{:.2}", base.latency.p50_us as f64 / 1_000.0),
        format!("{:.2}", base.latency.p99_us as f64 / 1_000.0),
        format!("{:.2}", base.latency.p999_us as f64 / 1_000.0),
        format!("{}", base.degraded),
    ]);

    let mut widest_snapshot = None;
    let mut widest = 0usize;
    for &shards in &args.shards {
        let engine = start_engine(&history, shards, args.delay);
        let report = replay(
            &engine,
            &stream,
            &ReplayConfig {
                clients: args.clients,
                rate_per_s: None,
            },
        );
        let name = format!("engine_s{shards}");
        record(&mut emitter, &name, &report);
        let rate = report.served_per_s();
        table.row(vec![
            name.clone(),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate),
            format!("{:.2}", report.latency.p50_us as f64 / 1_000.0),
            format!("{:.2}", report.latency.p99_us as f64 / 1_000.0),
            format!("{:.2}", report.latency.p999_us as f64 / 1_000.0),
            format!("{}", report.degraded),
        ]);
        // Worker-side arrival → decision quantiles, per shard, from the
        // shard histograms (the client-side summary above includes reply
        // transit; these isolate the serving path).
        let snapshot = engine.snapshot().expect("engine is running");
        for s in &snapshot.shards {
            let lat = &s.server.latency;
            for (suffix, ns) in [
                ("p50", lat.p50_ns()),
                ("p99", lat.p99_ns()),
                ("p999", lat.p999_ns()),
            ] {
                emitter.record_duration(
                    &format!("{name}_shard{}_{suffix}", s.shard),
                    0,
                    Duration::from_nanos(ns),
                );
            }
        }
        if shards >= widest {
            widest = shards;
            widest_snapshot = Some(snapshot);
        }
        let _ = engine.shutdown();
    }
    println!("{table}");
    println!(
        "the single worker blocks on every {} µs downstream call, paying wake-up\n\
         latency and decision compute serially; each shard pipelines its own\n\
         downstream channel (back-to-back issue, compute hidden in the fetch\n\
         window), so requests/sec scales with the shard count.",
        args.delay.as_micros()
    );

    if args.smoke && std::env::var_os("ESHARING_BENCH_DIR").is_none() {
        println!("smoke mode: skipping BENCH_engine.json / snapshot dump");
        return;
    }
    let path = emitter.write().expect("write BENCH_engine.json");
    println!("wrote {}", path.display());
    if args.smoke {
        println!("smoke mode: skipping snapshot dump");
        return;
    }
    if let Some(snapshot) = widest_snapshot {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let out = dir.join("engine_snapshot.json");
        if std::fs::write(&out, snapshot.to_json()).is_ok() {
            println!("wrote {}", out.display());
        }
    }
}
