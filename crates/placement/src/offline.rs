//! The 1.61-factor offline placement algorithm (Algorithm 1).
//!
//! This is the greedy facility-location algorithm of Jain, Mahdian,
//! Markakis, Saberi & Vazirani (JACM 2003), analyzed by dual fitting to a
//! 1.61 approximation factor — "very close to the theoretical
//! inapproximation bound 1.46" (§III-B). At every step it selects the
//! candidate site `i*` with the smallest *average* marginal cost
//!
//! ```text
//! i* = argmin_i [ Σ_{j∈B_i} c_ij + f_i − Σ_{j∈B'_i} (c_{i'j} − c_ij) ] / |B_i|
//! ```
//!
//! where `B_i` is an optimally chosen set of still-unconnected clients and
//! `B'_i` the already-connected clients that would *save* cost by switching
//! from their current facility `i'` to `i` (the switching credit reduces
//! `i`'s effective opening cost). Already-open facilities can absorb more
//! clients at zero reopening cost. The loop ends when every client is
//! connected; a final pass drops facilities that lost all their clients to
//! switches and reassigns every client to its nearest open facility (both
//! steps only reduce cost).

use crate::{PlpInstance, Solution};

/// Runs Algorithm 1 on `instance` and returns the greedy solution.
///
/// Runs in `O(n³ log n)` time for `n` clients, matching the `O(N³)` bound
/// stated in the paper.
///
/// # Examples
///
/// ```
/// use esharing_geo::Point;
/// use esharing_placement::{offline, PlpInstance};
///
/// let instance = PlpInstance::with_uniform_cost(
///     vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(900.0, 0.0)],
///     10.0,
/// );
/// let solution = offline::jms_greedy(&instance);
/// // The two nearby clients share one parking; the distant one gets its own.
/// assert_eq!(solution.open_facilities().len(), 2);
/// ```
pub fn jms_greedy(instance: &PlpInstance) -> Solution {
    let n = instance.len();
    let mut connected: Vec<Option<usize>> = vec![None; n]; // client -> facility
    let mut open = vec![false; n];
    let mut unconnected: Vec<usize> = (0..n).collect();

    while !unconnected.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, site, prefix len)
        for site in 0..n {
            let effective_f = if open[site] {
                0.0
            } else {
                instance.opening_costs()[site]
            };
            // Switching credit from already-connected clients.
            let mut credit = 0.0;
            for (client, conn) in connected.iter().enumerate() {
                if let Some(current) = conn {
                    let now = instance.connection_cost(*current, client);
                    let alt = instance.connection_cost(site, client);
                    if alt < now {
                        credit += now - alt;
                    }
                }
            }
            // Optimal unconnected prefix by ascending connection cost.
            let mut costs: Vec<f64> = unconnected
                .iter()
                .map(|&j| instance.connection_cost(site, j))
                .collect();
            costs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite costs"));
            let mut running = effective_f - credit;
            for (k, c) in costs.iter().enumerate() {
                running += c;
                let ratio = running / (k + 1) as f64;
                if best.map_or(true, |(b, _, _)| ratio < b) {
                    best = Some((ratio, site, k + 1));
                }
            }
        }
        let (_, site, prefix) = best.expect("unconnected set is non-empty");
        // Deploy: connect the `prefix` cheapest unconnected clients and
        // switch every connected client that saves by moving.
        open[site] = true;
        let mut ordered: Vec<usize> = unconnected.clone();
        ordered.sort_unstable_by(|&a, &b| {
            instance
                .connection_cost(site, a)
                .partial_cmp(&instance.connection_cost(site, b))
                .expect("finite costs")
        });
        for &client in ordered.iter().take(prefix) {
            connected[client] = Some(site);
        }
        for (client, conn) in connected.iter_mut().enumerate() {
            if let Some(current) = conn {
                if instance.connection_cost(site, client)
                    < instance.connection_cost(*current, client)
                {
                    *conn = Some(site);
                }
            }
        }
        unconnected.retain(|&j| connected[j].is_none());
    }

    // Keep only facilities still serving someone, then let every client
    // take its nearest open facility (both steps are cost-non-increasing).
    let mut serving = vec![false; n];
    for conn in connected.iter().flatten() {
        serving[*conn] = true;
    }
    let open_sites: Vec<usize> = (0..n).filter(|&i| open[i] && serving[i]).collect();
    instance.assign_nearest(&open_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    /// Exhaustive optimum by enumerating every subset of open sites
    /// (only usable for tiny instances).
    fn brute_force_optimum(instance: &PlpInstance) -> f64 {
        let n = instance.len();
        assert!(n <= 12, "brute force only for tiny instances");
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) {
            let open: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            let sol = instance.assign_nearest(&open);
            best = best.min(instance.cost_of(&sol).total());
        }
        best
    }

    #[test]
    fn single_client_opens_its_site() {
        let inst = PlpInstance::with_uniform_cost(vec![Point::new(5.0, 5.0)], 10.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities(), &[0]);
        assert_eq!(inst.cost_of(&sol).walking, 0.0);
        assert_eq!(inst.cost_of(&sol).space, 10.0);
    }

    #[test]
    fn clusters_get_one_facility_each() {
        let mut clients = Vec::new();
        for cluster in 0..3 {
            let cx = cluster as f64 * 2000.0;
            for k in 0..5 {
                clients.push(Point::new(cx + k as f64 * 10.0, 0.0));
            }
        }
        let inst = PlpInstance::with_uniform_cost(clients, 300.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 3);
        // Every client within its own cluster.
        let cost = inst.cost_of(&sol);
        assert!(cost.walking < 5.0 * 3.0 * 40.0);
    }

    #[test]
    fn expensive_opening_collapses_to_one() {
        let clients = uniform_points(20, 100.0, 1);
        let inst = PlpInstance::with_uniform_cost(clients, 1e7);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 1);
    }

    #[test]
    fn cheap_opening_opens_everywhere() {
        let clients = uniform_points(15, 10_000.0, 2);
        let inst = PlpInstance::with_uniform_cost(clients, 1e-3);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.open_facilities().len(), 15);
        assert_eq!(inst.cost_of(&sol).walking, 0.0);
    }

    #[test]
    fn every_client_assigned_to_open_facility() {
        let clients = uniform_points(60, 1000.0, 3);
        let inst = PlpInstance::with_uniform_cost(clients, 800.0);
        let sol = jms_greedy(&inst);
        assert_eq!(sol.assignment.len(), 60);
        for &f in &sol.assignment {
            assert!(sol.open.contains(&f));
        }
        // Nearest-assignment invariant.
        for (j, &f) in sol.assignment.iter().enumerate() {
            let d = inst.clients()[f].distance(inst.clients()[j]);
            for &o in &sol.open {
                assert!(
                    inst.clients()[o].distance(inst.clients()[j]) >= d - 1e-9,
                    "client {j} not at nearest facility"
                );
            }
        }
    }

    #[test]
    fn within_factor_of_bruteforce_optimum() {
        // The 1.61 guarantee, with slack for the final reassignment: check
        // against exhaustive optima on several tiny random instances.
        for seed in 0..6 {
            let clients = uniform_points(9, 500.0, 100 + seed);
            let inst = PlpInstance::with_uniform_cost(clients, 150.0);
            let greedy = inst.cost_of(&jms_greedy(&inst)).total();
            let opt = brute_force_optimum(&inst);
            assert!(
                greedy <= 1.61 * opt + 1e-9,
                "seed {seed}: greedy {greedy} vs opt {opt}"
            );
            assert!(greedy >= opt - 1e-9);
        }
    }

    #[test]
    fn weighted_clients_pull_facilities() {
        // With one facility worth opening, the greedy places it at the
        // heavy client's site: serving the heavy client remotely would
        // cost 50 x 300 = 15000, serving the light one costs 300.
        let clients = vec![Point::new(0.0, 0.0), Point::new(300.0, 0.0)];
        let light = PlpInstance::new(clients.clone(), vec![1.0, 1.0], vec![400.0, 400.0]);
        let heavy = PlpInstance::new(clients, vec![1.0, 50.0], vec![400.0, 400.0]);
        assert_eq!(jms_greedy(&light).open_facilities().len(), 1);
        let sol = jms_greedy(&heavy);
        assert_eq!(sol.open_facilities(), &[1], "facility must sit at the heavy client");
        assert_eq!(heavy.cost_of(&sol).walking, 300.0);
    }

    #[test]
    fn deterministic() {
        let clients = uniform_points(40, 1000.0, 9);
        let inst = PlpInstance::with_uniform_cost(clients, 500.0);
        assert_eq!(jms_greedy(&inst), jms_greedy(&inst));
    }

    #[test]
    fn matches_paper_scale_on_100_random_arrivals() {
        // Fig. 4(a): 100 random arrivals in a 1000x1000 field with a space
        // cost of 5000 per station -> ~5 stations, total cost ~42k. Exact
        // numbers depend on the draw; assert the paper's *scale*.
        let clients = uniform_points(100, 1000.0, 4);
        let inst = PlpInstance::with_uniform_cost(clients, 5000.0);
        let sol = jms_greedy(&inst);
        let cost = inst.cost_of(&sol);
        let stations = sol.open_facilities().len();
        assert!(
            (3..=8).contains(&stations),
            "station count {stations} outside Fig 4(a) band"
        );
        assert!(
            (30_000.0..=55_000.0).contains(&cost.total()),
            "total cost {} outside Fig 4(a) band",
            cost.total()
        );
    }
}
