//! Property-based equivalence for the warm-start incremental JMS re-solve.
//!
//! A [`JmsSolverContext`] warm `resolve` patches only the cost-matrix
//! columns named by the delta mask (and the affected row positions) before
//! re-running the round loop. Because `(cost, index)` is a total order,
//! the sorted-merge repair reproduces exactly the orderings a cold re-sort
//! would produce — so a warm re-solve must be **bit-identical** to both a
//! cold fast-path solve and the sequential reference on the same instance,
//! for any delta. Instance sizes are drawn at and above the fast-path
//! cutoff (64) so the incremental machinery (not the reference delegation)
//! is what's under test.

use esharing_geo::Point;
use esharing_placement::offline::{jms_greedy, jms_greedy_reference, JmsSolverContext};
use esharing_placement::PlpInstance;
use proptest::prelude::*;

/// A weighted fast-path-sized instance from raw proptest draws.
fn instance(raw: &[(f64, f64, f64)], f: f64) -> PlpInstance {
    let clients: Vec<Point> = raw.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
    let weights: Vec<f64> = raw.iter().map(|&(_, _, w)| w).collect();
    let n = clients.len();
    PlpInstance::new(clients, weights, vec![f; n])
}

/// Re-weights `inst` at the masked clients and returns the new instance.
fn perturbed(inst: &PlpInstance, mask: &[usize], new_weights: &[f64]) -> PlpInstance {
    let mut weights = inst.weights().to_vec();
    for (&j, &w) in mask.iter().zip(new_weights) {
        weights[j] = w;
    }
    PlpInstance::new(
        inst.clients().to_vec(),
        weights,
        inst.opening_costs().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An unchanged forecast (empty delta) returns the cached solution,
    /// which must be bit-identical to the cold reference solve.
    #[test]
    fn warm_unchanged_matches_cold_reference(
        raw in proptest::collection::vec(
            (0.0f64..2_000.0, 0.0f64..2_000.0, 0.5f64..30.0),
            64..96,
        ),
        f in 500.0f64..8_000.0,
    ) {
        let inst = instance(&raw, f);
        let mut ctx = JmsSolverContext::new();
        let cold = ctx.solve(&inst);
        let warm = ctx.resolve(&inst, &[]);
        prop_assert_eq!(&warm, &cold);
        prop_assert_eq!(&warm, &jms_greedy_reference(&inst));
    }

    /// A warm re-solve after masked weight changes is bit-identical to a
    /// cold solve (fast path and sequential reference) of the new instance.
    #[test]
    fn warm_delta_matches_cold_reference(
        raw in proptest::collection::vec(
            (0.0f64..2_000.0, 0.0f64..2_000.0, 0.5f64..30.0),
            64..96,
        ),
        f in 500.0f64..8_000.0,
        picks in proptest::collection::vec((0usize..64, 0.5f64..30.0), 1..12),
    ) {
        let inst = instance(&raw, f);
        let mut ctx = JmsSolverContext::new();
        ctx.solve(&inst);
        let mask: Vec<usize> = picks.iter().map(|&(j, _)| j).collect();
        let new_weights: Vec<f64> = picks.iter().map(|&(_, w)| w).collect();
        let next = perturbed(&inst, &mask, &new_weights);
        let warm = ctx.resolve(&next, &mask);
        prop_assert_eq!(&warm, &jms_greedy(&next));
        prop_assert_eq!(&warm, &jms_greedy_reference(&next));
    }

    /// Successive warm deltas (the steady state of the re-optimization
    /// loop) stay bit-identical to cold solves at every step.
    #[test]
    fn warm_chain_matches_cold_at_every_step(
        raw in proptest::collection::vec(
            (0.0f64..2_000.0, 0.0f64..2_000.0, 0.5f64..30.0),
            64..90,
        ),
        steps in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0.5f64..30.0), 1..6),
            1..4,
        ),
    ) {
        let mut inst = instance(&raw, 3_000.0);
        let mut ctx = JmsSolverContext::new();
        ctx.solve(&inst);
        for picks in &steps {
            let mask: Vec<usize> = picks.iter().map(|&(j, _)| j).collect();
            let new_weights: Vec<f64> = picks.iter().map(|&(_, w)| w).collect();
            inst = perturbed(&inst, &mask, &new_weights);
            let warm = ctx.resolve(&inst, &mask);
            prop_assert_eq!(&warm, &jms_greedy(&inst));
        }
    }
}
