//! Property-based equivalence between the cached-cost parallel JMS greedy
//! and the sequential reference implementation.
//!
//! The fast path replicates the reference's floating-point operation order
//! (credit sums in client-index order, prefix sums in canonical
//! `(cost, index)` order, first-strict-minimum site selection), so the two
//! must return *identical* solutions — same facilities, same assignment —
//! and therefore identical costs, on every instance. Asserted exactly.

use esharing_geo::Point;
use esharing_placement::offline::{jms_greedy, jms_greedy_reference};
use esharing_placement::PlpInstance;
use proptest::prelude::*;

fn continuous(raw: &[(f64, f64)]) -> Vec<Point> {
    raw.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

/// Integer-lattice coordinates: duplicate clients produce tied connection
/// costs and tied per-round ratios, exercising the canonical tie-breaks.
fn lattice(raw: &[(u32, u32)]) -> Vec<Point> {
    raw.iter()
        .map(|&(x, y)| Point::new(f64::from(x) * 100.0, f64::from(y) * 100.0))
        .collect()
}

fn assert_equivalent(inst: &PlpInstance) -> Result<(), TestCaseError> {
    let fast = jms_greedy(inst);
    let reference = jms_greedy_reference(inst);
    prop_assert_eq!(&fast, &reference);
    let fast_cost = inst.cost_of(&fast);
    let ref_cost = inst.cost_of(&reference);
    prop_assert_eq!(fast_cost.walking, ref_cost.walking);
    prop_assert_eq!(fast_cost.space, ref_cost.space);
    Ok(())
}

proptest! {
    #[test]
    fn fast_matches_reference_uniform(
        pts in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..32),
        f in 1.0f64..20_000.0,
    ) {
        let inst = PlpInstance::with_uniform_cost(continuous(&pts), f);
        assert_equivalent(&inst)?;
    }

    #[test]
    fn fast_matches_reference_lattice_ties(
        pts in proptest::collection::vec((0u32..4, 0u32..4), 1..32),
        f in 1.0f64..5_000.0,
    ) {
        let inst = PlpInstance::with_uniform_cost(lattice(&pts), f);
        assert_equivalent(&inst)?;
    }

    #[test]
    fn fast_matches_reference_weighted(
        raw in proptest::collection::vec(
            (0.0f64..1_000.0, 0.0f64..1_000.0, 0.5f64..20.0, 100.0f64..10_000.0),
            1..28,
        ),
    ) {
        let clients: Vec<Point> = raw.iter().map(|&(x, y, _, _)| Point::new(x, y)).collect();
        let weights: Vec<f64> = raw.iter().map(|&(_, _, w, _)| w).collect();
        let openings: Vec<f64> = raw.iter().map(|&(_, _, _, f)| f).collect();
        let inst = PlpInstance::new(clients, weights, openings);
        assert_equivalent(&inst)?;
    }

    #[test]
    fn fast_matches_reference_extreme_opening_costs(
        pts in proptest::collection::vec((0.0f64..1_000.0, 0.0f64..1_000.0), 1..24),
        tiny in prop::bool::ANY,
    ) {
        // f ≈ 0 opens a facility per distinct location; huge f opens one.
        let f = if tiny { 1e-6 } else { 1e9 };
        let inst = PlpInstance::with_uniform_cost(continuous(&pts), f);
        assert_equivalent(&inst)?;
    }
}
