//! Table II — Comparison of RMSE of different prediction algorithms, plus
//! the Fig. 8 actual-vs-predicted series.
//!
//! The paper forecasts hourly trip requests 1–6 hours ahead on the Mobike
//! data, splitting the two weeks into 7 weekday training days / 3 test
//! days (weekends 3 / 1), and reports RMSE for LSTM (layers × backward
//! steps), MA (window sizes) and ARIMA (lag × differencing). We evaluate
//! on the synthetic city's aggregate hourly arrival series — the same
//! shape of workload — expecting the *orderings* to match: 2-layer LSTM
//! best overall, MA degrading with window size, ARIMA in between.

use esharing_bench::Table;
use esharing_dataset::{arrivals, CityConfig, SyntheticCity, Timestamp, TripGenerator};
use esharing_forecast::eval::{arima_grid, best, lstm_grid, ma_grid, rolling_rmse, EvalResult};
use esharing_forecast::{Forecaster, HoltWinters, Lstm, LstmConfig, SeasonalNaive};

const HORIZON: usize = 6;

/// Hourly totals for the chosen day indices.
fn series_for_days(trips: &[esharing_dataset::Trip], days: &[u64]) -> Vec<f64> {
    let mut out = Vec::new();
    for &day in days {
        let start = Timestamp::from_day_hour(day, 0).hour_index();
        out.extend(arrivals::hourly_totals(trips, start, start + 24));
    }
    out
}

fn print_grid(title: &str, results: &[EvalResult]) {
    let mut t = Table::new(vec!["model".into(), "RMSE".into()]);
    for r in results {
        t.row(vec![r.model.clone(), format!("{:.1}", r.rmse)]);
    }
    println!("{title}:\n{t}");
}

fn main() {
    // Two weeks of trips, like the Mobike window (May 10-24 = days 0..14,
    // day 0 a Wednesday).
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut gen = TripGenerator::new(&city, 2017);
    let trips = gen.generate_days(0, 14);
    println!(
        "Table II — prediction RMSE on {} trips over 14 days (horizon {HORIZON} h)\n",
        trips.len()
    );

    // Weekday split 7 train / 3 test; weekday day indices with day 0 = Wed:
    // weekdays are days where Timestamp::is_weekend() is false.
    let weekdays: Vec<u64> = (0..14)
        .filter(|&d| !Timestamp::from_day_hour(d, 0).is_weekend())
        .collect();
    let (train_days, test_days) = weekdays.split_at(7);
    let train = series_for_days(&trips, train_days);
    let test = series_for_days(&trips, test_days);
    println!(
        "weekday split: train days {train_days:?} ({} h), test days {test_days:?} ({} h)\n",
        train.len(),
        test.len()
    );

    let base = LstmConfig {
        hidden: 24,
        epochs: 60,
        learning_rate: 0.01,
        seed: 42,
        ..LstmConfig::default()
    };
    let lstm = lstm_grid(&train, &test, HORIZON, &base).expect("LSTM grid");
    print_grid("LSTM (layers x back)", &lstm);
    let ma = ma_grid(&train, &test, HORIZON).expect("MA grid");
    print_grid("MA (window sizes)", &ma);
    let arima = arima_grid(&train, &test, HORIZON).expect("ARIMA grid");
    print_grid("ARIMA (p x d)", &arima);

    // Extended seasonal baselines (beyond Table II's set).
    let mut extended = Vec::new();
    let mut naive = SeasonalNaive::new(24).expect("valid period");
    naive.fit(&train).expect("fit");
    extended.push(esharing_forecast::eval::EvalResult {
        model: naive.name(),
        rmse: rolling_rmse(&naive, &train, &test, HORIZON).expect("rmse"),
    });
    let mut hw = HoltWinters::hourly().expect("valid rates");
    hw.fit(&train).expect("fit");
    extended.push(esharing_forecast::eval::EvalResult {
        model: hw.name(),
        rmse: rolling_rmse(&hw, &train, &test, HORIZON).expect("rmse"),
    });
    print_grid("Extended seasonal baselines", &extended);

    let best_lstm = best(&lstm).expect("non-empty");
    let best_ma = best(&ma).expect("non-empty");
    let best_arima = best(&arima).expect("non-empty");
    println!("best per family:");
    for b in [best_lstm, best_arima, best_ma] {
        println!("  {:<24} RMSE {:.1}", b.model, b.rmse);
    }
    println!(
        "\npaper orderings to check: best LSTM < best ARIMA <= best MA; paper's best was the\n2-layer LSTM (RMSE 29.1) with ~30% improvement over statistical methods.\nmeasured improvement of best LSTM over best statistical: {:.0}%\n",
        100.0 * (best_ma.rmse.min(best_arima.rmse) - best_lstm.rmse)
            / best_ma.rmse.min(best_arima.rmse)
    );

    // Fig. 8 — actual vs predicted for a weekday and a weekend test day.
    let mut model = Lstm::new(LstmConfig {
        layers: 2,
        back: 12,
        ..base.clone()
    })
    .expect("valid config");
    model.fit(&train).expect("fit");
    println!("Fig. 8(a) — weekday test day, actual vs LSTM prediction (hourly):");
    let mut t = Table::new(vec!["hour".into(), "actual".into(), "predicted".into()]);
    let mut history = train.clone();
    let day = &test[..24];
    let mut hour = 0usize;
    while hour < 24 {
        let f = model.forecast(&history, HORIZON).expect("forecast");
        for (k, pred) in f.iter().enumerate().take((24 - hour).min(HORIZON)) {
            t.row(vec![
                format!("{}", hour + k),
                format!("{:.0}", day[hour + k]),
                format!("{pred:.1}"),
            ]);
        }
        history.extend_from_slice(&day[hour..(hour + HORIZON).min(24)]);
        hour += HORIZON;
    }
    println!("{t}");

    // Weekend: 3 train / 1 test.
    let weekends: Vec<u64> = (0..14)
        .filter(|&d| Timestamp::from_day_hour(d, 0).is_weekend())
        .collect();
    let (we_train_days, we_test_days) = weekends.split_at(3);
    let we_train = series_for_days(&trips, we_train_days);
    let we_test = series_for_days(&trips, we_test_days);
    let mut we_model = Lstm::new(LstmConfig {
        layers: 2,
        back: 12,
        ..base
    })
    .expect("valid config");
    we_model.fit(&we_train).expect("fit");
    let we_rmse = rolling_rmse(&we_model, &we_train, &we_test, HORIZON).expect("rmse");
    println!(
        "Fig. 8(b) — weekend: train days {we_train_days:?}, test day {we_test_days:?}, 2-layer LSTM RMSE {we_rmse:.1}"
    );
}
