//! Time-series preprocessing helpers.
//!
//! The paper builds per-grid hourly arrival series from the trip dataset,
//! splits weekdays 7/3 (train/test) and weekends 3/1, and feeds sliding
//! windows of `back` hours into the LSTM. The helpers here perform that
//! plumbing: windowing, train/test splits, differencing for ARIMA, and
//! min-max scaling for the LSTM.

use crate::ForecastError;

/// Validates that a series is non-empty and finite.
///
/// # Errors
///
/// Returns [`ForecastError::NonFiniteData`] on NaN/infinite entries and
/// [`ForecastError::SeriesTooShort`] on an empty series.
pub fn validate(series: &[f64]) -> Result<(), ForecastError> {
    if series.is_empty() {
        return Err(ForecastError::SeriesTooShort { needed: 1, got: 0 });
    }
    if series.iter().any(|v| !v.is_finite()) {
        return Err(ForecastError::NonFiniteData);
    }
    Ok(())
}

/// Splits a series at `train_fraction` (clamped to `[0, 1]`), returning
/// `(train, test)` slices.
pub fn split_at_fraction(series: &[f64], train_fraction: f64) -> (&[f64], &[f64]) {
    let f = train_fraction.clamp(0.0, 1.0);
    let cut = (series.len() as f64 * f).round() as usize;
    series.split_at(cut.min(series.len()))
}

/// Builds supervised `(window, target)` samples: each sample is `back`
/// consecutive values followed by the next value.
///
/// Returns an empty vector when the series is shorter than `back + 1`.
pub fn sliding_windows(series: &[f64], back: usize) -> Vec<(Vec<f64>, f64)> {
    if back == 0 || series.len() <= back {
        return Vec::new();
    }
    (0..series.len() - back)
        .map(|i| (series[i..i + back].to_vec(), series[i + back]))
        .collect()
}

/// First-order difference applied `d` times.
///
/// Returns the differenced series together with the seed values needed to
/// invert the operation (the last value of each intermediate series).
pub fn difference(series: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    let mut current = series.to_vec();
    let mut seeds = Vec::with_capacity(d);
    for _ in 0..d {
        if current.is_empty() {
            break;
        }
        seeds.push(*current.last().expect("non-empty"));
        current = current.windows(2).map(|w| w[1] - w[0]).collect();
    }
    (current, seeds)
}

/// Inverts [`difference`] for a block of forecast values: integrates the
/// differenced forecasts back to the original scale using the stored seeds.
pub fn integrate(forecast: &[f64], seeds: &[f64]) -> Vec<f64> {
    let mut current = forecast.to_vec();
    for &seed in seeds.iter().rev() {
        let mut acc = seed;
        for v in current.iter_mut() {
            acc += *v;
            *v = acc;
        }
    }
    current
}

/// A min-max scaler mapping the training range to `[0, 1]`.
///
/// Constant series scale to all-zeros and unscale back to the constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMaxScaler {
    min: f64,
    range: f64,
}

impl MinMaxScaler {
    /// Fits the scaler on a series.
    ///
    /// # Errors
    ///
    /// Propagates [`validate`] failures.
    pub fn fit(series: &[f64]) -> Result<Self, ForecastError> {
        validate(series)?;
        let min = series.iter().copied().fold(f64::INFINITY, f64::min);
        let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(MinMaxScaler {
            min,
            range: max - min,
        })
    }

    /// Scales one value to (approximately) `[0, 1]`.
    #[inline]
    pub fn scale(&self, v: f64) -> f64 {
        if self.range == 0.0 {
            0.0
        } else {
            (v - self.min) / self.range
        }
    }

    /// Inverts [`MinMaxScaler::scale`].
    #[inline]
    pub fn unscale(&self, v: f64) -> f64 {
        v * self.range + self.min
    }

    /// Scales a whole slice.
    pub fn scale_all(&self, series: &[f64]) -> Vec<f64> {
        series.iter().map(|&v| self.scale(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_bad_series() {
        assert!(validate(&[]).is_err());
        assert!(validate(&[1.0, f64::NAN]).is_err());
        assert!(validate(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn split_fractions() {
        let s: Vec<f64> = (0..10).map(f64::from).collect();
        let (a, b) = split_at_fraction(&s, 0.7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        let (a, b) = split_at_fraction(&s, 0.0);
        assert!(a.is_empty());
        assert_eq!(b.len(), 10);
        let (a, b) = split_at_fraction(&s, 2.0);
        assert_eq!(a.len(), 10);
        assert!(b.is_empty());
    }

    #[test]
    fn windows_shape_and_content() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        let w = sliding_windows(&s, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (vec![1.0, 2.0], 3.0));
        assert_eq!(w[2], (vec![3.0, 4.0], 5.0));
        assert!(sliding_windows(&s, 5).is_empty());
        assert!(sliding_windows(&s, 0).is_empty());
    }

    #[test]
    fn difference_and_integrate_roundtrip() {
        let s = [3.0, 7.0, 12.0, 14.0, 20.0];
        for d in 0..=2 {
            let (diffed, seeds) = difference(&s, d);
            assert_eq!(seeds.len(), d);
            // Forecast "the next three true values" in differenced space of
            // a synthetic continuation, then check integration consistency
            // by reconstructing the original tail.
            if d == 1 {
                assert_eq!(diffed, vec![4.0, 5.0, 2.0, 6.0]);
                let restored = integrate(&[1.0, 2.0], &seeds);
                assert_eq!(restored, vec![21.0, 23.0]); // 20+1, 21+2
            }
            if d == 0 {
                assert_eq!(diffed, s.to_vec());
                assert_eq!(integrate(&[9.0], &seeds), vec![9.0]);
            }
        }
    }

    #[test]
    fn second_difference_integration() {
        // s linear+quadratic: second difference constant.
        let s: Vec<f64> = (0..6).map(|t| (t * t) as f64).collect(); // 0,1,4,9,16,25
        let (d2, seeds) = difference(&s, 2);
        assert!(d2.iter().all(|&v| v == 2.0));
        // Next second-differences are 2.0; integrating should continue the
        // squares: 36, 49.
        let restored = integrate(&[2.0, 2.0], &seeds);
        assert_eq!(restored, vec![36.0, 49.0]);
    }

    #[test]
    fn scaler_roundtrip() {
        let s = [10.0, 20.0, 30.0];
        let sc = MinMaxScaler::fit(&s).unwrap();
        assert_eq!(sc.scale(10.0), 0.0);
        assert_eq!(sc.scale(30.0), 1.0);
        assert_eq!(sc.scale(20.0), 0.5);
        for v in [10.0, 17.5, 30.0, 45.0] {
            assert!((sc.unscale(sc.scale(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_constant_series() {
        let sc = MinMaxScaler::fit(&[5.0, 5.0]).unwrap();
        assert_eq!(sc.scale(5.0), 0.0);
        assert_eq!(sc.unscale(0.0), 5.0);
    }

    #[test]
    fn scale_all_length_preserved() {
        let sc = MinMaxScaler::fit(&[0.0, 10.0]).unwrap();
        assert_eq!(sc.scale_all(&[0.0, 5.0, 10.0]), vec![0.0, 0.5, 1.0]);
    }
}
