//! Integration tests: dataset → forecast (the Table II pipeline).

use e_sharing::dataset::{arrivals, CityConfig, SyntheticCity, Timestamp, TripGenerator};
use e_sharing::forecast::eval::{best, ma_grid, rolling_rmse};
use e_sharing::forecast::{Arima, Forecaster, Lstm, LstmConfig, MovingAverage};

fn hourly_series(days: u64, seed: u64) -> Vec<f64> {
    let city = SyntheticCity::generate(&CityConfig {
        trips_per_day: 900.0,
        ..CityConfig::default()
    });
    let mut generator = TripGenerator::new(&city, seed);
    let trips = generator.generate_days(0, days);
    arrivals::hourly_totals(&trips, 0, days * 24)
}

#[test]
fn lstm_beats_moving_average_on_city_series() {
    let series = hourly_series(10, 1);
    let (train, test) = series.split_at(8 * 24);
    let mut lstm = Lstm::new(LstmConfig {
        hidden: 16,
        layers: 2,
        back: 24,
        epochs: 50,
        ..LstmConfig::default()
    })
    .expect("valid config");
    lstm.fit(train).expect("fit");
    let lstm_rmse = rolling_rmse(&lstm, train, test, 6).expect("rmse");

    let ma_results = ma_grid(train, test, 6).expect("grid");
    let best_ma = best(&ma_results).expect("non-empty").rmse;
    assert!(
        lstm_rmse < best_ma,
        "LSTM {lstm_rmse:.1} must beat the best MA {best_ma:.1}"
    );
}

#[test]
fn arima_beats_moving_average_on_city_series() {
    let series = hourly_series(10, 2);
    let (train, test) = series.split_at(8 * 24);
    let mut arima = Arima::new(10, 0).expect("valid orders");
    arima.fit(train).expect("fit");
    let arima_rmse = rolling_rmse(&arima, train, test, 6).expect("rmse");
    let mut ma = MovingAverage::new(3).expect("valid window");
    ma.fit(train).expect("fit");
    let ma_rmse = rolling_rmse(&ma, train, test, 6).expect("rmse");
    assert!(
        arima_rmse < ma_rmse,
        "ARIMA {arima_rmse:.1} must beat MA {ma_rmse:.1} on diurnal data"
    );
}

#[test]
fn per_cell_series_sum_to_totals() {
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut generator = TripGenerator::new(&city, 3);
    let trips = generator.generate_days(0, 2);
    let grid = e_sharing::geo::Grid::new(100.0);
    let top = arrivals::busiest_cells(&trips, &grid, usize::MAX);
    let total_via_cells: u64 = top.iter().map(|&(_, c)| c).sum();
    assert_eq!(total_via_cells as usize, trips.len());
    let totals = arrivals::hourly_totals(&trips, 0, 48);
    assert_eq!(totals.iter().sum::<f64>() as usize, trips.len());
}

#[test]
fn weekend_series_differs_from_weekday() {
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut generator = TripGenerator::new(&city, 4);
    let trips = generator.generate_days(0, 14);
    // Day 1 (Thu) vs day 3 (Sat): the morning commute spike must vanish.
    let thu_start = Timestamp::from_day_hour(1, 0).hour_index();
    let sat_start = Timestamp::from_day_hour(3, 0).hour_index();
    let thu = arrivals::hourly_totals(&trips, thu_start, thu_start + 24);
    let sat = arrivals::hourly_totals(&trips, sat_start, sat_start + 24);
    let thu_morning: f64 = thu[7..10].iter().sum();
    let sat_morning: f64 = sat[7..10].iter().sum();
    assert!(
        thu_morning > 1.5 * sat_morning,
        "thu morning {thu_morning} vs sat morning {sat_morning}"
    );
}
