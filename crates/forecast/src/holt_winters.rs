//! Holt–Winters triple exponential smoothing and the seasonal-naive
//! baseline.
//!
//! Hourly bike-sharing demand is strongly seasonal (period 24); the
//! bike-sharing prediction literature the paper builds on routinely
//! includes seasonal exponential smoothing among the statistical
//! baselines. These two models extend the Table II comparison beyond
//! MA/ARIMA:
//!
//! * [`SeasonalNaive`] — predicts the value observed one season ago; the
//!   canonical lower bar for any seasonal forecaster,
//! * [`HoltWinters`] — additive level/trend/seasonality smoothing with
//!   per-component rates (α, β, γ).

use crate::series::validate;
use crate::{ForecastError, Forecaster};

/// Seasonal-naive forecaster: `ŷ(t + h) = y(t + h − m)` for period `m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeasonalNaive {
    period: usize,
    fitted: bool,
}

impl SeasonalNaive {
    /// Creates the forecaster with season length `period` (24 for hourly
    /// daily-seasonal data).
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] for a zero period.
    pub fn new(period: usize) -> Result<Self, ForecastError> {
        if period == 0 {
            return Err(ForecastError::InvalidParameter {
                name: "period",
                reason: "must be at least 1",
            });
        }
        Ok(SeasonalNaive {
            period,
            fitted: false,
        })
    }

    /// The season length.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl Forecaster for SeasonalNaive {
    fn fit(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        validate(series)?;
        if series.len() < self.period {
            return Err(ForecastError::SeriesTooShort {
                needed: self.period,
                got: series.len(),
            });
        }
        self.fitted = true;
        Ok(())
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate(history)?;
        if history.len() < self.period {
            return Err(ForecastError::SeriesTooShort {
                needed: self.period,
                got: history.len(),
            });
        }
        let last_season = &history[history.len() - self.period..];
        Ok((0..horizon).map(|h| last_season[h % self.period]).collect())
    }

    fn name(&self) -> String {
        format!("SeasonalNaive(m={})", self.period)
    }
}

/// Additive Holt–Winters smoothing.
///
/// State update for observation `y_t`:
///
/// ```text
/// level_t  = α (y_t − season_{t−m}) + (1 − α)(level_{t−1} + trend_{t−1})
/// trend_t  = β (level_t − level_{t−1}) + (1 − β) trend_{t−1}
/// season_t = γ (y_t − level_t) + (1 − γ) season_{t−m}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HoltWinters {
    period: usize,
    alpha: f64,
    beta: f64,
    gamma: f64,
    /// Fitted state: (level, trend, seasonal components indexed by phase).
    state: Option<(f64, f64, Vec<f64>)>,
}

impl HoltWinters {
    /// Creates the model with smoothing rates `alpha` (level), `beta`
    /// (trend) and `gamma` (season), each in `(0, 1)`, and season length
    /// `period`.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] for out-of-range rates
    /// or a period below 2.
    pub fn new(period: usize, alpha: f64, beta: f64, gamma: f64) -> Result<Self, ForecastError> {
        if period < 2 {
            return Err(ForecastError::InvalidParameter {
                name: "period",
                reason: "must be at least 2",
            });
        }
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            if !(v > 0.0 && v < 1.0) {
                return Err(ForecastError::InvalidParameter {
                    name: match name {
                        "alpha" => "alpha",
                        "beta" => "beta",
                        _ => "gamma",
                    },
                    reason: "smoothing rates must lie in (0, 1)",
                });
            }
        }
        Ok(HoltWinters {
            period,
            alpha,
            beta,
            gamma,
            state: None,
        })
    }

    /// A sensible default for hourly daily-seasonal demand.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` keeps the
    /// signature uniform with [`HoltWinters::new`].
    pub fn hourly() -> Result<Self, ForecastError> {
        HoltWinters::new(24, 0.3, 0.05, 0.3)
    }

    /// Runs the smoothing recursion over `series` and returns the final
    /// `(level, trend, season)` state.
    fn smooth(&self, series: &[f64]) -> (f64, f64, Vec<f64>) {
        let m = self.period;
        // Initialize: level = mean of season 1, trend = mean per-step
        // change between seasons 1 and 2, season = deviations from level.
        let first: f64 = series[..m].iter().sum::<f64>() / m as f64;
        let second: f64 = series[m..2 * m].iter().sum::<f64>() / m as f64;
        let mut level = first;
        let mut trend = (second - first) / m as f64;
        let mut season: Vec<f64> = series[..m].iter().map(|&y| y - first).collect();
        for (t, &y) in series.iter().enumerate().skip(m) {
            let phase = t % m;
            let prev_level = level;
            level = self.alpha * (y - season[phase]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            season[phase] = self.gamma * (y - level) + (1.0 - self.gamma) * season[phase];
        }
        (level, trend, season)
    }
}

impl Forecaster for HoltWinters {
    fn fit(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        validate(series)?;
        let needed = 2 * self.period;
        if series.len() < needed {
            return Err(ForecastError::SeriesTooShort {
                needed,
                got: series.len(),
            });
        }
        self.state = Some(self.smooth(series));
        Ok(())
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        if self.state.is_none() {
            return Err(ForecastError::NotFitted);
        }
        validate(history)?;
        let needed = 2 * self.period;
        if history.len() < needed {
            return Err(ForecastError::SeriesTooShort {
                needed,
                got: history.len(),
            });
        }
        // Re-smooth over the supplied history so the forecast starts from
        // its end (the trait allows forecasting from arbitrary histories).
        let (level, trend, season) = self.smooth(history);
        let m = self.period;
        let base_phase = history.len() % m;
        Ok((1..=horizon)
            .map(|h| level + h as f64 * trend + season[(base_phase + h - 1) % m])
            .collect())
    }

    fn name(&self) -> String {
        format!(
            "HoltWinters(m={}, a={}, b={}, g={})",
            self.period, self.alpha, self.beta, self.gamma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_stats::metrics::rmse;

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 50.0 + 0.1 * t as f64 + 20.0 * (t as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let mut model = SeasonalNaive::new(4).unwrap();
        let history = [1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        model.fit(&history).unwrap();
        let f = model.forecast(&history, 6).unwrap();
        assert_eq!(f, vec![10.0, 20.0, 30.0, 40.0, 10.0, 20.0]);
    }

    #[test]
    fn seasonal_naive_validation() {
        assert!(SeasonalNaive::new(0).is_err());
        let mut model = SeasonalNaive::new(24).unwrap();
        assert!(matches!(
            model.fit(&[1.0; 5]),
            Err(ForecastError::SeriesTooShort { .. })
        ));
        let unfitted = SeasonalNaive::new(2).unwrap();
        assert_eq!(
            unfitted.forecast(&[1.0, 2.0], 1),
            Err(ForecastError::NotFitted)
        );
    }

    #[test]
    fn holt_winters_validation() {
        assert!(HoltWinters::new(1, 0.5, 0.5, 0.5).is_err());
        assert!(HoltWinters::new(24, 0.0, 0.5, 0.5).is_err());
        assert!(HoltWinters::new(24, 0.5, 1.0, 0.5).is_err());
        assert!(HoltWinters::hourly().is_ok());
        let mut model = HoltWinters::hourly().unwrap();
        assert!(matches!(
            model.fit(&seasonal_series(30)),
            Err(ForecastError::SeriesTooShort { needed: 48, .. })
        ));
    }

    #[test]
    fn tracks_trend_plus_seasonality() {
        let series = seasonal_series(24 * 8);
        let mut model = HoltWinters::hourly().unwrap();
        model.fit(&series[..24 * 7]).unwrap();
        let f = model.forecast(&series[..24 * 7], 24).unwrap();
        let truth = &series[24 * 7..24 * 8];
        let err = rmse(&f, truth);
        assert!(err < 3.0, "rmse {err} on clean seasonal data");
    }

    #[test]
    fn beats_seasonal_naive_on_trending_data() {
        // With a trend, last-season repetition lags; HW catches it.
        let series = seasonal_series(24 * 8);
        let (train, test) = series.split_at(24 * 7);
        let mut hw = HoltWinters::hourly().unwrap();
        hw.fit(train).unwrap();
        let hw_err = rmse(&hw.forecast(train, 24).unwrap(), test);
        let mut naive = SeasonalNaive::new(24).unwrap();
        naive.fit(train).unwrap();
        let naive_err = rmse(&naive.forecast(train, 24).unwrap(), test);
        assert!(
            hw_err < naive_err,
            "HW {hw_err:.2} should beat seasonal naive {naive_err:.2}"
        );
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let series = vec![7.0; 24 * 4];
        let mut model = HoltWinters::hourly().unwrap();
        model.fit(&series).unwrap();
        for v in model.forecast(&series, 24).unwrap() {
            assert!((v - 7.0).abs() < 1e-6, "got {v}");
        }
    }

    #[test]
    fn names_mention_structure() {
        assert_eq!(
            SeasonalNaive::new(24).unwrap().name(),
            "SeasonalNaive(m=24)"
        );
        assert!(HoltWinters::hourly().unwrap().name().contains("m=24"));
    }
}
