//! Serializable shard checkpoints.
//!
//! A [`ShardCheckpoint`] is a complete, self-contained image of one
//! shard's serving state: the seeds its stochastic components run on, the
//! orchestrator's [`SystemCheckpoint`] (landmarks, metrics, and the online
//! algorithm's full decision/monitor state including the RNG position),
//! the shard's decision-latency histogram, and the WAL high-water
//! sequence — the journal position up to which the checkpointed state has
//! already absorbed every admitted request. Restoring the checkpoint and
//! replaying the WAL suffix from the high-water mark reproduces the
//! shard's state bit-identically (see `lifecycle`).
//!
//! The wire format is a hand-rolled little-endian binary (the workspace
//! deliberately carries no serialization dependency on this path):
//! fixed-width integers, `f64` as raw IEEE-754 bits (exact round trips,
//! NaN payloads included), length-prefixed vectors, and one-byte tags for
//! options. The encoding is canonical — every field is written
//! unconditionally in a fixed order — so `encode ∘ decode` is the
//! identity on valid buffers and `decode ∘ encode` is the identity on
//! checkpoints, byte for byte.

use esharing_core::{LatencyHistogram, SystemCheckpoint, SystemMetrics};
use esharing_geo::Point;
use esharing_placement::online::{DeviationCheckpoint, PendingDrift};
use esharing_stats::ks2d::Ks2dResult;
use std::error::Error;
use std::fmt;

/// Format magic: "ESCK" (E-Sharing ChecKpoint).
const MAGIC: [u8; 4] = *b"ESCK";
/// Current format version. v2 appended the deferred-drift pending state
/// (boundary snapshot + uncommitted verdict) to the deviation image; v3
/// appended the re-optimization provenance (the landmark generation this
/// image serves and the cumulative hot-swap count). Checkpoints are
/// in-memory recovery sources, so no older buffers outlive an engine and
/// earlier versions are simply rejected.
const VERSION: u32 = 3;

/// A complete, serializable image of one shard's serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// The shard's [`SystemConfig`](esharing_core::SystemConfig) seed
    /// (drives Tier-2 incentive seeding); recorded so recovery rebuilds
    /// the exact per-shard config regardless of how the shard was derived
    /// (bootstrap XOR, split derivation).
    pub system_seed: u64,
    /// The shard's deviation seed as configured (the authoritative RNG
    /// position travels inside the deviation checkpoint; this field keeps
    /// the image self-describing).
    pub deviation_seed: u64,
    /// Journal sequence number up to which this image has absorbed every
    /// admitted request: WAL entries with `seq >= wal_high_water` must be
    /// replayed on recovery, earlier ones are already reflected here.
    pub wal_high_water: u64,
    /// Re-optimization epoch of the landmark set this image serves: 0 for
    /// bootstrap landmarks, bumped every time the maintenance loop
    /// hot-swaps a re-solved landmark set into the shard.
    pub reopt_epoch: u64,
    /// Cumulative landmark hot-swaps this shard's lineage has absorbed
    /// (summed across merges, inherited through splits and recovery).
    pub landmark_swaps: u64,
    /// Arrival → decision latency histogram at checkpoint time.
    pub latency: LatencyHistogram,
    /// The orchestrator state image (landmarks, metrics, online
    /// algorithm).
    pub system: SystemCheckpoint,
}

/// Decode failure for a [`ShardCheckpoint`] buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u32),
    /// An option/enum tag byte held an unknown value.
    BadTag(u8),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint buffer truncated"),
            CheckpointError::BadMagic => write!(f, "not a shard checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadTag(t) => write!(f, "unknown checkpoint tag byte {t}"),
        }
    }
}

impl Error for CheckpointError {}

impl ShardCheckpoint {
    /// Encodes the checkpoint into the canonical binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + 16 * self.system.deviation.stations.len());
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, self.system_seed);
        put_u64(&mut out, self.deviation_seed);
        put_u64(&mut out, self.wal_high_water);
        put_u64(&mut out, self.reopt_epoch);
        put_u64(&mut out, self.landmark_swaps);
        put_histogram(&mut out, &self.latency);
        put_points(&mut out, &self.system.landmarks);
        put_metrics(&mut out, &self.system.metrics);
        put_deviation(&mut out, &self.system.deviation);
        out
    }

    /// Decodes a checkpoint from its canonical binary form.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on a truncated, foreign, or
    /// unsupported buffer. The buffer must be consumed exactly — trailing
    /// bytes are rejected as [`CheckpointError::Truncated`] corruption.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor { bytes, at: 0 };
        if c.take(4)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = c.u32()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let system_seed = c.u64()?;
        let deviation_seed = c.u64()?;
        let wal_high_water = c.u64()?;
        let reopt_epoch = c.u64()?;
        let landmark_swaps = c.u64()?;
        let latency = c.histogram()?;
        let landmarks = c.points()?;
        let metrics = c.metrics()?;
        let deviation = c.deviation()?;
        if c.at != bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        Ok(ShardCheckpoint {
            system_seed,
            deviation_seed,
            wal_high_water,
            reopt_epoch,
            landmark_swaps,
            latency,
            system: SystemCheckpoint {
                landmarks,
                metrics,
                deviation,
            },
        })
    }
}

/// Encodes a checkpoint of `system` at `wal_high_water`, carrying the
/// shard's `latency` histogram and the landmark generation it serves
/// (`reopt_epoch` / `landmark_swaps`, both 0 for bootstrap landmarks).
/// `None` until the system is bootstrapped.
pub(crate) fn encode_checkpoint(
    system: &esharing_core::ESharing,
    latency: &LatencyHistogram,
    wal_high_water: u64,
    reopt_epoch: u64,
    landmark_swaps: u64,
) -> Option<Vec<u8>> {
    let image = system.checkpoint()?;
    Some(
        ShardCheckpoint {
            system_seed: system.config().seed,
            deviation_seed: system.config().deviation.seed,
            wal_high_water,
            reopt_epoch,
            landmark_swaps,
            latency: latency.clone(),
            system: image,
        }
        .encode(),
    )
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_points(out: &mut Vec<u8>, points: &[Point]) {
    put_u64(out, points.len() as u64);
    for p in points {
        put_f64(out, p.x);
        put_f64(out, p.y);
    }
}

fn put_histogram(out: &mut Vec<u8>, h: &LatencyHistogram) {
    let buckets = h.buckets();
    put_u64(out, buckets.len() as u64);
    for &b in buckets {
        put_u64(out, b);
    }
    put_u64(out, h.sum_ns());
    put_u64(out, h.max_ns());
}

fn put_metrics(out: &mut Vec<u8>, m: &SystemMetrics) {
    put_f64(out, m.placement.walking);
    put_f64(out, m.placement.space);
    put_u64(out, m.requests_served);
    put_f64(out, m.maintenance_cost);
    put_f64(out, m.incentives_paid);
    put_u64(out, m.bikes_charged);
    put_u64(out, m.bikes_missed);
    put_f64(out, m.operator_distance_m);
    put_u64(out, m.maintenance_periods);
}

fn put_deviation(out: &mut Vec<u8>, d: &DeviationCheckpoint) {
    put_u64(out, d.k);
    out.push(d.penalty_kind);
    put_f64(out, d.penalty_tolerance);
    put_f64(out, d.f_dec);
    put_f64(out, d.f_dec_initial);
    put_points(out, &d.stations);
    put_f64(out, d.walking_cost);
    put_f64(out, d.space_cost);
    put_u64(out, d.opened_online);
    put_u64(out, d.rng_seed);
    put_u64(out, d.rng_draws);
    put_u64(out, d.a);
    put_points(out, &d.history);
    put_points(out, &d.window);
    match d.last_similarity {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
    put_u32(out, d.shift_streak);
    put_u64(out, d.epoch);
    put_u64(out, d.events_dropped);
    match &d.pending {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_u64(out, p.epoch);
            put_u64(out, p.requests);
            match &p.verdict {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    put_f64(out, v.statistic);
                    put_f64(out, v.similarity_percent);
                    put_f64(out, v.p_value);
                    put_f64(out, v.effective_n);
                }
            }
            put_points(out, &p.window);
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.at.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        // A length that cannot fit in the remaining buffer is corruption;
        // catching it here keeps a hostile buffer from pre-allocating.
        let remaining = self.bytes.len() - self.at;
        if n > remaining as u64 {
            return Err(CheckpointError::Truncated);
        }
        Ok(n as usize)
    }

    fn points(&mut self) -> Result<Vec<Point>, CheckpointError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let x = self.f64()?;
            let y = self.f64()?;
            out.push(Point::new(x, y));
        }
        Ok(out)
    }

    fn histogram(&mut self) -> Result<LatencyHistogram, CheckpointError> {
        let n = self.len()?;
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(self.u64()?);
        }
        let sum_ns = self.u64()?;
        let max_ns = self.u64()?;
        Ok(LatencyHistogram::from_parts(buckets, sum_ns, max_ns))
    }

    fn metrics(&mut self) -> Result<SystemMetrics, CheckpointError> {
        Ok(SystemMetrics {
            placement: esharing_placement::PlacementCost::new(self.f64()?, self.f64()?),
            requests_served: self.u64()?,
            maintenance_cost: self.f64()?,
            incentives_paid: self.f64()?,
            bikes_charged: self.u64()?,
            bikes_missed: self.u64()?,
            operator_distance_m: self.f64()?,
            maintenance_periods: self.u64()?,
        })
    }

    fn deviation(&mut self) -> Result<DeviationCheckpoint, CheckpointError> {
        Ok(DeviationCheckpoint {
            k: self.u64()?,
            penalty_kind: self.u8()?,
            penalty_tolerance: self.f64()?,
            f_dec: self.f64()?,
            f_dec_initial: self.f64()?,
            stations: self.points()?,
            walking_cost: self.f64()?,
            space_cost: self.f64()?,
            opened_online: self.u64()?,
            rng_seed: self.u64()?,
            rng_draws: self.u64()?,
            a: self.u64()?,
            history: self.points()?,
            window: self.points()?,
            last_similarity: match self.u8()? {
                0 => None,
                1 => Some(self.f64()?),
                t => return Err(CheckpointError::BadTag(t)),
            },
            shift_streak: self.u32()?,
            epoch: self.u64()?,
            events_dropped: self.u64()?,
            pending: self.pending_drift()?,
        })
    }

    fn pending_drift(&mut self) -> Result<Option<PendingDrift>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let epoch = self.u64()?;
                let requests = self.u64()?;
                let verdict = match self.u8()? {
                    0 => None,
                    1 => Some(Ks2dResult {
                        statistic: self.f64()?,
                        similarity_percent: self.f64()?,
                        p_value: self.f64()?,
                        effective_n: self.f64()?,
                    }),
                    t => return Err(CheckpointError::BadTag(t)),
                };
                let window = self.points()?;
                Ok(Some(PendingDrift {
                    epoch,
                    requests,
                    window,
                    verdict,
                }))
            }
            t => Err(CheckpointError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_core::{ESharing, SystemConfig};

    fn sample_checkpoint() -> ShardCheckpoint {
        let mut system = ESharing::new(SystemConfig::default());
        let history: Vec<Point> = (0..200)
            .map(|i| Point::new((i % 20) as f64 * 110.0, (i / 20) as f64 * 190.0))
            .collect();
        system.bootstrap(&history);
        for i in 0..150 {
            let p = Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64);
            system.handle_request(p).unwrap();
        }
        let mut latency = LatencyHistogram::new();
        for i in 0..150u64 {
            latency.record_ns(i * 731 + 15);
        }
        ShardCheckpoint {
            system_seed: 0xDEAD_BEEF,
            deviation_seed: 42,
            wal_high_water: 9_001,
            reopt_epoch: 3,
            landmark_swaps: 5,
            latency,
            system: system.checkpoint().expect("bootstrapped"),
        }
    }

    #[test]
    fn encode_decode_round_trips_byte_identically() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.encode();
        let decoded = ShardCheckpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        // Canonical encoding: serialize → restore → serialize is the
        // identity on the byte level, not just structurally.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn encode_decode_round_trips_pending_drift() {
        // Deferred drift mode arms a pending re-test at each doubling
        // boundary; the image must carry it (snapshot + stored verdict)
        // byte-exactly, or a kill between boundary and commit would not
        // recover bit-identically.
        let mut cfg = SystemConfig::default();
        cfg.deviation.drift_mode = esharing_placement::online::DriftMode::Deferred;
        let mut system = ESharing::new(cfg);
        let history: Vec<Point> = (0..200)
            .map(|i| Point::new((i % 20) as f64 * 110.0, (i / 20) as f64 * 190.0))
            .collect();
        system.bootstrap(&history);
        let mut i = 0u64;
        while !system.drift_pending() && i < 5000 {
            let p = Point::new(((i * 97) % 2000) as f64, ((i * 31) % 2000) as f64);
            system.handle_request(p).unwrap();
            i += 1;
        }
        assert!(system.drift_pending(), "a boundary must arm a re-test");
        // Store the off-seat verdict too, so both pending shapes (with
        // and without a committed verdict) cross the wire.
        let task = system.take_drift_task().expect("armed re-test is offered");
        system.commit_drift_verdict(task.evaluate());
        let ckpt = ShardCheckpoint {
            system_seed: 7,
            deviation_seed: 11,
            wal_high_water: 123,
            reopt_epoch: 0,
            landmark_swaps: 0,
            latency: LatencyHistogram::new(),
            system: system.checkpoint().expect("bootstrapped"),
        };
        let pending = ckpt.system.deviation.pending.as_ref().expect("pending");
        assert!(pending.verdict.is_some(), "verdict must be stored");
        let bytes = ckpt.encode();
        let decoded = ShardCheckpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = sample_checkpoint().encode();
        assert_eq!(
            ShardCheckpoint::decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            ShardCheckpoint::decode(&trailing),
            Err(CheckpointError::Truncated)
        );
        let mut magic = bytes.clone();
        magic[0] ^= 0xFF;
        assert_eq!(
            ShardCheckpoint::decode(&magic),
            Err(CheckpointError::BadMagic)
        );
        let mut version = bytes.clone();
        version[4] = 99;
        assert_eq!(
            ShardCheckpoint::decode(&version),
            Err(CheckpointError::BadVersion(99))
        );
        assert_eq!(
            ShardCheckpoint::decode(&[]),
            Err(CheckpointError::Truncated)
        );
    }
}
