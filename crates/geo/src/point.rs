//! Planar points in a local metric coordinate system (meters).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point in the planar coordinate system the placement algorithms operate
/// on. Coordinates are in meters relative to the south-west corner of the
/// study field.
///
/// The paper measures *user dissatisfaction* as the Euclidean walking
/// distance between a trip destination and its assigned parking location;
/// [`Point::distance`] is that metric.
///
/// # Examples
///
/// ```
/// use esharing_geo::Point;
///
/// let destination = Point::new(0.0, 0.0);
/// let parking = Point::new(30.0, 40.0);
/// assert_eq!(destination.distance(parking), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from easting/northing in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`; cheaper than [`Point::distance`]
    /// when only comparisons are needed (e.g. nearest-parking search).
    #[inline]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`. Useful as a street-network
    /// walking-distance upper bound.
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Norm of the point interpreted as a vector from the origin.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Centroid of a set of points, or `None` when empty.
    ///
    /// The paper represents every arrival within a grid cell by the cell
    /// centroid; this helper computes the same reduction for arbitrary sets.
    pub fn centroid<I>(points: I) -> Option<Point>
    where
        I: IntoIterator<Item = Point>,
    {
        let mut sum = Point::ORIGIN;
        let mut n = 0usize;
        for p in points {
            sum = sum + p;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Point {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> (f64, f64) {
        (p.x, p.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_squared(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-3.5, 10.0);
        let b = Point::new(7.25, -2.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(123.456, -789.0);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn manhattan_bounds_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(a.manhattan_distance(b) >= a.distance(b));
        assert_eq!(a.manhattan_distance(b), 7.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, 2.5));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert_eq!(Point::centroid(std::iter::empty()), None);
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(Point::centroid(pts), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn conversions_roundtrip() {
        let p = Point::new(5.5, -6.5);
        let t: (f64, f64) = p.into();
        assert_eq!(Point::from(t), p);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Point::new(1.0, 2.0)), "(1.00, 2.00)");
    }
}
