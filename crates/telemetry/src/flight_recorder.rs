//! Always-on "black box" flight recorder.
//!
//! [`FlightRing`] is a fixed-capacity lock-free ring that every decision
//! writes one fine-grained sample into — stage latency, seat wait, ring
//! occupancy, shed flag — *unsampled*, because retention (not recording)
//! is what bounds the cost: the ring only ever holds the last `capacity`
//! decisions. Producers are the submitting threads themselves, so the
//! ring must be multi-producer and wait-free: a writer claims a slot with
//! one `fetch_add` and stamps it with a per-slot generation; a reader
//! that observes a torn write (generation changed mid-read) simply skips
//! that slot. Readers are rare (dump time only) and best-effort by
//! design.
//!
//! [`FlightRecorder`] freezes the ring when something interesting happens
//! (an SLO breach transition or an elastic-lifecycle op) and renders a
//! canonical JSON dump — recent samples, the health journal tail
//! (including the triggering `SloBreach` event), and a tsdb excerpt —
//! kept in memory for the `/flight/<id>` endpoint and best-effort written
//! under a results directory. Dumps are rate-limited so a flapping SLO
//! cannot fill the disk.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::expose::{event_json, json_string};
use crate::journal::EventRecord;

/// One per-decision sample retained in the flight ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightSample {
    /// Nanoseconds since the engine epoch at record time.
    pub t_ns: u64,
    /// Shard that served (or shed) the decision.
    pub shard: u32,
    /// End-to-end decision latency, ns (0 for sheds).
    pub latency_ns: u64,
    /// Seat wait: time from submit to holding the decision seat, ns.
    pub queue_ns: u64,
    /// Downstream-ring occupancy observed at submit.
    pub ring_occupancy: u32,
    /// True when the request was shed instead of served.
    pub shed: bool,
}

const SHED_BIT: u64 = 1;

struct FlightSlot {
    /// Generation stamp: 0 = never written, `h + 1` after the write that
    /// claimed head value `h` completes. Strictly increasing per slot, so
    /// a stamp that changed mid-read always reveals a torn snapshot.
    stamp: AtomicU64,
    t_ns: AtomicU64,
    latency_ns: AtomicU64,
    queue_ns: AtomicU64,
    /// `shard << 32 | ring_occupancy << 1 | shed`.
    meta: AtomicU64,
}

/// Lock-free multi-producer ring of the last `capacity` decision samples.
pub struct FlightRing {
    head: AtomicU64,
    slots: Vec<FlightSlot>,
}

impl std::fmt::Debug for FlightRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.total_recorded())
            .finish()
    }
}

impl FlightRing {
    /// A ring retaining the newest `capacity` samples (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| FlightSlot {
                stamp: AtomicU64::new(0),
                t_ns: AtomicU64::new(0),
                latency_ns: AtomicU64::new(0),
                queue_ns: AtomicU64::new(0),
                meta: AtomicU64::new(0),
            })
            .collect();
        FlightRing {
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Samples ever recorded (monotone; the ring retains the newest
    /// `capacity` of them).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one sample. Wait-free: one `fetch_add` plus five relaxed
    /// stores; concurrent writers land in distinct slots except when a
    /// full wrap races, in which case the generation stamp keeps readers
    /// honest.
    pub fn record(&self, s: FlightSample) {
        let h = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        // Invalidate, write fields, then publish the new generation.
        slot.stamp.store(0, Ordering::Release);
        slot.t_ns.store(s.t_ns, Ordering::Relaxed);
        slot.latency_ns.store(s.latency_ns, Ordering::Relaxed);
        slot.queue_ns.store(s.queue_ns, Ordering::Relaxed);
        let meta = (u64::from(s.shard) << 32)
            | (u64::from(s.ring_occupancy) << 1)
            | (u64::from(s.shed) * SHED_BIT);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.stamp.store(h + 1, Ordering::Release);
    }

    /// Best-effort snapshot of retained samples with `t_ns >= from_t_ns`,
    /// sorted by time. Slots written concurrently with the read are
    /// skipped rather than returned torn.
    pub fn snapshot_since(&self, from_t_ns: u64) -> Vec<FlightSample> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let latency_ns = slot.latency_ns.load(Ordering::Relaxed);
            let queue_ns = slot.queue_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let s2 = slot.stamp.load(Ordering::Acquire);
            if s1 != s2 || t_ns < from_t_ns {
                continue;
            }
            out.push(FlightSample {
                t_ns,
                shard: (meta >> 32) as u32,
                latency_ns,
                queue_ns,
                ring_occupancy: ((meta >> 1) & 0x7fff_ffff) as u32,
                shed: meta & SHED_BIT != 0,
            });
        }
        out.sort_by_key(|s| s.t_ns);
        out
    }
}

fn sample_json(s: &FlightSample) -> String {
    format!(
        "{{\"t_ns\": {}, \"shard\": {}, \"latency_ns\": {}, \"queue_ns\": {}, \"ring_occupancy\": {}, \"shed\": {}}}",
        s.t_ns, s.shard, s.latency_ns, s.queue_ns, s.ring_occupancy, s.shed
    )
}

/// Renders the canonical dump document. `tsdb_excerpt` must already be a
/// JSON array (see `Tsdb::excerpt_json`).
pub fn render_flight_dump(
    id: &str,
    trigger: &str,
    t_ns: u64,
    window_ns: u64,
    samples: &[FlightSample],
    events: &[EventRecord],
    tsdb_excerpt: &str,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"id\": {},\n", json_string(id)));
    out.push_str(&format!("  \"trigger\": {},\n", json_string(trigger)));
    out.push_str(&format!("  \"t_ns\": {t_ns},\n"));
    out.push_str(&format!("  \"window_ns\": {window_ns},\n"));
    out.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&sample_json(s));
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"events\": [\n");
    for (i, r) in events.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&event_json(r.shard, &r.event));
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"tsdb\": ");
    out.push_str(if tsdb_excerpt.is_empty() {
        "[]"
    } else {
        tsdb_excerpt
    });
    out.push_str("\n}\n");
    out
}

/// Frozen-dump store: assembles, retains, rate-limits, and (best-effort)
/// persists flight dumps.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: Option<PathBuf>,
    max_dumps: usize,
    min_interval_ns: u64,
    dumps: Vec<(String, String)>,
    next_id: u64,
    last_dump_ns: Option<u64>,
    suppressed: u64,
}

impl FlightRecorder {
    /// A recorder keeping at most `max_dumps` dumps, at least
    /// `min_interval_ns` apart, mirrored into `dir` when set.
    pub fn new(dir: Option<PathBuf>, max_dumps: usize, min_interval_ns: u64) -> Self {
        FlightRecorder {
            dir,
            max_dumps: max_dumps.max(1),
            min_interval_ns,
            dumps: Vec::new(),
            next_id: 0,
            last_dump_ns: None,
            suppressed: 0,
        }
    }

    /// Whether a dump at `now_ns` would be admitted (capacity and rate
    /// limit). Callers can use this to skip assembling the dump at all.
    pub fn should_dump(&self, now_ns: u64) -> bool {
        if self.dumps.len() >= self.max_dumps {
            return false;
        }
        match self.last_dump_ns {
            Some(last) => now_ns.saturating_sub(last) >= self.min_interval_ns,
            None => true,
        }
    }

    /// Freezes a dump. Returns the dump id, or `None` when rate-limited
    /// or at capacity (counted in [`FlightRecorder::suppressed`]).
    #[allow(clippy::too_many_arguments)]
    pub fn record_dump(
        &mut self,
        now_ns: u64,
        trigger: &str,
        window_ns: u64,
        samples: &[FlightSample],
        events: &[EventRecord],
        tsdb_excerpt: &str,
    ) -> Option<String> {
        if !self.should_dump(now_ns) {
            self.suppressed += 1;
            return None;
        }
        self.next_id += 1;
        let id = format!("flight-{:04}", self.next_id);
        let json = render_flight_dump(
            &id,
            trigger,
            now_ns,
            window_ns,
            samples,
            events,
            tsdb_excerpt,
        );
        if let Some(dir) = &self.dir {
            // Best-effort: a full disk must never take down the engine.
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(dir.join(format!("{id}.json")), &json);
        }
        self.dumps.push((id.clone(), json));
        self.last_dump_ns = Some(now_ns);
        Some(id)
    }

    /// The frozen dump document for `id`.
    pub fn get(&self, id: &str) -> Option<&str> {
        self.dumps
            .iter()
            .find(|(i, _)| i == id)
            .map(|(_, j)| j.as_str())
    }

    /// Retained dump ids, oldest first.
    pub fn ids(&self) -> Vec<String> {
        self.dumps.iter().map(|(i, _)| i.clone()).collect()
    }

    /// Dumps retained so far.
    pub fn dump_count(&self) -> usize {
        self.dumps.len()
    }

    /// Triggers refused by the rate limit or the dump cap.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Event, EventKind};
    use std::sync::Arc;

    fn sample(t_ns: u64, shard: u32) -> FlightSample {
        FlightSample {
            t_ns,
            shard,
            latency_ns: 1_500,
            queue_ns: 200,
            ring_occupancy: 3,
            shed: false,
        }
    }

    #[test]
    fn ring_retains_newest_and_filters_by_time() {
        let ring = FlightRing::new(4);
        for t in 0..10u64 {
            ring.record(sample(t, (t % 3) as u32));
        }
        assert_eq!(ring.total_recorded(), 10);
        let all = ring.snapshot_since(0);
        assert_eq!(all.len(), 4);
        assert_eq!(all.first().unwrap().t_ns, 6);
        assert_eq!(all.last().unwrap().t_ns, 9);
        assert_eq!(ring.snapshot_since(8).len(), 2);
    }

    #[test]
    fn ring_roundtrips_meta_fields() {
        let ring = FlightRing::new(2);
        ring.record(FlightSample {
            t_ns: 42,
            shard: 7,
            latency_ns: 123,
            queue_ns: 45,
            ring_occupancy: 31,
            shed: true,
        });
        let got = ring.snapshot_since(0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].shard, 7);
        assert_eq!(got[0].ring_occupancy, 31);
        assert!(got[0].shed);
        assert_eq!(got[0].latency_ns, 123);
        assert_eq!(got[0].queue_ns, 45);
    }

    #[test]
    fn concurrent_producers_never_tear() {
        let ring = Arc::new(FlightRing::new(64));
        let mut handles = Vec::new();
        for p in 0..4u32 {
            let r = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    r.record(FlightSample {
                        t_ns: i,
                        shard: p,
                        // Writer-specific invariant readers can check.
                        latency_ns: u64::from(p) * 1_000_000 + i,
                        queue_ns: i,
                        ring_occupancy: p,
                        shed: false,
                    });
                }
            }));
        }
        for _ in 0..200 {
            for s in ring.snapshot_since(0) {
                assert_eq!(s.latency_ns, u64::from(s.shard) * 1_000_000 + s.t_ns);
                assert_eq!(s.ring_occupancy, s.shard);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.total_recorded(), 8_000);
        assert_eq!(ring.snapshot_since(0).len(), 64);
    }

    #[test]
    fn recorder_rate_limits_and_serves_dumps() {
        let mut rec = FlightRecorder::new(None, 2, 1_000);
        let ev = EventRecord {
            shard: None,
            event: Event {
                seq: 0,
                t_ns: 5,
                kind: EventKind::SloBreach {
                    rule: 0,
                    value: 2.0,
                    threshold: 1.0,
                    burn_fast: 2.0,
                    burn_slow: 1.5,
                },
            },
        };
        let id = rec
            .record_dump(
                10_000,
                "slo_breach:decision_p99",
                5_000,
                &[sample(9_000, 0)],
                &[ev],
                "",
            )
            .expect("first dump admitted");
        assert_eq!(id, "flight-0001");
        // Too soon: suppressed.
        assert!(rec
            .record_dump(10_500, "slo_breach:x", 5_000, &[], &[], "")
            .is_none());
        assert_eq!(rec.suppressed(), 1);
        // Past the interval: admitted; then the cap bites.
        assert!(rec
            .record_dump(12_000, "lifecycle:split", 5_000, &[], &[], "[]")
            .is_some());
        assert!(rec
            .record_dump(99_000, "slo_breach:y", 5_000, &[], &[], "")
            .is_none());
        assert_eq!(rec.dump_count(), 2);
        assert_eq!(rec.ids(), vec!["flight-0001", "flight-0002"]);
        let json = rec.get(&id).expect("served");
        assert!(json.contains("\"trigger\": \"slo_breach:decision_p99\""));
        assert!(json.contains("\"kind\": \"slo_breach\""));
        assert!(json.contains("\"t_ns\": 9000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(rec.get("flight-9999").is_none());
    }

    #[test]
    fn recorder_writes_files_when_given_a_dir() {
        let dir = std::env::temp_dir().join(format!("esharing-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rec = FlightRecorder::new(Some(dir.clone()), 4, 0);
        rec.record_dump(1, "lifecycle:split", 100, &[sample(1, 0)], &[], "[]")
            .expect("dump");
        let written = std::fs::read_to_string(dir.join("flight-0001.json")).expect("file exists");
        assert!(written.contains("\"id\": \"flight-0001\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
