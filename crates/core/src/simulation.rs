//! Day-by-day simulation binding the synthetic workload to the system.

use crate::{ESharing, SystemConfig, SystemMetrics};
use esharing_charging::rebalance::{plan_rebalance, RebalancePlan, StationInventory};
use esharing_dataset::{arrivals, CityConfig, Fleet, SyntheticCity, Timestamp, TripGenerator};
use esharing_geo::Point;
use serde::{Deserialize, Serialize};

/// Summary of one simulated day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayReport {
    /// Day index (0-based from the dataset epoch).
    pub day: u64,
    /// Trips generated (== requests streamed).
    pub trips: usize,
    /// Stations open at the end of the day.
    pub stations: usize,
    /// Low-battery bikes before the evening maintenance.
    pub low_before_maintenance: usize,
    /// Low-battery bikes after maintenance.
    pub low_after_maintenance: usize,
    /// Maintenance cost of the day in dollars.
    pub maintenance_cost: f64,
}

/// Full-run summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Per-day reports in order.
    pub days: Vec<DayReport>,
    /// Final system metrics.
    pub metrics: SystemMetrics,
}

/// An end-to-end simulation: the synthetic city generates trips, Tier 1
/// assigns parking online, the fleet drains batteries, and Tier 2 runs an
/// evening maintenance period every day.
#[derive(Debug)]
pub struct Simulation {
    city: SyntheticCity,
    system: ESharing,
    fleet: Fleet,
    generator: TripGenerator,
    current_day: u64,
    days: Vec<DayReport>,
    /// Pick-up locations of the most recent simulated day (drives the
    /// rebalancing targets).
    last_day_origins: Vec<Point>,
}

impl Simulation {
    /// Creates a simulation over a freshly generated city.
    pub fn new(city_config: &CityConfig, system_config: SystemConfig, seed: u64) -> Self {
        let city = SyntheticCity::generate(city_config);
        let fleet = Fleet::new(
            city_config.fleet_size,
            city.bbox(),
            system_config.energy,
            seed ^ 0xF1EE7,
        );
        let generator = TripGenerator::new(&city, seed);
        Simulation {
            system: ESharing::new(system_config),
            city,
            fleet,
            generator,
            current_day: 0,
            days: Vec::new(),
            last_day_origins: Vec::new(),
        }
    }

    /// The city being simulated.
    pub fn city(&self) -> &SyntheticCity {
        &self.city
    }

    /// The orchestrated system.
    pub fn system(&self) -> &ESharing {
        &self.system
    }

    /// The e-bike fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Generates `n_days` of history, replays them into the fleet, and
    /// bootstraps the system's offline landmarks from the destinations.
    /// Returns the number of historical trips used.
    pub fn bootstrap_days(&mut self, n_days: u64) -> usize {
        let trips = self.generator.generate_days(self.current_day, n_days);
        let destinations = arrivals::destinations_in_window(
            &trips,
            Timestamp::from_day_hour(self.current_day, 0),
            Timestamp::from_day_hour(self.current_day + n_days, 0),
        );
        self.fleet.replay(trips.iter());
        for _ in 0..n_days {
            self.fleet.apply_idle_day();
        }
        self.system.bootstrap(&destinations);
        let last_day_start = Timestamp::from_day_hour(self.current_day + n_days - 1, 0);
        self.last_day_origins = trips
            .iter()
            .filter(|t| t.start_time >= last_day_start)
            .map(|t| t.start)
            .collect();
        self.current_day += n_days;
        trips.len()
    }

    /// Simulates one live day: every trip streams through the online
    /// placement, drains the fleet, and an evening maintenance period
    /// closes the day.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simulation::bootstrap_days`].
    pub fn run_day(&mut self) -> DayReport {
        let trips = self.generator.generate_days(self.current_day, 1);
        for trip in &trips {
            self.system
                .handle_request(trip.end)
                .expect("simulation must be bootstrapped before run_day");
            self.fleet.apply_trip(trip);
        }
        self.last_day_origins = trips.iter().map(|t| t.start).collect();
        self.fleet.apply_idle_day();
        let low_before = self.fleet.low_battery_bikes().len();
        let maintenance = self
            .system
            .maintenance_period(&mut self.fleet)
            .expect("simulation must be bootstrapped before run_day");
        let low_after = self.fleet.low_battery_bikes().len();
        let report = DayReport {
            day: self.current_day,
            trips: trips.len(),
            stations: self.system.stations().len(),
            low_before_maintenance: low_before,
            low_after_maintenance: low_after,
            maintenance_cost: maintenance.total_cost,
        };
        self.days.push(report);
        self.current_day += 1;
        report
    }

    /// Runs a morning rebalancing pass — the §II-B substrate assumption
    /// ("we assume that the reserves of E-bikes are balanced, which
    /// satisfy the demand"): per-station inventories (each bike attributed
    /// to its nearest station) are driven toward targets proportional to
    /// each station's share of pick-up demand, by a single truck of the
    /// given `capacity`. The plan is applied to the fleet (bikes relocate
    /// physically) and returned.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simulation::bootstrap_days`] or with zero
    /// capacity.
    pub fn morning_rebalance(&mut self, capacity: usize) -> RebalancePlan {
        let stations = self.system.stations();
        assert!(
            !stations.is_empty(),
            "simulation must be bootstrapped before rebalancing"
        );
        // Demand share per station: the latest day's pick-ups nearest to it.
        let yesterday = self.last_day_origins.clone();
        let nearest = |p: Point| -> usize {
            stations
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    p.distance(**a)
                        .partial_cmp(&p.distance(**b))
                        .expect("finite")
                })
                .map(|(i, _)| i)
                .expect("non-empty stations")
        };
        let mut demand = vec![0usize; stations.len()];
        for origin in yesterday {
            demand[nearest(origin)] += 1;
        }
        // Inventories: every bike attributed to its nearest station.
        let mut bikes_at = vec![0usize; stations.len()];
        let mut bike_station: Vec<(u64, usize)> = Vec::with_capacity(self.fleet.len());
        for bike in self.fleet.bikes() {
            let s = nearest(bike.location);
            bikes_at[s] += 1;
            bike_station.push((bike.bike_id, s));
        }
        // Targets: fleet size split by demand share (largest remainders
        // resolve rounding).
        let total_demand: usize = demand.iter().sum::<usize>().max(1);
        let fleet_size = self.fleet.len();
        let mut targets: Vec<usize> = demand
            .iter()
            .map(|&d| d * fleet_size / total_demand)
            .collect();
        let mut assigned: usize = targets.iter().sum();
        let n_targets = targets.len();
        let mut i = 0usize;
        while assigned < fleet_size {
            targets[i % n_targets] += 1;
            assigned += 1;
            i += 1;
        }
        let inventories: Vec<StationInventory> = bikes_at
            .iter()
            .zip(&targets)
            .map(|(&bikes, &target)| StationInventory { bikes, target })
            .collect();
        let plan = plan_rebalance(Point::ORIGIN, &stations, &inventories, capacity);
        // Apply: move the planned number of bikes between stations.
        let mut to_move: Vec<i64> = vec![0; stations.len()];
        for stop in &plan.stops {
            to_move[stop.station] += stop.delta;
        }
        // Collect donor bikes per station, then distribute to receivers.
        let mut donors: Vec<u64> = Vec::new();
        for (bike_id, s) in &bike_station {
            if to_move[*s] > 0 {
                donors.push(*bike_id);
                to_move[*s] -= 1;
            }
        }
        for (s, need) in to_move.iter_mut().enumerate() {
            while *need < 0 {
                if let Some(bike_id) = donors.pop() {
                    self.fleet.relocate(bike_id, stations[s]);
                    *need += 1;
                } else {
                    break;
                }
            }
        }
        plan
    }

    /// The cumulative report so far.
    pub fn report(&self) -> SimulationReport {
        SimulationReport {
            days: self.days.clone(),
            metrics: *self.system.metrics(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_city() -> CityConfig {
        CityConfig {
            trips_per_day: 600.0,
            fleet_size: 400,
            ..CityConfig::default()
        }
    }

    fn small_system() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn bootstrap_then_run_days() {
        let mut sim = Simulation::new(&small_city(), small_system(), 1);
        let hist = sim.bootstrap_days(2);
        assert!(hist > 500, "history too small: {hist}");
        assert!(!sim.system().landmarks().is_empty());
        let d1 = sim.run_day();
        let d2 = sim.run_day();
        assert_eq!(d1.day, 2);
        assert_eq!(d2.day, 3);
        assert!(d1.trips > 100);
        assert!(d1.stations >= sim.system().landmarks().len());
        let report = sim.report();
        assert_eq!(report.days.len(), 2);
        assert_eq!(report.metrics.requests_served as usize, d1.trips + d2.trips);
    }

    #[test]
    fn maintenance_keeps_fleet_alive() {
        let mut sim = Simulation::new(&small_city(), small_system(), 2);
        sim.bootstrap_days(1);
        let mut lows = Vec::new();
        for _ in 0..4 {
            let d = sim.run_day();
            lows.push((d.low_before_maintenance, d.low_after_maintenance));
        }
        // Maintenance never increases the low count, and the fleet never
        // collapses to all-low.
        for (before, after) in lows {
            assert!(after <= before);
            assert!(after < sim.fleet().len());
        }
    }

    #[test]
    fn morning_rebalance_moves_toward_demand() {
        let mut sim = Simulation::new(&small_city(), small_system(), 8);
        sim.bootstrap_days(2);
        sim.run_day();
        let plan = sim.morning_rebalance(10);
        // A busy synthetic city always has imbalance to fix.
        assert!(plan.bikes_moved > 0, "no bikes moved");
        assert!(plan.distance_m > 0.0);
        // A second immediate pass finds (almost) nothing left to move:
        // inventories now match targets up to supply shortages.
        let again = sim.morning_rebalance(10);
        assert!(
            again.bikes_moved <= plan.bikes_moved / 2,
            "second pass moved {} of {}",
            again.bikes_moved,
            plan.bikes_moved
        );
    }

    #[test]
    #[should_panic(expected = "bootstrapped")]
    fn rebalance_requires_bootstrap() {
        let mut sim = Simulation::new(&small_city(), small_system(), 9);
        let _ = sim.morning_rebalance(10);
    }

    #[test]
    #[should_panic(expected = "bootstrapped")]
    fn run_day_requires_bootstrap() {
        let mut sim = Simulation::new(&small_city(), small_system(), 3);
        let _ = sim.run_day();
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = Simulation::new(&small_city(), small_system(), 4);
            sim.bootstrap_days(1);
            sim.run_day();
            sim.run_day();
            sim.report()
        };
        assert_eq!(run(), run());
    }
}
