//! # esharing-stats
//!
//! Statistical substrate for the E-Sharing reproduction.
//!
//! The paper's online placement algorithm (Algorithm 2) periodically runs
//! **Peacock's two-dimensional Kolmogorov–Smirnov test** between the
//! historical trip-destination distribution and the live stream, and uses
//! the resulting similarity to pick a deviation-penalty function. This crate
//! provides:
//!
//! * [`Ecdf`] — one-dimensional empirical CDFs and the classical two-sample
//!   KS statistic,
//! * [`ks2d`] — Peacock's 2-D two-sample test (exact reference
//!   implementation plus the quadrant statistic evaluated at sample points),
//! * [`samplers`] — the 2-D random request distributions used in the paper's
//!   §V-B penalty-function study (uniform, normal, Poisson-radial),
//! * [`metrics`] — RMSE/MAE/MAPE used by the prediction engine (Table II),
//! * [`RunningStats`] — Welford online mean/variance for streaming
//!   telemetry.
//!
//! # Examples
//!
//! ```
//! use esharing_stats::ks2d;
//! use esharing_geo::Point;
//!
//! let a: Vec<Point> = (0..50).map(|i| Point::new(i as f64, i as f64)).collect();
//! let b: Vec<Point> = (0..50).map(|i| Point::new(i as f64 + 0.1, i as f64)).collect();
//! let d = ks2d::peacock_statistic(&a, &b);
//! assert!(d < 0.1, "nearly identical distributions have small D");
//! assert!(ks2d::similarity_percent(&a, &b) > 90.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ecdf;
mod histogram2d;
pub mod ks2d;
pub mod metrics;
pub mod parallel;
mod running;
pub mod samplers;

pub use ecdf::Ecdf;
pub use histogram2d::Histogram2d;
pub use running::RunningStats;
