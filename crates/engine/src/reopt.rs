//! Epochal re-optimization: closing the loop between the online monitor
//! and the offline solver, without stopping the engine.
//!
//! The offline JMS solution a shard boots with describes *yesterday's*
//! demand. As live requests accumulate, the deviation monitor's KS
//! machinery already measures how far today has drifted; this module
//! consumes that signal. A maintenance pass ([`Engine::reopt_tick`],
//! optionally driven by a background thread on
//! [`ReoptConfig::interval_ms`]) walks the fleet and, for each zone
//! whose doubling epoch advanced or whose KS similarity fell below
//! [`ReoptConfig::similarity_threshold`], re-derives the landmark set
//! from the trailing demand window:
//!
//! 1. **Forecast.** The zone's demand-level series (one sample per
//!    triggered pass) is re-fed to a
//!    [`Forecaster`](esharing_forecast::Forecaster) via
//!    `fit_incremental` — warm weights, fractional epoch budget — and
//!    the forecast scales the observed cell counts toward the predicted
//!    demand level.
//! 2. **Warm re-solve.** Window points quantize onto a fixed grid
//!    (cell centers, keys sorted), so successive passes present the JMS
//!    solver with the *same candidate sites* and only the weights move.
//!    A persistent
//!    [`JmsSolverContext`](esharing_placement::offline::JmsSolverContext)
//!    per zone then repairs the previous run's cost structure under a
//!    delta mask instead of solving from scratch — bit-identical to a
//!    cold solve at a fraction of the cost. Geometry churn (new cells
//!    carrying real mass) falls back to a cold solve on the new set.
//! 3. **Hot swap.** If the re-solve moves the landmark set, the zone's
//!    running shard is replaced through the same moved-seat protocol
//!    lifecycle operations use: the seat is held just long enough to
//!    restore the online state around the new landmarks (online opens,
//!    RNG position, cost accumulators and KS state all carry over), the
//!    router table swaps with the zone re-anchored at the new landmark
//!    centroid, and blocked submitters bounce to the new slot. Decisions
//!    never pause; the swap is journalled as
//!    [`EventKind::EpochSwapped`] and stamped into checkpoint
//!    provenance ([`ShardCheckpoint::reopt_epoch`]
//!    (crate::checkpoint::ShardCheckpoint::reopt_epoch)).
//!
//! The loop is off by default ([`ReoptConfig::enabled`]); a disabled
//! loop allocates nothing and leaves the engine's decision stream —
//! including the 1-shard [`RequestServer`]
//! (esharing_core::server::RequestServer) equivalence — untouched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use std::{error::Error, fmt};

use esharing_core::{ESharing, SystemCheckpoint};
use esharing_forecast::{Forecaster, Lstm, LstmConfig, MovingAverage};
use esharing_geo::Point;
use esharing_placement::offline::JmsSolverContext;
use esharing_placement::online::DeviationCheckpoint;
use esharing_placement::PlpInstance;
use esharing_telemetry::EventKind;

use crate::checkpoint::encode_checkpoint;
use crate::engine::{
    elapsed_ns, spawn_slot, Engine, EngineShared, RouterTable, ShardLane, SlotSpec, WorkerHandle,
};
use crate::lifecycle::PolicyState;

/// Which forecasting model the re-optimization loop retrains on each
/// zone's demand-level series.
#[derive(Debug, Clone, PartialEq)]
pub enum ReoptForecast {
    /// Windowed moving average — cheap, robust on short series.
    MovingAverage {
        /// Trailing samples averaged per forecast step.
        window: usize,
    },
    /// The LSTM forecaster, warm-retrained via its incremental path
    /// (weights and Adam moments carried over, quarter epoch budget).
    Lstm(LstmConfig),
}

/// Tuning for the epochal re-optimization loop. Disabled by default.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptConfig {
    /// Master switch. Off: no per-zone solver state is kept, no thread
    /// runs, [`Engine::reopt_tick`] returns
    /// [`ReoptError::ReoptDisabled`].
    pub enabled: bool,
    /// Background maintenance cadence in milliseconds; `0` means no
    /// thread is spawned and re-optimization runs only when the caller
    /// invokes [`Engine::reopt_tick`] (the deterministic mode every
    /// test and experiment uses).
    pub interval_ms: u64,
    /// KS escalation trigger: a zone whose last periodic similarity
    /// fell below this fraction re-solves immediately, ahead of its
    /// epoch cadence.
    pub similarity_threshold: f64,
    /// Maximum candidate cells per zone fed to the JMS re-solve (the
    /// heaviest cells win). Bounds warm-context memory.
    pub max_cells: usize,
    /// Forecast steps ahead averaged into the demand-level scale.
    pub horizon: usize,
    /// Cap on the per-zone demand-level series the forecaster trains
    /// on (oldest samples are dropped past this).
    pub series_cap: usize,
    /// Forecasting model choice.
    pub forecast: ReoptForecast,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        ReoptConfig {
            enabled: false,
            interval_ms: 0,
            similarity_threshold: 0.6,
            max_cells: 250,
            horizon: 3,
            series_cap: 256,
            forecast: ReoptForecast::MovingAverage { window: 4 },
        }
    }
}

impl ReoptConfig {
    pub(crate) fn validate(&self) {
        assert!(
            self.similarity_threshold > 0.0 && self.similarity_threshold <= 1.0,
            "similarity threshold must be in (0, 1]"
        );
        assert!(self.max_cells > 0, "max cells must be positive");
        assert!(self.horizon > 0, "forecast horizon must be positive");
        assert!(
            self.series_cap >= 2,
            "series cap must hold at least 2 samples"
        );
        if let ReoptForecast::MovingAverage { window } = self.forecast {
            assert!(window > 0, "moving-average window must be positive");
        }
    }
}

/// Error returned by [`Engine::reopt_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptError {
    /// [`ReoptConfig::enabled`] is false.
    ReoptDisabled,
    /// The engine has shut down.
    Closed,
}

impl fmt::Display for ReoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReoptError::ReoptDisabled => write!(f, "re-optimization loop is disabled"),
            ReoptError::Closed => write!(f, "the serving engine has shut down"),
        }
    }
}

impl Error for ReoptError {}

/// Why a zone re-solved this pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptTrigger {
    /// The zone's doubling epoch advanced since its last re-solve.
    EpochBoundary,
    /// The KS monitor reported similarity below
    /// [`ReoptConfig::similarity_threshold`].
    DriftEscalation,
}

/// One zone's outcome from a [`Engine::reopt_tick`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptOutcome {
    /// The zone's slot index.
    pub shard: usize,
    /// What fired the re-solve.
    pub trigger: ReoptTrigger,
    /// Whether the JMS re-solve ran warm (delta repair against the
    /// previous solution) rather than cold.
    pub warm: bool,
    /// Wall-clock nanoseconds the JMS re-solve took.
    pub solve_ns: u64,
    /// Whether the re-solve moved the landmark set and the shard was
    /// hot-swapped.
    pub swapped: bool,
    /// Landmark count before the pass.
    pub landmarks_before: usize,
    /// Landmark count after the pass (equal to `landmarks_before` when
    /// `swapped` is false).
    pub landmarks_after: usize,
}

/// Lifetime counters of the re-optimization loop, for `/metrics` and
/// experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReoptStats {
    /// Landmark hot-swaps committed.
    pub swaps_total: u64,
    /// Warm (delta-repair) JMS re-solves.
    pub warm_solves: u64,
    /// Cold (from-scratch) JMS solves.
    pub cold_solves: u64,
    /// Duration of the most recent warm re-solve, nanoseconds.
    pub last_warm_ns: u64,
    /// Duration of the most recent cold solve, nanoseconds.
    pub last_cold_ns: u64,
}

/// One zone's entry in a published [`LandmarkTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneLandmarks {
    /// Slot index the zone serves under.
    pub shard: usize,
    /// The zone's re-optimization epoch (0 = bootstrap solution).
    pub reopt_epoch: u64,
    /// The landmark set in force.
    pub landmarks: Vec<Point>,
}

/// An epoch-stamped snapshot of every zone's landmark set, republished
/// after each pass that commits at least one hot-swap. Readers hold the
/// `Arc` they fetched; swaps never mutate a published table.
#[derive(Debug, Clone, PartialEq)]
pub struct LandmarkTable {
    /// Monotone publication stamp (total hot-swaps committed fleet-wide
    /// at publication time).
    pub epoch: u64,
    /// Per-zone landmark sets, in slot order.
    pub zones: Vec<ZoneLandmarks>,
}

/// Per-zone persistent solver state. Lives in [`ReoptRuntime::state`],
/// keyed by slot index; reset whenever the slot's landmark set no
/// longer matches `sig` (a lifecycle split/merge/recover replaced the
/// zone out from under us).
struct ZoneState {
    /// The landmark set this state was built against — the zone
    /// identity check.
    sig: Vec<Point>,
    /// Fixed candidate-cell keys, sorted; positions derive from keys so
    /// successive instances are position-stable (the warm contract).
    cells: Vec<(i64, i64)>,
    /// The scaled per-cell counts of the previous instance (the warm
    /// delta baseline).
    counts: Vec<u64>,
    /// Persistent JMS solver state: cost matrix, per-site orderings,
    /// credit scatter, previous solution.
    ctx: JmsSolverContext,
    /// Demand-level series (window size per triggered pass) the
    /// forecaster retrains on.
    series: Vec<f64>,
    forecaster: Box<dyn Forecaster + Send>,
    /// The zone's doubling epoch at the last pass (the cadence
    /// trigger's baseline).
    last_epoch: u64,
    /// Whether the baseline pass (candidate geometry + series seed) has
    /// completed; triggers only fire after it.
    primed: bool,
}

impl ZoneState {
    fn new(cfg: &ReoptConfig, sig: Vec<Point>) -> Self {
        let forecaster: Box<dyn Forecaster + Send> = match &cfg.forecast {
            ReoptForecast::MovingAverage { window } => {
                Box::new(MovingAverage::new(*window).expect("validated moving-average window"))
            }
            ReoptForecast::Lstm(lstm) => {
                Box::new(Lstm::new(lstm.clone()).expect("validated LSTM config"))
            }
        };
        ZoneState {
            sig,
            cells: Vec::new(),
            counts: Vec::new(),
            ctx: JmsSolverContext::new(),
            series: Vec::new(),
            forecaster,
            last_epoch: 0,
            primed: false,
        }
    }
}

/// Shared state of the re-optimization loop, hung off
/// [`EngineShared`] when [`ReoptConfig::enabled`] is set.
pub(crate) struct ReoptRuntime {
    cfg: ReoptConfig,
    /// Per-slot zone state; indices track the router table's. All
    /// access happens under the engine gate, the mutex only satisfies
    /// `Sync`.
    state: Mutex<Vec<Option<ZoneState>>>,
    /// The last published landmark table.
    table: Mutex<Arc<LandmarkTable>>,
    swaps_total: AtomicU64,
    warm_solves: AtomicU64,
    cold_solves: AtomicU64,
    last_warm_ns: AtomicU64,
    last_cold_ns: AtomicU64,
}

impl ReoptRuntime {
    pub(crate) fn new(cfg: ReoptConfig, initial: &RouterTable) -> Self {
        ReoptRuntime {
            cfg,
            state: Mutex::new(Vec::new()),
            table: Mutex::new(Arc::new(landmark_table_of(initial, 0))),
            swaps_total: AtomicU64::new(0),
            warm_solves: AtomicU64::new(0),
            cold_solves: AtomicU64::new(0),
            last_warm_ns: AtomicU64::new(0),
            last_cold_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> ReoptStats {
        ReoptStats {
            swaps_total: self.swaps_total.load(Ordering::Relaxed),
            warm_solves: self.warm_solves.load(Ordering::Relaxed),
            cold_solves: self.cold_solves.load(Ordering::Relaxed),
            last_warm_ns: self.last_warm_ns.load(Ordering::Relaxed),
            last_cold_ns: self.last_cold_ns.load(Ordering::Relaxed),
        }
    }

    fn published(&self) -> Arc<LandmarkTable> {
        Arc::clone(&self.table.lock().expect("landmark table not poisoned"))
    }

    fn publish(&self, table: LandmarkTable) {
        *self.table.lock().expect("landmark table not poisoned") = Arc::new(table);
    }
}

/// Builds the published view of `table`'s landmark sets.
fn landmark_table_of(table: &RouterTable, epoch: u64) -> LandmarkTable {
    LandmarkTable {
        epoch,
        zones: table
            .shards
            .iter()
            .enumerate()
            .map(|(i, slot)| ZoneLandmarks {
                shard: i,
                reopt_epoch: slot.reopt_epoch.load(Ordering::Relaxed),
                landmarks: slot.landmarks.clone(),
            })
            .collect(),
    }
}

/// Quantizes `points` onto the fixed grid: per-key counts, keys sorted.
/// The same key always yields the same cell-center position, which is
/// what keeps candidate positions stable across passes (the warm-solve
/// contract requires byte-identical client positions).
fn quantize(points: &[Point], cell_m: f64) -> Vec<((i64, i64), u64)> {
    let mut counts: std::collections::BTreeMap<(i64, i64), u64> = std::collections::BTreeMap::new();
    for p in points {
        let key = ((p.x / cell_m).floor() as i64, (p.y / cell_m).floor() as i64);
        *counts.entry(key).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// The fixed position of a quantized cell.
fn cell_center(key: (i64, i64), cell_m: f64) -> Point {
    Point::new((key.0 as f64 + 0.5) * cell_m, (key.1 as f64 + 0.5) * cell_m)
}

/// Whether two landmark sets are the same set (order-insensitive,
/// bitwise coordinate equality).
fn same_landmarks(a: &[Point], b: &[Point]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let key = |p: &Point| (p.x.to_bits(), p.y.to_bits());
    let mut a: Vec<_> = a.iter().map(key).collect();
    let mut b: Vec<_> = b.iter().map(key).collect();
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

/// What the off-seat probe captured from one zone's seat.
struct ZoneProbe {
    deviation: DeviationCheckpoint,
    similarity: Option<f64>,
}

impl EngineShared {
    /// Takes the engine gate for a re-optimization pass. The same gate
    /// serializes lifecycle operations, so a pass never races a
    /// split/merge/kill and vice versa.
    fn reopt_gate(&self) -> Result<MutexGuard<'_, PolicyState>, ReoptError> {
        if self.reopt.is_none() {
            return Err(ReoptError::ReoptDisabled);
        }
        let gate = self.gate.lock().expect("engine gate not poisoned");
        if self.closed.load(Ordering::Acquire) {
            return Err(ReoptError::Closed);
        }
        Ok(gate)
    }

    /// One guarded maintenance pass; see [`Engine::reopt_tick`].
    pub(crate) fn reopt_tick_shared(&self) -> Result<Vec<ReoptOutcome>, ReoptError> {
        let _gate = self.reopt_gate()?;
        self.reopt_tick_locked()
    }

    fn reopt_tick_locked(&self) -> Result<Vec<ReoptOutcome>, ReoptError> {
        let runtime = self.reopt.as_ref().expect("gate checked runtime presence");
        let cfg = runtime.cfg.clone();
        let mut zones = runtime.state.lock().expect("reopt state not poisoned");
        let mut outcomes = Vec::new();
        let shard_count = self.table().shards.len();
        if zones.len() < shard_count {
            zones.resize_with(shard_count, || None);
        }
        let mut swapped_any = false;
        for i in 0..shard_count {
            // Re-fetch per iteration: a swap committed for an earlier
            // zone replaced the table, and this pass must build on it.
            let table = self.table();
            let Some(slot) = table.shards.get(i) else {
                break;
            };
            let ShardLane::Fast { seat, .. } = &slot.lane else {
                // Mailbox shards (like lifecycle) stay on the baseline
                // path; dead shards have no seat to probe.
                continue;
            };

            // Brief seat probe: clone the deviation image and release.
            // The solve below runs entirely off-seat.
            let probe = {
                let seat = seat.lock().expect("seat not poisoned");
                if seat.moved {
                    continue;
                }
                let Some(system) = seat.system.as_ref() else {
                    return Err(ReoptError::Closed);
                };
                let Some(ckpt) = system.checkpoint() else {
                    continue;
                };
                ZoneProbe {
                    similarity: ckpt.deviation.last_similarity,
                    deviation: ckpt.deviation,
                }
            };

            // Zone identity: a lifecycle operation that changed the
            // slot's landmark set invalidates any prior solver state.
            let entry = &mut zones[i];
            let stale = match entry.as_ref() {
                Some(z) => z.sig != slot.landmarks,
                None => true,
            };
            if stale {
                *entry = Some(ZoneState::new(&cfg, slot.landmarks.clone()));
            }
            let zone = entry.as_mut().expect("zone state just ensured");

            let window: &[Point] = if probe.deviation.window.is_empty() {
                &probe.deviation.history
            } else {
                &probe.deviation.window
            };

            if !zone.primed {
                // Baseline pass: record the candidate geometry and seed
                // the demand series without solving, so the first
                // triggered pass re-solves against a known baseline and
                // untriggered zones are never touched.
                if !window.is_empty() {
                    let quantized =
                        prune(quantize(window, self.cfg.system.grid_cell_m), cfg.max_cells);
                    let mass_scale = mass_scale_of(slot.bootstrap_mass, &quantized);
                    zone.cells = quantized.iter().map(|&(k, _)| k).collect();
                    zone.counts = quantized
                        .iter()
                        .map(|&(_, c)| scaled(c, mass_scale))
                        .collect();
                    let instance = instance_of(&zone.cells, &zone.counts, &self.cfg);
                    let started = Instant::now();
                    zone.ctx.solve(&instance);
                    note_solve(runtime, false, &started);
                    zone.series.push(window.len() as f64);
                    zone.primed = true;
                }
                zone.last_epoch = probe.deviation.epoch;
                continue;
            }

            // Trigger matrix: KS escalation outranks the epoch cadence.
            let escalated = probe
                .similarity
                .is_some_and(|s| s < cfg.similarity_threshold);
            let boundary = probe.deviation.epoch > zone.last_epoch;
            if !escalated && !boundary {
                continue;
            }
            let trigger = if escalated {
                ReoptTrigger::DriftEscalation
            } else {
                ReoptTrigger::EpochBoundary
            };
            zone.last_epoch = probe.deviation.epoch;
            if window.is_empty() {
                continue;
            }

            // Forecast: retrain incrementally on the demand-level
            // series and scale the observed counts toward the
            // prediction. A series too short to fit leaves scale at 1.
            zone.series.push(window.len() as f64);
            if zone.series.len() > cfg.series_cap {
                let drop = zone.series.len() - cfg.series_cap;
                zone.series.drain(..drop);
            }
            let scale = match zone.forecaster.fit_incremental(&zone.series) {
                Ok(()) => zone
                    .forecaster
                    .forecast(&zone.series, cfg.horizon)
                    .ok()
                    .and_then(|f| {
                        let predicted = f.iter().sum::<f64>() / f.len().max(1) as f64;
                        let recent = *zone.series.last().expect("series just extended");
                        (recent > 0.0).then(|| (predicted / recent).clamp(0.25, 4.0))
                    })
                    .unwrap_or(1.0),
                Err(_) => 1.0,
            };

            // Re-quantize the window onto the fixed grid and decide
            // warm vs cold: same candidate set → delta-mask repair;
            // real mass on unseen cells → cold solve on the new set.
            let quantized = prune(quantize(window, self.cfg.system.grid_cell_m), cfg.max_cells);
            let total: u64 = quantized.iter().map(|&(_, c)| c).sum();
            // Normalize the KS-window sample back up to the demand mass
            // the zone was planned on: facility-location trades walking
            // against `space_cost`, so a window holding a twentieth of
            // the bootstrap arrivals would otherwise open a twentieth of
            // the landmarks. The forecast ratio then rides on top of the
            // normalized mass.
            let scale = scale * mass_scale_of(slot.bootstrap_mass, &quantized);
            let unseen: u64 = quantized
                .iter()
                .filter(|(k, _)| zone.cells.binary_search(k).is_err())
                .map(|&(_, c)| c)
                .sum();
            let cold = total == 0 || unseen * 4 > total;
            let started = Instant::now();
            let new_landmarks = if cold {
                zone.cells = quantized.iter().map(|&(k, _)| k).collect();
                zone.counts = quantized.iter().map(|&(_, c)| scaled(c, scale)).collect();
                let instance = instance_of(&zone.cells, &zone.counts, &self.cfg);
                let solution = zone.ctx.solve(&instance);
                solution.facility_points(&instance)
            } else {
                let mut counts = vec![0u64; zone.cells.len()];
                for (k, c) in &quantized {
                    if let Ok(j) = zone.cells.binary_search(k) {
                        counts[j] = scaled(*c, scale);
                    }
                }
                let changed: Vec<usize> = (0..counts.len())
                    .filter(|&j| counts[j] != zone.counts[j])
                    .collect();
                zone.counts = counts;
                let instance = instance_of(&zone.cells, &zone.counts, &self.cfg);
                let solution = zone.ctx.resolve(&instance, &changed);
                solution.facility_points(&instance)
            };
            note_solve(runtime, !cold, &started);
            let solve_ns = elapsed_of(&started);

            let landmarks_before = slot.landmarks.len();
            if new_landmarks.is_empty() || same_landmarks(&new_landmarks, &slot.landmarks) {
                outcomes.push(ReoptOutcome {
                    shard: i,
                    trigger,
                    warm: !cold,
                    solve_ns,
                    swapped: false,
                    landmarks_before,
                    landmarks_after: landmarks_before,
                });
                continue;
            }

            // Commit: hot-swap the shard onto the new landmark set
            // through the moved-seat protocol.
            self.commit_swap(&table, i, &new_landmarks, !cold)?;
            zone.sig = new_landmarks.clone();
            swapped_any = true;
            outcomes.push(ReoptOutcome {
                shard: i,
                trigger,
                warm: !cold,
                solve_ns,
                swapped: true,
                landmarks_before,
                landmarks_after: new_landmarks.len(),
            });
        }
        if swapped_any {
            let table = self.table();
            runtime.publish(landmark_table_of(
                &table,
                runtime.swaps_total.load(Ordering::Relaxed),
            ));
        }
        Ok(outcomes)
    }

    /// Replaces slot `shard` with a system restored around
    /// `new_landmarks`, swapping the router table while the retired
    /// seat is held (the moved-seat protocol): blocked submitters wake,
    /// observe `moved`, reload the table and land on the new slot —
    /// decisions never pause.
    fn commit_swap(
        &self,
        table: &Arc<RouterTable>,
        shard: usize,
        new_landmarks: &[Point],
        warm: bool,
    ) -> Result<(), ReoptError> {
        let runtime = self
            .reopt
            .as_ref()
            .expect("swap only runs with the loop on");
        let slot = &table.shards[shard];
        let ShardLane::Fast { seat, .. } = &slot.lane else {
            unreachable!("only fast-lane zones re-solve");
        };
        let mut seat_guard = seat.lock().expect("seat not poisoned");
        let state = &mut **seat_guard;
        let system = state.system.as_ref().ok_or(ReoptError::Closed)?;
        // A *fresh* checkpoint, not the probe's: requests admitted
        // while the solve ran off-seat must carry into the restored
        // system bit-exactly.
        let Some(ckpt) = system.checkpoint() else {
            return Ok(());
        };
        let system_cfg = system.config().clone();
        let dev = &ckpt.deviation;
        let k_old = usize::try_from(dev.k)
            .expect("checkpoint k fits usize")
            .min(dev.stations.len());
        // The station log swaps its landmark prefix for the new set;
        // online opens (the suffix) survive verbatim, as do the RNG
        // position, cost accumulators, penalty state and KS machinery.
        let new_dev = DeviationCheckpoint {
            k: new_landmarks.len() as u64,
            stations: new_landmarks
                .iter()
                .chain(&dev.stations[k_old..])
                .copied()
                .collect(),
            // A pending drift re-test snapshotted the old landmark
            // regime; both sides re-arm at the next boundary.
            pending: None,
            ..dev.clone()
        };
        let new_system = ESharing::restore(
            system_cfg,
            SystemCheckpoint {
                landmarks: new_landmarks.to_vec(),
                metrics: ckpt.metrics,
                deviation: new_dev,
            },
        );
        let next_epoch = slot.reopt_epoch.load(Ordering::Relaxed) + 1;
        let next_swaps = slot.landmark_swaps.load(Ordering::Relaxed) + 1;
        // Durability carries over: same WAL, and a fresh checkpoint at
        // the current WAL head so recovery replays only what this
        // restored image hasn't seen.
        let (wal, high_water, checkpoint) = match &slot.wal {
            Some(wal) => {
                let high = wal.lock().expect("wal not poisoned").total_recorded();
                let bytes =
                    encode_checkpoint(&new_system, &state.latency, high, next_epoch, next_swaps);
                (Some(Arc::clone(wal)), high, bytes)
            }
            None => (None, 0, None),
        };
        state.moved = true;
        let _ = state.system.take();
        let mut map = table.map.clone();
        map.reanchor_zone(shard, crate::lifecycle::centroid(new_landmarks));
        let new_slot = spawn_slot(
            &self.cfg,
            self.epoch,
            shard,
            self.health.clone(),
            SlotSpec {
                system: new_system,
                latency: state.latency.clone(),
                landmarks: new_landmarks.to_vec(),
                shed: slot.shed.load(Ordering::Relaxed),
                last_shed_depth: slot.last_shed_depth.load(Ordering::Relaxed),
                wal,
                checkpoint,
                wal_high_water: high_water,
                reopt_epoch: next_epoch,
                landmark_swaps: next_swaps,
                bootstrap_mass: slot.bootstrap_mass,
            },
        );
        let mut shards = table.shards.clone();
        shards[shard] = new_slot;
        self.swap_table(Arc::new(RouterTable { map, shards }));
        drop(seat_guard);
        // Stop the retired drain worker only after the swap: its ring
        // keeps draining accepted jobs to completion first.
        if let Some(WorkerHandle::Fast { handle, stop }) =
            slot.worker.lock().expect("worker slot not poisoned").take()
        {
            stop.store(true, Ordering::Release);
            let _ = handle.join();
        }
        self.journal_lifecycle(EventKind::EpochSwapped {
            shard: shard as u64,
            epoch: next_epoch,
            landmarks_before: slot.landmarks.len() as u64,
            landmarks_after: new_landmarks.len() as u64,
            warm,
        });
        if let Some(h) = &self.health {
            h.on_lifecycle("reopt", elapsed_ns(self.epoch));
        }
        runtime.swaps_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Keeps the `max` heaviest cells, returned in key order (binary-search
/// friendly, position-stable).
fn prune(mut quantized: Vec<((i64, i64), u64)>, max: usize) -> Vec<((i64, i64), u64)> {
    if quantized.len() > max {
        quantized.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        quantized.truncate(max);
        quantized.sort_by_key(|&(k, _)| k);
    }
    quantized
}

/// Builds the JMS instance for one zone's fixed cells and current
/// counts. Weights floor at 1 inside `from_weighted_centroids`, so a
/// zero-count cell stays a valid (light) client and the instance shape
/// never changes between warm passes.
fn instance_of(
    cells: &[(i64, i64)],
    counts: &[u64],
    cfg: &crate::engine::EngineConfig,
) -> PlpInstance {
    let pairs: Vec<(Point, u64)> = cells
        .iter()
        .zip(counts)
        .map(|(&k, &c)| (cell_center(k, cfg.system.grid_cell_m), c))
        .collect();
    PlpInstance::from_weighted_centroids(&pairs, cfg.system.space_cost_m)
}

fn elapsed_of(started: &Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn note_solve(runtime: &ReoptRuntime, warm: bool, started: &Instant) {
    let ns = elapsed_of(started);
    if warm {
        runtime.warm_solves.fetch_add(1, Ordering::Relaxed);
        runtime.last_warm_ns.store(ns, Ordering::Relaxed);
    } else {
        runtime.cold_solves.fetch_add(1, Ordering::Relaxed);
        runtime.last_cold_ns.store(ns, Ordering::Relaxed);
    }
}

/// Ratio lifting a quantized window's total demand mass back to the
/// mass the zone's landmarks were planned against. Degenerate inputs
/// (empty window, unplanned zone) normalize to 1.
fn mass_scale_of(bootstrap_mass: u64, quantized: &[((i64, i64), u64)]) -> f64 {
    let total: u64 = quantized.iter().map(|&(_, c)| c).sum();
    if total == 0 || bootstrap_mass == 0 {
        1.0
    } else {
        bootstrap_mass as f64 / total as f64
    }
}

fn scaled(count: u64, scale: f64) -> u64 {
    (count as f64 * scale).round().max(0.0) as u64
}

/// The background maintenance loop: sleeps in short quanta so shutdown
/// joins promptly, fires a guarded pass every `interval_ms`. Holds only
/// a weak reference — the thread never keeps a dropped engine alive.
pub(crate) fn reopt_loop(shared: Weak<EngineShared>, interval_ms: u64) {
    let interval = Duration::from_millis(interval_ms.max(1));
    let quantum = Duration::from_millis(25).min(interval);
    let mut next = Instant::now() + interval;
    loop {
        {
            let Some(shared) = shared.upgrade() else {
                return;
            };
            if shared.closed.load(Ordering::Acquire) {
                return;
            }
            if Instant::now() >= next {
                // Closed mid-pass surfaces as Err(Closed); the next
                // quantum's check exits the loop.
                let _ = shared.reopt_tick_shared();
                next = Instant::now() + interval;
            }
        }
        std::thread::park_timeout(quantum);
    }
}

/// Spawns the background loop when configured; the caller stores the
/// handle for joining at shutdown.
pub(crate) fn spawn_reopt_worker(shared: &Arc<EngineShared>) -> Option<JoinHandle<()>> {
    let interval = shared.cfg.reopt.interval_ms;
    if shared.reopt.is_none() || interval == 0 {
        return None;
    }
    let weak = Arc::downgrade(shared);
    Some(std::thread::spawn(move || reopt_loop(weak, interval)))
}

impl Engine {
    /// Runs one re-optimization pass over the fleet: probes every fast
    /// shard's drift state, re-solves the zones whose doubling epoch
    /// advanced or whose KS similarity escalated, and hot-swaps any
    /// zone whose landmark set moved. Deterministic given the demand
    /// stream — the background thread ([`ReoptConfig::interval_ms`])
    /// calls exactly this.
    ///
    /// # Errors
    ///
    /// [`ReoptError::ReoptDisabled`] when the loop is off,
    /// [`ReoptError::Closed`] after shutdown.
    pub fn reopt_tick(&self) -> Result<Vec<ReoptOutcome>, ReoptError> {
        self.shared.reopt_tick_shared()
    }

    /// The current epoch-stamped landmark table, or `None` when the
    /// re-optimization loop is disabled.
    pub fn landmark_table(&self) -> Option<Arc<LandmarkTable>> {
        self.shared.reopt.as_ref().map(|r| r.published())
    }

    /// Lifetime re-optimization counters (zeroed when the loop is
    /// disabled).
    pub fn reopt_stats(&self) -> ReoptStats {
        self.shared
            .reopt
            .as_ref()
            .map(|r| r.stats())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Partition};
    use crate::lifecycle::LifecycleConfig;
    use esharing_telemetry::TelemetryConfig;

    fn enabled_cfg() -> ReoptConfig {
        ReoptConfig {
            enabled: true,
            similarity_threshold: 1.0,
            ..ReoptConfig::default()
        }
    }

    /// Two clusters far apart on x, so a 2-shard uniform grid puts one
    /// in each zone.
    fn two_zone_engine(reopt: ReoptConfig) -> Engine {
        let mut history = Vec::new();
        for i in 0..60 {
            let t = i as f64;
            history.push(Point::new(
                50.0 + (t * 37.0) % 300.0,
                40.0 + (t * 53.0) % 300.0,
            ));
            history.push(Point::new(
                650.0 + (t * 41.0) % 300.0,
                60.0 + (t * 59.0) % 300.0,
            ));
        }
        Engine::start(
            &history,
            EngineConfig {
                shards: 2,
                partition: Partition::UniformGrid,
                lifecycle: LifecycleConfig {
                    enabled: true,
                    ..LifecycleConfig::default()
                },
                telemetry: TelemetryConfig {
                    enabled: true,
                    ..TelemetryConfig::default()
                },
                reopt,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn disabled_by_default() {
        let history: Vec<Point> = (0..64)
            .map(|i| Point::new((i % 8) as f64 * 100.0, (i / 8) as f64 * 100.0))
            .collect();
        let engine = Engine::start(&history, EngineConfig::default());
        assert_eq!(engine.reopt_tick(), Err(ReoptError::ReoptDisabled));
        assert!(engine.landmark_table().is_none());
        assert_eq!(engine.reopt_stats(), ReoptStats::default());
    }

    #[test]
    fn escalated_zone_swaps_while_others_stay_byte_identical() {
        let engine = two_zone_engine(enabled_cfg());

        // Priming pass: geometry baselines only, no swaps.
        let primed = engine.reopt_tick().expect("loop enabled");
        assert!(primed.iter().all(|o| !o.swapped), "priming never swaps");
        assert_eq!(engine.reopt_stats().swaps_total, 0);

        // Drift: zone 0's demand shifts hard into the lower-left
        // corner, far from its bootstrap distribution. Zone 1 sees no
        // traffic at all.
        for i in 0..600u64 {
            let p = Point::new(5.0 + (i % 7) as f64 * 12.0, 10.0 + (i % 11) as f64 * 20.0);
            engine.submit(p).expect("engine serving");
        }

        let before = engine.shared.table();
        let untouched_ptr = Arc::as_ptr(&before.shards[1]);
        let untouched_landmarks = before.shards[1].landmarks.clone();
        drop(before);

        let outcomes = engine.reopt_tick().expect("loop enabled");
        assert!(
            outcomes.iter().any(|o| o.shard == 0 && o.swapped),
            "the drifted zone re-solves and hot-swaps: {outcomes:?}"
        );
        assert!(
            outcomes.iter().all(|o| o.shard != 1),
            "the idle zone is never touched: {outcomes:?}"
        );

        // Satellite invariant: the untouched zone's slot is the *same
        // allocation* (strongest form of byte-identical landmarks).
        let after = engine.shared.table();
        assert!(std::ptr::eq(untouched_ptr, Arc::as_ptr(&after.shards[1])));
        assert_eq!(after.shards[1].landmarks, untouched_landmarks);
        assert_eq!(after.shards[1].reopt_epoch.load(Ordering::Relaxed), 0);

        // Provenance on the swapped zone.
        assert_eq!(after.shards[0].reopt_epoch.load(Ordering::Relaxed), 1);
        assert_eq!(after.shards[0].landmark_swaps.load(Ordering::Relaxed), 1);
        drop(after);
        let table = engine.landmark_table().expect("loop enabled");
        assert!(table.epoch >= 1);
        assert_eq!(table.zones[0].reopt_epoch, 1);
        assert_eq!(table.zones[1].reopt_epoch, 0);
        assert!(engine.reopt_stats().swaps_total >= 1);

        // Decisions keep flowing through the swapped zone, and the
        // swap is journalled as a typed event.
        let d = engine
            .submit(Point::new(20.0, 20.0))
            .expect("still serving");
        assert_eq!(d.shard(), 0);
        let snap = engine.snapshot().expect("snapshot");
        assert!(
            snap.events.iter().any(|r| matches!(
                r.event.kind,
                EventKind::EpochSwapped {
                    shard: 0,
                    epoch: 1,
                    ..
                }
            )),
            "EpochSwapped journalled"
        );
    }

    #[test]
    fn stable_demand_resolves_warm() {
        // History and live traffic share one fixed lattice, so the
        // quantized candidate set never moves between passes and the
        // triggered re-solve takes the warm delta path.
        let lattice: Vec<Point> = (0..64)
            .map(|i| Point::new((i % 8) as f64 * 150.0 + 75.0, (i / 8) as f64 * 150.0 + 75.0))
            .collect();
        let mut history = Vec::new();
        for _ in 0..5 {
            history.extend_from_slice(&lattice);
        }
        let engine = Engine::start(
            &history,
            EngineConfig {
                shards: 1,
                partition: Partition::UniformGrid,
                reopt: enabled_cfg(),
                ..EngineConfig::default()
            },
        );
        engine.reopt_tick().expect("priming pass");
        for i in 0..600usize {
            engine.submit(lattice[i % lattice.len()]).expect("serving");
        }
        let outcomes = engine.reopt_tick().expect("triggered pass");
        assert!(
            outcomes.iter().any(|o| o.warm),
            "same-geometry demand repairs warm: {outcomes:?}"
        );
        let stats = engine.reopt_stats();
        assert!(stats.warm_solves >= 1, "{stats:?}");
        assert!(stats.cold_solves >= 1, "priming solved cold: {stats:?}");
    }

    #[test]
    fn background_thread_ticks_and_joins() {
        let engine = two_zone_engine(ReoptConfig {
            interval_ms: 5,
            ..enabled_cfg()
        });
        for i in 0..200u64 {
            let p = Point::new((i % 13) as f64 * 20.0, (i % 17) as f64 * 15.0);
            engine.submit(p).expect("serving");
        }
        std::thread::sleep(Duration::from_millis(40));
        let systems = engine.shutdown();
        assert_eq!(systems.len(), 2, "clean join, both shards returned");
    }
}
