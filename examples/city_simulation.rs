//! A two-week city simulation — the paper's full evaluation window.
//!
//! Replays fourteen days (the Mobike window, May 10–24) through the
//! complete two-tier pipeline: three bootstrap days followed by eleven
//! live days, with an incentivized maintenance period closing each day.
//! Prints a per-day operations report and the final system metrics.
//!
//! Run with: `cargo run --release --example city_simulation`

use e_sharing::core::{Simulation, SystemConfig};
use e_sharing::dataset::CityConfig;

fn main() {
    let city = CityConfig {
        trips_per_day: 1_500.0,
        fleet_size: 800,
        ..CityConfig::default()
    };
    let mut sim = Simulation::new(&city, SystemConfig::default(), 2017);

    let historical_trips = sim.bootstrap_days(3);
    println!(
        "bootstrap: {} trips over 3 days -> {} landmark stations\n",
        historical_trips,
        sim.system().landmarks().len()
    );

    println!(
        "{:>4} {:>4} {:>7} {:>9} {:>11} {:>11} {:>12}",
        "day", "dow", "trips", "stations", "low before", "low after", "maint. cost"
    );
    for _ in 0..11 {
        let d = sim.run_day();
        let dow = e_sharing::dataset::Timestamp::from_day_hour(d.day, 0).weekday_name();
        println!(
            "{:>4} {:>4} {:>7} {:>9} {:>11} {:>11} {:>11.0}$",
            d.day,
            dow,
            d.trips,
            d.stations,
            d.low_before_maintenance,
            d.low_after_maintenance,
            d.maintenance_cost
        );
    }

    let report = sim.report();
    println!("\nfinal metrics:\n{}", report.metrics);
    println!(
        "\nfleet state: {} bikes, {} currently low",
        sim.fleet().len(),
        sim.fleet().low_battery_bikes().len()
    );
}
