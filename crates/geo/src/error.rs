//! Error type for geographic operations.

use std::error::Error;
use std::fmt;

/// Errors produced by geographic conversions and parsers in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeoError {
    /// A geohash string contained a character outside the base-32 alphabet.
    InvalidGeohashChar {
        /// The offending character.
        ch: char,
        /// Byte offset of the character within the input.
        index: usize,
    },
    /// A geohash string was empty.
    EmptyGeohash,
    /// A geohash of the requested precision would be longer than supported.
    PrecisionTooLarge {
        /// The requested number of geohash characters.
        requested: usize,
        /// The maximum supported number of characters.
        max: usize,
    },
    /// A latitude was outside `[-90, 90]` or a longitude outside `[-180, 180]`.
    CoordinateOutOfRange {
        /// Latitude in degrees.
        lat: f64,
        /// Longitude in degrees.
        lon: f64,
    },
    /// A grid or index was constructed with a non-positive cell size.
    NonPositiveCellSize(f64),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidGeohashChar { ch, index } => {
                write!(f, "invalid geohash character {ch:?} at index {index}")
            }
            GeoError::EmptyGeohash => write!(f, "geohash string is empty"),
            GeoError::PrecisionTooLarge { requested, max } => {
                write!(f, "geohash precision {requested} exceeds maximum {max}")
            }
            GeoError::CoordinateOutOfRange { lat, lon } => {
                write!(f, "coordinate ({lat}, {lon}) is out of range")
            }
            GeoError::NonPositiveCellSize(s) => {
                write!(f, "cell size must be positive, got {s}")
            }
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeoError::InvalidGeohashChar { ch: 'a', index: 3 };
        assert!(e.to_string().contains("index 3"));
        assert!(GeoError::EmptyGeohash.to_string().contains("empty"));
        let e = GeoError::PrecisionTooLarge {
            requested: 30,
            max: 12,
        };
        assert!(e.to_string().contains("30"));
        let e = GeoError::CoordinateOutOfRange {
            lat: 91.0,
            lon: 0.0,
        };
        assert!(e.to_string().contains("out of range"));
        assert!(GeoError::NonPositiveCellSize(-1.0)
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
