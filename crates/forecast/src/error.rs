//! Forecasting errors.

use std::error::Error;
use std::fmt;

/// Errors produced by the forecasting models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ForecastError {
    /// The training or history series is shorter than the model requires.
    SeriesTooShort {
        /// Minimum length the model needs.
        needed: usize,
        /// Length that was provided.
        got: usize,
    },
    /// [`forecast`](crate::Forecaster::forecast) was called before
    /// [`fit`](crate::Forecaster::fit).
    NotFitted,
    /// A model hyperparameter was invalid (e.g. zero window).
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Human-readable constraint.
        reason: &'static str,
    },
    /// The fit was numerically degenerate (singular design matrix).
    DegenerateFit,
    /// The series contained NaN or infinite values.
    NonFiniteData,
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::SeriesTooShort { needed, got } => {
                write!(f, "series too short: need at least {needed}, got {got}")
            }
            ForecastError::NotFitted => write!(f, "model has not been fitted"),
            ForecastError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            ForecastError::DegenerateFit => write!(f, "fit is numerically degenerate"),
            ForecastError::NonFiniteData => write!(f, "series contains non-finite values"),
        }
    }
}

impl Error for ForecastError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = ForecastError::SeriesTooShort { needed: 10, got: 3 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('3'));
        assert!(ForecastError::NotFitted.to_string().contains("fitted"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ForecastError>();
    }
}
