//! # esharing-linalg
//!
//! A small, dependency-free dense linear algebra kernel.
//!
//! The paper's prediction engine is an LSTM ("we stack 128 LSTM cells as the
//! hidden layer"), originally built on TensorFlow. This reproduction
//! implements the LSTM from scratch in `esharing-forecast`; this crate
//! provides exactly the primitives that implementation needs — a row-major
//! [`Matrix`], matrix/vector products, element-wise operations, activations
//! with derivatives, and Xavier initialization. It is deliberately *not* a
//! general-purpose BLAS.
//!
//! # Examples
//!
//! ```
//! use esharing_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = vec![1.0, 1.0];
//! assert_eq!(a.matvec(&x), vec![3.0, 7.0]);
//! let b = a.transpose();
//! assert_eq!(b.get(0, 1), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
mod matrix;
mod solve;
pub mod vecops;

pub use matrix::Matrix;
pub use solve::{least_squares, solve, SingularMatrixError};
