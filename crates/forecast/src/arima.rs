//! ARIMA(p, d, 0) baseline.
//!
//! Table II evaluates ARIMA across lag orders `p ∈ {2,4,6,8,10}` and degrees
//! of differencing `d ∈ {0,1,2}`. Following the Box–Jenkins methodology the
//! paper cites, the series is differenced `d` times, an AR(p) model with
//! intercept is fitted by conditional least squares, and multi-step
//! forecasts are produced recursively in differenced space before being
//! integrated back.

use crate::series::{difference, integrate, validate};
use crate::{ForecastError, Forecaster};
use esharing_linalg::{least_squares, Matrix};

/// ARIMA(p, d, 0) forecaster fitted by conditional least squares.
#[derive(Debug, Clone, PartialEq)]
pub struct Arima {
    p: usize,
    d: usize,
    /// Fitted state: intercept followed by AR coefficients (lag 1 first).
    coefficients: Option<Vec<f64>>,
}

impl Arima {
    /// Creates an ARIMA(p, d, 0) model.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] when `p == 0` (a pure
    /// differencing model would forecast zero change forever) or `d > 2`
    /// (beyond the range studied in the paper and rarely meaningful for
    /// count series).
    pub fn new(p: usize, d: usize) -> Result<Self, ForecastError> {
        if p == 0 {
            return Err(ForecastError::InvalidParameter {
                name: "p",
                reason: "lag order must be at least 1",
            });
        }
        if d > 2 {
            return Err(ForecastError::InvalidParameter {
                name: "d",
                reason: "degree of differencing above 2 is not supported",
            });
        }
        Ok(Arima {
            p,
            d,
            coefficients: None,
        })
    }

    /// Lag order `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Degree of differencing `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Fitted `(intercept, ar_coefficients)` or `None` before fitting.
    pub fn coefficients(&self) -> Option<(f64, &[f64])> {
        self.coefficients.as_ref().map(|c| (c[0], &c[1..]))
    }

    fn min_train_len(&self) -> usize {
        // After d differences we need p lags plus at least p+1 equations to
        // overdetermine the p+1 unknowns.
        self.d + 2 * self.p + 2
    }
}

impl Forecaster for Arima {
    fn fit(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        validate(series)?;
        if series.len() < self.min_train_len() {
            return Err(ForecastError::SeriesTooShort {
                needed: self.min_train_len(),
                got: series.len(),
            });
        }
        let (work, _seeds) = difference(series, self.d);
        let n = work.len();
        let rows = n - self.p;
        // Design: [1, y_{t-1}, ..., y_{t-p}] -> y_t.
        let design = Matrix::from_fn(rows, self.p + 1, |r, c| {
            if c == 0 {
                1.0
            } else {
                work[r + self.p - c]
            }
        });
        let targets: Vec<f64> = work[self.p..].to_vec();
        let beta =
            least_squares(&design, &targets, 1e-6).map_err(|_| ForecastError::DegenerateFit)?;
        self.coefficients = Some(beta);
        Ok(())
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        let beta = self.coefficients.as_ref().ok_or(ForecastError::NotFitted)?;
        validate(history)?;
        if history.len() < self.d + self.p {
            return Err(ForecastError::SeriesTooShort {
                needed: self.d + self.p,
                got: history.len(),
            });
        }
        let (work, seeds) = difference(history, self.d);
        if work.len() < self.p {
            return Err(ForecastError::SeriesTooShort {
                needed: self.d + self.p,
                got: history.len(),
            });
        }
        let mut lags: Vec<f64> = work[work.len() - self.p..].to_vec();
        let mut diffed_forecast = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut y = beta[0];
            for (k, coef) in beta[1..].iter().enumerate() {
                y += coef * lags[self.p - 1 - k];
            }
            diffed_forecast.push(y);
            lags.remove(0);
            lags.push(y);
        }
        Ok(integrate(&diffed_forecast, &seeds))
    }

    fn name(&self) -> String {
        format!("ARIMA(p={}, d={})", self.p, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Arima::new(0, 0).is_err());
        assert!(Arima::new(2, 3).is_err());
        assert!(Arima::new(2, 2).is_ok());
    }

    #[test]
    fn not_fitted_error() {
        let m = Arima::new(2, 0).unwrap();
        assert_eq!(m.forecast(&[1.0; 10], 1), Err(ForecastError::NotFitted));
    }

    #[test]
    fn short_series_rejected() {
        let mut m = Arima::new(4, 1).unwrap();
        assert!(matches!(
            m.fit(&[1.0, 2.0, 3.0]),
            Err(ForecastError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn recovers_ar1_process() {
        // y_t = 5 + 0.6 y_{t-1}, deterministic.
        let mut series = vec![1.0];
        for _ in 0..60 {
            let prev = *series.last().unwrap();
            series.push(5.0 + 0.6 * prev);
        }
        let mut m = Arima::new(1, 0).unwrap();
        m.fit(&series).unwrap();
        let (intercept, ar) = m.coefficients().unwrap();
        assert!((intercept - 5.0).abs() < 0.5, "intercept {intercept}");
        assert!((ar[0] - 0.6).abs() < 0.05, "ar {}", ar[0]);
        // Forecast continues toward the fixed point 12.5.
        let f = m.forecast(&series, 5).unwrap();
        for v in f {
            assert!((v - 12.5).abs() < 0.5);
        }
    }

    #[test]
    fn d1_tracks_linear_trend() {
        let series: Vec<f64> = (0..60).map(|t| 3.0 * t as f64 + 10.0).collect();
        let mut m = Arima::new(2, 1).unwrap();
        m.fit(&series).unwrap();
        let f = m.forecast(&series, 3).unwrap();
        // Next values: 190, 193, 196.
        for (i, v) in f.iter().enumerate() {
            let expected = 3.0 * (60 + i) as f64 + 10.0;
            assert!((v - expected).abs() < 1.0, "step {i}: {v} vs {expected}");
        }
    }

    #[test]
    fn d2_tracks_quadratic_trend() {
        let series: Vec<f64> = (0..80).map(|t| (t * t) as f64 * 0.5).collect();
        let mut m = Arima::new(2, 2).unwrap();
        m.fit(&series).unwrap();
        let f = m.forecast(&series, 2).unwrap();
        for (i, v) in f.iter().enumerate() {
            let t = (80 + i) as f64;
            let expected = t * t * 0.5;
            assert!((v - expected).abs() < 5.0, "step {i}: {v} vs {expected}");
        }
    }

    #[test]
    fn captures_periodic_series_with_enough_lags() {
        // Period-4 signal is an AR(4)-representable process.
        let pattern = [10.0, 20.0, 15.0, 5.0];
        let series: Vec<f64> = (0..80).map(|t| pattern[t % 4]).collect();
        let mut m = Arima::new(4, 0).unwrap();
        m.fit(&series).unwrap();
        let f = m.forecast(&series, 4).unwrap();
        for (i, v) in f.iter().enumerate() {
            let expected = pattern[(80 + i) % 4];
            assert!((v - expected).abs() < 1.0, "step {i}: {v} vs {expected}");
        }
    }

    #[test]
    fn forecast_horizon_length() {
        let series: Vec<f64> = (0..40).map(|t| (t as f64 * 0.3).sin() + 2.0).collect();
        let mut m = Arima::new(3, 0).unwrap();
        m.fit(&series).unwrap();
        assert_eq!(m.forecast(&series, 6).unwrap().len(), 6);
        assert_eq!(m.forecast(&series, 0).unwrap().len(), 0);
    }

    #[test]
    fn name_mentions_orders() {
        assert_eq!(Arima::new(4, 1).unwrap().name(), "ARIMA(p=4, d=1)");
    }
}
