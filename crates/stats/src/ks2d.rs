//! Peacock's two-dimensional two-sample Kolmogorov–Smirnov test.
//!
//! In one dimension the KS statistic compares cumulative distributions; in
//! two dimensions there is no unique cumulative ordering, so Peacock (1983)
//! enumerates all four quadrant orientations around candidate split points
//! `(X, Y)` — `(x < X, y < Y)`, `(x < X, y > Y)`, `(x > X, y < Y)`,
//! `(x > X, y > Y)` — and takes the supremum of the empirical probability
//! difference across them. The paper (§III-D) runs this test between the
//! historical destination distribution `H` and the live stream `G`, and maps
//! the resulting similarity `100(1 − D)%` to a penalty-function type
//! (§V-C): above 95% → Type II, 80–95% → Type III, below 80% → Type I.
//!
//! Two evaluation strategies are provided, each in a fast rank-based form
//! and a naive reference form:
//!
//! * [`peacock_statistic`] — Peacock's original proposal evaluates the
//!   quadrant difference on the grid of all `(x_i, y_j)` coordinate pairs
//!   from the pooled sample. The naive form ([`peacock_statistic_naive`])
//!   recounts all `n` points at each of the `O(n²)` split pairs — the
//!   `O(n³)` complexity the paper reports. The fast form sorts each
//!   coordinate once, builds a 2-D prefix-count matrix over the pooled
//!   coordinate ranks per sample, answers every quadrant count in `O(1)`
//!   by inclusion–exclusion, and sweeps the `O(n²)` grid in parallel
//!   chunks — `O(n²)` total, bit-identical to the naive supremum.
//! * [`ff_statistic`] — the Fasano–Franceschini (1987) variant that only
//!   visits the `O(n)` split points located *at* sample points. The naive
//!   form ([`ff_statistic_naive`]) is `O(n²)`; the fast form sweeps the
//!   split points in x-order while maintaining per-sample Fenwick trees
//!   over the pooled y-ranks, giving `O(n log n)` with integer counts
//!   identical to the naive quadrant counts.
//!
//! For streaming use, [`RankedSample`] precomputes the sorted structures of
//! a fixed sample once (the deviation monitor's historical distribution) so
//! repeated tests against fresh windows skip re-sorting the history, and
//! [`IncrementalWindow`] maintains the *window's* rank structures under
//! FIFO churn — `O(log n)` per push/pop — so the periodic test stops
//! re-ranking the live window from scratch as well
//! ([`RankedSample::peacock_test_window`]).
//!
//! [`DriftMonitor`] goes one step further for the deviation monitor's
//! boundary re-test: it additionally caches, per stored point, the
//! *history's* quadrant counts around that point (computed once at push
//! time against a shared [`DriftHistory`]), so the re-test sweep keeps a
//! single window-local Fenwick tree and reuses every history-side count —
//! and it can emit an immutable [`DriftSnapshot`] whose pure
//! [`DriftSnapshot::evaluate`] runs the identical test off-thread. All
//! three streaming paths are bit-identical to the batch oracle.

use crate::parallel;
use esharing_geo::Point;
use std::cmp::Ordering;
use std::collections::VecDeque;
use std::sync::Arc;

/// Outcome of a two-sample Peacock test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ks2dResult {
    /// The KS statistic `D = sup |H − G|` over quadrants.
    pub statistic: f64,
    /// Similarity `100 (1 − D)` in percent, the paper's Table IV metric.
    pub similarity_percent: f64,
    /// Approximate significance of `D` (probability of observing a larger
    /// `D` under the null hypothesis), using Peacock's `Z∞` asymptotic.
    pub p_value: f64,
    /// Effective sample size `n1 n2 / (n1 + n2)`.
    pub effective_n: f64,
}

/// Counts the fraction of `sample` in each of the four open quadrants
/// around `(x, y)`.
fn quadrant_fractions(sample: &[Point], x: f64, y: f64) -> [f64; 4] {
    let n = sample.len() as f64;
    let (mut q1, mut q2, mut q3, mut q4) = (0u32, 0u32, 0u32, 0u32);
    for p in sample {
        if p.x > x {
            if p.y > y {
                q1 += 1;
            } else {
                q4 += 1;
            }
        } else if p.y > y {
            q2 += 1;
        } else {
            q3 += 1;
        }
    }
    [
        f64::from(q1) / n,
        f64::from(q2) / n,
        f64::from(q3) / n,
        f64::from(q4) / n,
    ]
}

fn max_quadrant_diff(a: &[Point], b: &[Point], x: f64, y: f64) -> f64 {
    let fa = quadrant_fractions(a, x, y);
    let fb = quadrant_fractions(b, x, y);
    fa.iter()
        .zip(fb.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0, f64::max)
}

/// Largest quadrant-fraction difference given the integer quadrant counts
/// `[q1, q2, q3, q4]` of each sample. Divides each count by its sample size
/// with exactly the arithmetic of [`quadrant_fractions`], so rank-based
/// counting reproduces the naive statistic bit-for-bit.
#[inline]
fn quad_count_diff(qa: [u32; 4], qb: [u32; 4], na: f64, nb: f64) -> f64 {
    let mut d = 0.0f64;
    for k in 0..4 {
        d = d.max((f64::from(qa[k]) / na - f64::from(qb[k]) / nb).abs());
    }
    d
}

/// Number of values in the sorted slice that are `<= v`.
#[inline]
fn count_le(sorted: &[f64], v: f64) -> usize {
    sorted.partition_point(|&s| s <= v)
}

/// 2-D prefix-count matrix of one sample over pooled coordinate ranks.
///
/// `le(i, j)` returns the number of sample points with `x <= xs[i-1]` and
/// `y <= ys[j-1]` in `O(1)`, where `xs`/`ys` are the sorted unique pooled
/// coordinates the grid was built against.
struct PrefixGrid {
    nx: usize,
    ny: usize,
    n: u32,
    cum: Vec<u32>,
}

impl PrefixGrid {
    fn new(sample: &[Point], xs: &[f64], ys: &[f64]) -> Self {
        let (nx, ny) = (xs.len(), ys.len());
        let stride = ny + 1;
        let mut cum = vec![0u32; (nx + 1) * stride];
        for p in sample {
            let rx = count_le(xs, p.x);
            let ry = count_le(ys, p.y);
            debug_assert!(rx >= 1 && ry >= 1, "sample coordinate missing from pool");
            cum[rx * stride + ry] += 1;
        }
        for i in 1..=nx {
            for j in 1..=ny {
                cum[i * stride + j] += cum[i * stride + j - 1];
            }
        }
        for i in 1..=nx {
            for j in 0..=ny {
                cum[i * stride + j] += cum[(i - 1) * stride + j];
            }
        }
        PrefixGrid {
            nx,
            ny,
            n: sample.len() as u32,
            cum,
        }
    }

    #[inline]
    fn le(&self, i: usize, j: usize) -> u32 {
        self.cum[i * (self.ny + 1) + j]
    }

    /// Quadrant counts `[q1, q2, q3, q4]` around the split point
    /// `(xs[i-1], ys[j-1])` by inclusion–exclusion.
    #[inline]
    fn quadrants(&self, i: usize, j: usize) -> [u32; 4] {
        let q3 = self.le(i, j);
        let col = self.le(i, self.ny);
        let row = self.le(self.nx, j);
        // `n + q3` first: `n - col - row` alone can underflow u32.
        [self.n + q3 - col - row, col - q3, q3, row - q3]
    }
}

/// Fenwick (binary indexed) tree of integer counts over 1-based ranks.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds one occurrence at rank `i` (1-based).
    #[inline]
    fn add(&mut self, mut i: usize) {
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of occurrences with rank `<= i`.
    #[inline]
    fn prefix(&self, mut i: usize) -> u32 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

fn sorted_by_total(values: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut v: Vec<f64> = values.collect();
    v.sort_unstable_by(f64::total_cmp);
    v
}

/// Merges two sorted coordinate lists into the sorted list of distinct
/// values (the pooled rank space).
fn merge_unique(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let v = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if f64::total_cmp(&x, &y).is_le() {
                    x
                } else {
                    y
                }
            }
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => unreachable!(),
        };
        while i < a.len() && a[i] == v {
            i += 1;
        }
        while j < b.len() && b[j] == v {
            j += 1;
        }
        out.push(v);
    }
    out
}

/// A sample with its sorted rank structures precomputed, so repeated 2-D KS
/// tests against it skip the per-test sort of this side.
///
/// The deviation monitor holds its (fixed) historical distribution as a
/// `RankedSample` and tests each streaming window against it; only the
/// window — typically much smaller than the history — is sorted per test.
#[derive(Debug, Clone)]
pub struct RankedSample {
    points: Vec<Point>,
    by_x: Vec<Point>,
    ys: Vec<f64>,
}

impl RankedSample {
    /// Builds the rank structures for `points` (`O(n log n)`).
    pub fn new(points: &[Point]) -> Self {
        let mut by_x = points.to_vec();
        by_x.sort_unstable_by(|p, q| f64::total_cmp(&p.x, &q.x).then(f64::total_cmp(&p.y, &q.y)));
        let ys = sorted_by_total(points.iter().map(|p| p.y));
        RankedSample {
            points: points.to_vec(),
            by_x,
            ys,
        }
    }

    /// The sample in its original order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points in the sample.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fasano–Franceschini statistic against another ranked sample in
    /// `O(n log n)`, bit-identical to [`ff_statistic_naive`].
    ///
    /// # Panics
    ///
    /// Panics if either sample is empty.
    pub fn ff_statistic(&self, other: &RankedSample) -> f64 {
        assert!(
            !self.is_empty() && !other.is_empty(),
            "samples must be non-empty"
        );
        ff_statistic_ranked(&self.by_x, &self.ys, &other.by_x, &other.ys)
    }

    /// Full two-sample test against another ranked sample (fast FF
    /// statistic + Peacock's `Z∞` significance).
    ///
    /// # Panics
    ///
    /// Panics if either sample is empty.
    pub fn peacock_test(&self, other: &RankedSample) -> Ks2dResult {
        test_from_statistic(self.ff_statistic(other), self.len(), other.len())
    }

    /// Convenience: ranks `window` on the fly and runs
    /// [`RankedSample::peacock_test`] against it. This is the streaming
    /// entry point — the receiver's (historical) ranks are reused across
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if either sample is empty.
    pub fn peacock_test_against(&self, window: &[Point]) -> Ks2dResult {
        self.peacock_test(&RankedSample::new(window))
    }

    /// The streaming fast path: tests against an [`IncrementalWindow`]
    /// whose rank structures are already maintained, so nothing on either
    /// side is sorted per call — the window's ordered contents are dumped
    /// (`O(n)`, no comparisons, into buffers owned by the window) straight
    /// into the same sweep kernel [`RankedSample::ff_statistic`] uses.
    /// Bit-identical to `self.peacock_test_against(window points)` by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if either sample is empty.
    pub fn peacock_test_window(&self, window: &mut IncrementalWindow) -> Ks2dResult {
        assert!(
            !self.is_empty() && !window.is_empty(),
            "samples must be non-empty"
        );
        window.fill_scratch();
        let d = ff_statistic_ranked(&self.by_x, &self.ys, &window.sx, &window.sy);
        test_from_statistic(d, self.len(), window.len())
    }
}

/// The Fasano–Franceschini sweep over two pre-ranked samples, each given as
/// (points sorted by `(x, y)` under `total_cmp`, y-values sorted under
/// `total_cmp`). [`RankedSample::ff_statistic`] and
/// [`RankedSample::peacock_test_window`] both land here, so any producer of
/// identical rank slices gets bit-identical statistics.
fn ff_statistic_ranked(ax: &[Point], a_ys: &[f64], bx: &[Point], b_ys: &[f64]) -> f64 {
    let uy = merge_unique(a_ys, b_ys);
    let mut fen_a = Fenwick::new(uy.len());
    let mut fen_b = Fenwick::new(uy.len());
    let (na_u, nb_u) = (ax.len() as u32, bx.len() as u32);
    let (na, nb) = (ax.len() as f64, bx.len() as f64);
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut group: Vec<f64> = Vec::new();
    let mut d = 0.0f64;
    // Sweep split points in x-order; all points sharing a split's x value
    // enter the Fenwick trees before any quadrant query at that x, which
    // preserves the `x <= X` semantics of the naive count.
    while ia < ax.len() || ib < bx.len() {
        let x = match (ax.get(ia), bx.get(ib)) {
            (Some(p), Some(q)) => {
                if p.x <= q.x {
                    p.x
                } else {
                    q.x
                }
            }
            (Some(p), None) => p.x,
            (None, Some(q)) => q.x,
            (None, None) => unreachable!(),
        };
        group.clear();
        while ia < ax.len() && ax[ia].x == x {
            fen_a.add(count_le(&uy, ax[ia].y));
            group.push(ax[ia].y);
            ia += 1;
        }
        while ib < bx.len() && bx[ib].x == x {
            fen_b.add(count_le(&uy, bx[ib].y));
            group.push(bx[ib].y);
            ib += 1;
        }
        let (cxa, cxb) = (ia as u32, ib as u32);
        for &y in &group {
            let ry = count_le(&uy, y);
            let q3a = fen_a.prefix(ry);
            let q3b = fen_b.prefix(ry);
            let cya = count_le(a_ys, y) as u32;
            let cyb = count_le(b_ys, y) as u32;
            let qa = [na_u + q3a - cxa - cya, cxa - q3a, q3a, cya - q3a];
            let qb = [nb_u + q3b - cxb - cyb, cxb - q3b, q3b, cyb - q3b];
            d = d.max(quad_count_diff(qa, qb, na, nb));
        }
    }
    d
}

// ---------------------------------------------------------------------------
// Incremental FIFO window
// ---------------------------------------------------------------------------

/// Node-pool sentinel for the ordered multiset.
const TREAP_NIL: u32 = u32::MAX;

#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
struct TreapNode<T> {
    key: T,
    pri: u64,
    left: u32,
    right: u32,
}

/// An ordered multiset with `O(log n)` expected insert and remove-by-value:
/// a treap over a node pool (indices, free list — no per-node boxes) whose
/// priorities come from a deterministic counter hash, so the tree shape —
/// and therefore every downstream traversal — replays identically for a
/// fixed operation sequence.
#[derive(Debug, Clone)]
struct OrderedMultiset<T: Copy> {
    nodes: Vec<TreapNode<T>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    counter: u64,
    cmp: fn(&T, &T) -> Ordering,
}

impl<T: Copy> OrderedMultiset<T> {
    fn new(cmp: fn(&T, &T) -> Ordering) -> Self {
        OrderedMultiset {
            nodes: Vec::new(),
            free: Vec::new(),
            root: TREAP_NIL,
            len: 0,
            counter: 0,
            cmp,
        }
    }

    /// Joins two treaps where every key in `a` precedes every key in `b`.
    fn join(&mut self, a: u32, b: u32) -> u32 {
        if a == TREAP_NIL {
            return b;
        }
        if b == TREAP_NIL {
            return a;
        }
        if self.nodes[a as usize].pri > self.nodes[b as usize].pri {
            let r = self.nodes[a as usize].right;
            let merged = self.join(r, b);
            self.nodes[a as usize].right = merged;
            a
        } else {
            let l = self.nodes[b as usize].left;
            let merged = self.join(a, l);
            self.nodes[b as usize].left = merged;
            b
        }
    }

    /// Splits into `(keys < key, keys >= key)` when `le` is false, or
    /// `(keys <= key, keys > key)` when `le` is true.
    fn split(&mut self, t: u32, key: &T, le: bool) -> (u32, u32) {
        if t == TREAP_NIL {
            return (TREAP_NIL, TREAP_NIL);
        }
        let ord = (self.cmp)(&self.nodes[t as usize].key, key);
        let goes_left = if le { ord.is_le() } else { ord.is_lt() };
        if goes_left {
            let r = self.nodes[t as usize].right;
            let (a, b) = self.split(r, key, le);
            self.nodes[t as usize].right = a;
            (t, b)
        } else {
            let l = self.nodes[t as usize].left;
            let (a, b) = self.split(l, key, le);
            self.nodes[t as usize].left = b;
            (a, t)
        }
    }

    fn insert(&mut self, key: T) {
        let pri = splitmix64(self.counter);
        self.counter += 1;
        let node = TreapNode {
            key,
            pri,
            left: TREAP_NIL,
            right: TREAP_NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        let (l, r) = self.split(self.root, &key, false);
        let left = self.join(l, idx);
        self.root = self.join(left, r);
        self.len += 1;
    }

    /// Removes one occurrence of `key`; `true` if one was present.
    fn remove(&mut self, key: &T) -> bool {
        let (l, rest) = self.split(self.root, key, false);
        let (eq, r) = self.split(rest, key, true);
        let removed = if eq == TREAP_NIL {
            false
        } else {
            // Drop the equal-run's root: with duplicates every equal node
            // carries an identical key, so which one dies is unobservable.
            let n = &self.nodes[eq as usize];
            let (el, er) = (n.left, n.right);
            self.free.push(eq);
            let rejoined = self.join(el, er);
            let with_l = self.join(l, rejoined);
            self.root = self.join(with_l, r);
            self.len -= 1;
            true
        };
        if !removed {
            let with_l = self.join(l, eq);
            self.root = self.join(with_l, r);
        }
        removed
    }

    /// Appends the keys in sorted order to `out`.
    fn fill_inorder(&self, out: &mut Vec<T>) {
        self.fill_rec(self.root, out);
    }

    fn fill_rec(&self, t: u32, out: &mut Vec<T>) {
        if t == TREAP_NIL {
            return;
        }
        let n = &self.nodes[t as usize];
        let (l, r) = (n.left, n.right);
        self.fill_rec(l, out);
        out.push(self.nodes[t as usize].key);
        self.fill_rec(r, out);
    }
}

fn cmp_point_xy(p: &Point, q: &Point) -> Ordering {
    f64::total_cmp(&p.x, &q.x).then(f64::total_cmp(&p.y, &q.y))
}

/// A FIFO window of points whose 2-D KS rank structures are maintained
/// incrementally: [`IncrementalWindow::push_back`] and
/// [`IncrementalWindow::pop_front`] update the x- and y-rank orders in
/// `O(log n)` each, so the deviation monitor's periodic test
/// ([`RankedSample::peacock_test_window`]) never re-sorts the live window.
///
/// The maintained orders are exactly those of
/// [`RankedSample::new`] applied to the window's points, so the test result
/// is bit-identical to the batch path:
///
/// ```
/// use esharing_geo::Point;
/// use esharing_stats::ks2d::{IncrementalWindow, RankedSample};
///
/// let history: Vec<Point> = (0..40)
///     .map(|i| Point::new(f64::from(i % 7) * 10.0, f64::from(i % 5) * 10.0))
///     .collect();
/// let ranked = RankedSample::new(&history);
/// let mut window = IncrementalWindow::new();
/// for p in &history[..20] {
///     window.push_back(*p);
/// }
/// window.pop_front();
/// let batch: Vec<Point> = window.iter().collect();
/// let incremental = ranked.peacock_test_window(&mut window);
/// assert_eq!(incremental, ranked.peacock_test_against(&batch));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalWindow {
    deque: VecDeque<Point>,
    by_x: OrderedMultiset<Point>,
    ys: OrderedMultiset<f64>,
    /// Scratch slices handed to the sweep kernel; refilled per test,
    /// allocation-free once grown to window size.
    sx: Vec<Point>,
    sy: Vec<f64>,
}

impl IncrementalWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        IncrementalWindow {
            deque: VecDeque::new(),
            by_x: OrderedMultiset::new(cmp_point_xy),
            ys: OrderedMultiset::new(f64::total_cmp),
            sx: Vec::new(),
            sy: Vec::new(),
        }
    }

    /// Number of points currently in the window.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether the window holds no points.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Appends a point at the back (newest side) of the window.
    pub fn push_back(&mut self, p: Point) {
        self.deque.push_back(p);
        self.by_x.insert(p);
        self.ys.insert(p.y);
    }

    /// Removes and returns the oldest point, or `None` when empty.
    pub fn pop_front(&mut self) -> Option<Point> {
        let p = self.deque.pop_front()?;
        let removed = self.by_x.remove(&p);
        debug_assert!(removed, "rank structure out of sync with deque");
        let removed = self.ys.remove(&p.y);
        debug_assert!(removed, "y ranks out of sync with deque");
        Some(p)
    }

    /// The window's points in arrival order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.deque.iter().copied()
    }

    /// Dumps the maintained orders into the scratch slices consumed by
    /// [`RankedSample::peacock_test_window`].
    fn fill_scratch(&mut self) {
        let mut sx = std::mem::take(&mut self.sx);
        sx.clear();
        self.by_x.fill_inorder(&mut sx);
        self.sx = sx;
        let mut sy = std::mem::take(&mut self.sy);
        sy.clear();
        self.ys.fill_inorder(&mut sy);
        self.sy = sy;
    }
}

impl Default for IncrementalWindow {
    fn default() -> Self {
        IncrementalWindow::new()
    }
}

// ---------------------------------------------------------------------------
// Drift monitor: cached quadrant counts for the boundary re-test
// ---------------------------------------------------------------------------

/// Merge-sort tree over a fixed `(x, y)`-sorted point list.
///
/// `levels[j]` holds the y-values of the base order in aligned chunks of
/// `2^j`, each chunk sorted, so a prefix `[0, k)` of the base order
/// decomposes into `O(log n)` sorted blocks and a dominance count
/// `#{i < k : y_i <= y}` resolves in `O(log² n)` — the per-push query the
/// [`DriftMonitor`] uses to cache a point's history-side quadrant counts.
#[derive(Debug)]
struct MergeTree {
    levels: Vec<Vec<f64>>,
}

impl MergeTree {
    fn new(by_x: &[Point]) -> Self {
        let n = by_x.len();
        let mut levels: Vec<Vec<f64>> = Vec::new();
        if n == 0 {
            return MergeTree { levels };
        }
        levels.push(by_x.iter().map(|p| p.y).collect());
        let mut width = 1usize;
        while width < n {
            let prev = levels.last().expect("level pushed above");
            let mut next = Vec::with_capacity(n);
            let mut start = 0usize;
            while start < n {
                let mid = (start + width).min(n);
                let end = (start + 2 * width).min(n);
                let (mut i, mut j) = (start, mid);
                while i < mid || j < end {
                    let take_left = match (prev.get(i), prev.get(j)) {
                        (Some(a), Some(b)) if i < mid && j < end => f64::total_cmp(a, b).is_le(),
                        _ => i < mid,
                    };
                    if take_left {
                        next.push(prev[i]);
                        i += 1;
                    } else {
                        next.push(prev[j]);
                        j += 1;
                    }
                }
                start = end;
            }
            levels.push(next);
            width *= 2;
        }
        MergeTree { levels }
    }

    /// Number of base-order positions `< prefix` whose y-value is `<= y`.
    fn count_le_in_prefix(&self, prefix: usize, y: f64) -> u32 {
        let mut total = 0u32;
        let mut pos = 0usize;
        for j in (0..self.levels.len()).rev() {
            let w = 1usize << j;
            if prefix & w != 0 {
                let block = &self.levels[j][pos..pos + w];
                total += count_le(block, y) as u32;
                pos += w;
            }
        }
        total
    }
}

/// The historical sample of a streaming drift monitor, with everything the
/// boundary re-test needs from the history side precomputed once:
///
/// * the [`RankedSample`] rank structures,
/// * the history's own-split quadrant counts (`self_qa`) around each of its
///   points, in `by_x` order, and
/// * a [`MergeTree`] answering the history's quadrant counts around an
///   arbitrary *window* point in `O(log² n)`.
///
/// Shared via `Arc` between a live [`DriftMonitor`] and the immutable
/// [`DriftSnapshot`]s it emits, so a deferred evaluation never copies the
/// history.
#[derive(Debug)]
pub struct DriftHistory {
    sample: RankedSample,
    tree: MergeTree,
    /// Quadrant counts of the history around its own `by_x[i]` split point
    /// — exactly the `qa` the [`ff_statistic_ranked`] sweep would derive.
    self_qa: Vec<[u32; 4]>,
}

impl DriftHistory {
    /// Precomputes the drift structures for `points` (`O(n log n)`).
    pub fn new(points: &[Point]) -> Self {
        let sample = RankedSample::new(points);
        let tree = MergeTree::new(&sample.by_x);
        let n = sample.by_x.len();
        let n_u = n as u32;
        let mut fen = Fenwick::new(sample.ys.len());
        let mut self_qa = Vec::with_capacity(n);
        let mut ia = 0usize;
        // Single-sample x-sweep mirroring `ff_statistic_ranked`'s history
        // side: all points of an equal-x run enter before any query at
        // that x, so `x <= X` semantics match the merged sweep whatever
        // the window contributes to the run.
        while ia < n {
            let x = sample.by_x[ia].x;
            let start = ia;
            while ia < n && sample.by_x[ia].x == x {
                fen.add(count_le(&sample.ys, sample.by_x[ia].y));
                ia += 1;
            }
            let cx = ia as u32;
            for k in start..ia {
                let y = sample.by_x[k].y;
                let cy = count_le(&sample.ys, y) as u32;
                let q3 = fen.prefix(count_le(&sample.ys, y));
                self_qa.push([n_u + q3 - cx - cy, cx - q3, q3, cy - q3]);
            }
        }
        DriftHistory {
            sample,
            tree,
            self_qa,
        }
    }

    /// The history's quadrant counts `[q1, q2, q3, q4]` around an arbitrary
    /// split point, identical to the integers the full sweep would count.
    fn quadrants_around(&self, p: Point) -> [u32; 4] {
        let n = self.sample.by_x.len() as u32;
        let cx = self.sample.by_x.partition_point(|q| q.x <= p.x);
        let cy = count_le(&self.sample.ys, p.y) as u32;
        let q3 = self.tree.count_le_in_prefix(cx, p.y);
        let cx = cx as u32;
        [n + q3 - cx - cy, cx - q3, q3, cy - q3]
    }

    /// The underlying sample in its original order.
    pub fn points(&self) -> &[Point] {
        self.sample.points()
    }

    /// Number of history points.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }
}

/// A window point bundled with the history's cached quadrant counts around
/// it, computed once at push time. Ordered by the point alone: equal points
/// carry equal counts, so which duplicate a treap removal drops stays
/// unobservable.
#[derive(Debug, Clone, Copy)]
struct QuadPoint {
    point: Point,
    qa: [u32; 4],
}

fn cmp_quad_point(p: &QuadPoint, q: &QuadPoint) -> Ordering {
    cmp_point_xy(&p.point, &q.point)
}

/// A FIFO drift window against a fixed [`DriftHistory`]: the incremental
/// rank structures of [`IncrementalWindow`] plus, cached on every stored
/// point, the history's quadrant counts around it — so a boundary re-test
/// reuses the per-push work instead of recounting the history side from
/// scratch ([`DriftMonitor::evaluate_now`]), and an immutable
/// [`DriftSnapshot`] of the window can be evaluated off-thread later with
/// the same reuse ([`DriftMonitor::snapshot`]).
///
/// Both evaluation paths produce statistics **bit-identical** to
/// [`RankedSample::peacock_test_window`] on the same points: the cached
/// integers equal the sweep's integers, and the final supremum runs the
/// same f64 arithmetic over the same values.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    history: Arc<DriftHistory>,
    deque: VecDeque<Point>,
    by_x: OrderedMultiset<QuadPoint>,
    ys: OrderedMultiset<f64>,
    /// Scratch slices handed to the sweep kernel; refilled per test,
    /// allocation-free once grown to window size.
    sx: Vec<QuadPoint>,
    sy: Vec<f64>,
}

impl DriftMonitor {
    /// An empty window monitoring drift against `history`.
    pub fn new(history: Arc<DriftHistory>) -> Self {
        DriftMonitor {
            history,
            deque: VecDeque::new(),
            by_x: OrderedMultiset::new(cmp_quad_point),
            ys: OrderedMultiset::new(f64::total_cmp),
            sx: Vec::new(),
            sy: Vec::new(),
        }
    }

    /// The shared history this monitor tests against.
    pub fn history(&self) -> &Arc<DriftHistory> {
        &self.history
    }

    /// Number of points currently in the window.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether the window holds no points.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Appends a point at the back (newest side) of the window, caching the
    /// history's quadrant counts around it (`O(log² n)`).
    pub fn push_back(&mut self, p: Point) {
        let qa = self.history.quadrants_around(p);
        self.deque.push_back(p);
        self.by_x.insert(QuadPoint { point: p, qa });
        self.ys.insert(p.y);
    }

    /// Removes and returns the oldest point, or `None` when empty.
    pub fn pop_front(&mut self) -> Option<Point> {
        let p = self.deque.pop_front()?;
        // The comparator ignores `qa`, so a zeroed probe finds the key.
        let probe = QuadPoint {
            point: p,
            qa: [0; 4],
        };
        let removed = self.by_x.remove(&probe);
        debug_assert!(removed, "rank structure out of sync with deque");
        let removed = self.ys.remove(&p.y);
        debug_assert!(removed, "y ranks out of sync with deque");
        Some(p)
    }

    /// The window's points in arrival order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.deque.iter().copied()
    }

    fn fill_scratch(&mut self) {
        let mut sx = std::mem::take(&mut self.sx);
        sx.clear();
        self.by_x.fill_inorder(&mut sx);
        self.sx = sx;
        let mut sy = std::mem::take(&mut self.sy);
        sy.clear();
        self.ys.fill_inorder(&mut sy);
        self.sy = sy;
    }

    /// Runs the boundary re-test against the current window in place — the
    /// inline-mode path. Bit-identical to
    /// [`RankedSample::peacock_test_window`] over the same points.
    ///
    /// # Panics
    ///
    /// Panics if the history or the window is empty.
    pub fn evaluate_now(&mut self) -> Ks2dResult {
        assert!(
            !self.history.is_empty() && !self.is_empty(),
            "samples must be non-empty"
        );
        self.fill_scratch();
        let d = ff_statistic_cached(&self.history, &self.sx, &self.sy);
        test_from_statistic(d, self.history.len(), self.deque.len())
    }

    /// An immutable copy of the current window (plus the shared history)
    /// whose [`DriftSnapshot::evaluate`] can run on any thread, any number
    /// of times, with a bit-identical result — the deferred-mode handoff.
    ///
    /// # Panics
    ///
    /// Panics if the history or the window is empty.
    pub fn snapshot(&mut self) -> DriftSnapshot {
        assert!(
            !self.history.is_empty() && !self.is_empty(),
            "samples must be non-empty"
        );
        self.fill_scratch();
        DriftSnapshot {
            history: Arc::clone(&self.history),
            sx: self.sx.clone(),
            sy: self.sy.clone(),
        }
    }
}

/// An immutable, evaluation-ready copy of a drift window taken at a
/// doubling boundary: the window's sorted orders plus cached history-side
/// quadrant counts, sharing the [`DriftHistory`] by `Arc`.
///
/// [`DriftSnapshot::evaluate`] is a pure function of this value — no
/// clocks, no RNG, no interior mutability — so a snapshot evaluated on a
/// background worker, re-evaluated after a crash, or rebuilt from its
/// checkpointed points yields the same bits every time.
#[derive(Debug, Clone)]
pub struct DriftSnapshot {
    history: Arc<DriftHistory>,
    sx: Vec<QuadPoint>,
    sy: Vec<f64>,
}

impl DriftSnapshot {
    /// Rebuilds a snapshot from the window's bare points (any order) and
    /// the shared history — the checkpoint-restore path. Equal point sets
    /// rebuild to equal snapshots regardless of input order.
    pub fn from_points(history: &Arc<DriftHistory>, points: &[Point]) -> Self {
        let mut sx: Vec<QuadPoint> = points
            .iter()
            .map(|&p| QuadPoint {
                point: p,
                qa: history.quadrants_around(p),
            })
            .collect();
        sx.sort_unstable_by(cmp_quad_point);
        let sy = sorted_by_total(points.iter().map(|p| p.y));
        DriftSnapshot {
            history: Arc::clone(history),
            sx,
            sy,
        }
    }

    /// Number of points in the snapshotted window.
    pub fn len(&self) -> usize {
        self.sx.len()
    }

    /// Whether the snapshot holds no points.
    pub fn is_empty(&self) -> bool {
        self.sx.is_empty()
    }

    /// The snapshotted window points, sorted by `(x, y)`.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.sx.iter().map(|q| q.point)
    }

    /// Runs the boundary re-test. Pure and deterministic; bit-identical to
    /// [`RankedSample::peacock_test_window`] over the same points.
    ///
    /// # Panics
    ///
    /// Panics if the history or the snapshot is empty.
    pub fn evaluate(&self) -> Ks2dResult {
        assert!(
            !self.history.is_empty() && !self.is_empty(),
            "samples must be non-empty"
        );
        let d = ff_statistic_cached(&self.history, &self.sx, &self.sy);
        test_from_statistic(d, self.history.len(), self.sx.len())
    }
}

/// The cached variant of [`ff_statistic_ranked`]: history-side quadrant
/// counts come from the precomputed caches (`self_qa` for history split
/// points, the per-point `qa` for window split points), so the sweep keeps
/// a single Fenwick tree — over the *window's own* y-ranks — instead of
/// two over the merged rank space.
///
/// Window-local ranks preserve the exact counts: `count_le` is monotone and
/// every stored point's y-value is present in `sy`, so
/// `fen.prefix(count_le(sy, y))` counts exactly the entered window points
/// with `y' <= y` for any query y, including history y-values absent from
/// the window. Every quadrant integer therefore equals the merged sweep's,
/// and the supremum — a max over bitwise-identical f64 values — is
/// order-invariant, making the statistic bit-identical.
fn ff_statistic_cached(history: &DriftHistory, sx: &[QuadPoint], sy: &[f64]) -> f64 {
    let ax = &history.sample.by_x;
    let (na, nb) = (ax.len() as f64, sx.len() as f64);
    let nb_u = sx.len() as u32;
    let mut fen_b = Fenwick::new(sy.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d = 0.0f64;
    while ia < ax.len() || ib < sx.len() {
        let x = match (ax.get(ia), sx.get(ib)) {
            (Some(p), Some(q)) => {
                if p.x <= q.point.x {
                    p.x
                } else {
                    q.point.x
                }
            }
            (Some(p), None) => p.x,
            (None, Some(q)) => q.point.x,
            (None, None) => unreachable!(),
        };
        let a_start = ia;
        while ia < ax.len() && ax[ia].x == x {
            ia += 1;
        }
        let b_start = ib;
        while ib < sx.len() && sx[ib].point.x == x {
            fen_b.add(count_le(sy, sx[ib].point.y));
            ib += 1;
        }
        let cxb = ib as u32;
        for (a, &qa) in ax[a_start..ia].iter().zip(&history.self_qa[a_start..ia]) {
            let cyb = count_le(sy, a.y) as u32;
            let q3b = fen_b.prefix(count_le(sy, a.y));
            let qb = [nb_u + q3b - cxb - cyb, cxb - q3b, q3b, cyb - q3b];
            d = d.max(quad_count_diff(qa, qb, na, nb));
        }
        for s in &sx[b_start..ib] {
            let cyb = count_le(sy, s.point.y) as u32;
            let q3b = fen_b.prefix(count_le(sy, s.point.y));
            let qb = [nb_u + q3b - cxb - cyb, cxb - q3b, q3b, cyb - q3b];
            d = d.max(quad_count_diff(s.qa, qb, na, nb));
        }
    }
    d
}

/// Peacock's exact 2-D KS statistic over all `(x_i, y_j)` split pairs from
/// the pooled sample.
///
/// Rank-based: sorts each coordinate once, builds per-sample 2-D
/// prefix-count matrices over the pooled unique coordinate ranks, and sweeps
/// the split grid in parallel with `O(1)` quadrant counts — `O(n²)` time and
/// memory for `n` pooled points, bit-identical to
/// [`peacock_statistic_naive`].
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn peacock_statistic(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let mut xs = sorted_by_total(a.iter().chain(b.iter()).map(|p| p.x));
    xs.dedup();
    let mut ys = sorted_by_total(a.iter().chain(b.iter()).map(|p| p.y));
    ys.dedup();
    let ga = PrefixGrid::new(a, &xs, &ys);
    let gb = PrefixGrid::new(b, &xs, &ys);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    // Each worker scans a contiguous band of x-ranks; the supremum of
    // exactly-computed values is invariant to chunk boundaries, so the
    // result is identical for every thread count.
    let maxes = parallel::map_chunks(xs.len(), 8, |range| {
        let mut d = 0.0f64;
        for i in range {
            for j in 1..=ys.len() {
                d = d.max(quad_count_diff(
                    ga.quadrants(i + 1, j),
                    gb.quadrants(i + 1, j),
                    na,
                    nb,
                ));
            }
        }
        d
    });
    maxes.into_iter().fold(0.0, f64::max)
}

/// Naive `O(n³)` reference for [`peacock_statistic`]: recounts every point
/// at each pooled `(x_i, y_j)` split pair. Retained for equivalence tests
/// and benchmarks.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn peacock_statistic_naive(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let xs: Vec<f64> = a.iter().chain(b.iter()).map(|p| p.x).collect();
    let ys: Vec<f64> = a.iter().chain(b.iter()).map(|p| p.y).collect();
    let mut d: f64 = 0.0;
    for &x in &xs {
        for &y in &ys {
            d = d.max(max_quadrant_diff(a, b, x, y));
        }
    }
    d
}

/// Fasano–Franceschini approximation: split points restricted to the pooled
/// sample points themselves. Rank-based `O(n log n)` (x-ordered sweep with
/// Fenwick-tree y-counts), bit-identical to [`ff_statistic_naive`].
///
/// When one side is tested repeatedly (the streaming deviation monitor),
/// build a [`RankedSample`] for it once and use
/// [`RankedSample::ff_statistic`] to skip re-sorting that side.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ff_statistic(a: &[Point], b: &[Point]) -> f64 {
    RankedSample::new(a).ff_statistic(&RankedSample::new(b))
}

/// Naive `O(n²)` reference for [`ff_statistic`]: recounts every point at
/// each pooled sample point. Retained for equivalence tests and benchmarks.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ff_statistic_naive(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let mut d: f64 = 0.0;
    for p in a.iter().chain(b.iter()) {
        d = d.max(max_quadrant_diff(a, b, p.x, p.y));
    }
    d
}

/// Similarity in percent, `100 (1 − D)`, computed with the
/// Fasano–Franceschini statistic. This is the number reported in the
/// paper's Table IV.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn similarity_percent(a: &[Point], b: &[Point]) -> f64 {
    100.0 * (1.0 - ff_statistic(a, b))
}

/// Kolmogorov distribution complementary CDF `Q(λ) = 2 Σ (−1)^{k−1}
/// e^{−2k²λ²}`, used for the asymptotic p-value.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Builds the [`Ks2dResult`] from a statistic and the two sample sizes
/// using Peacock's `Z∞` empirical correction: `Z_inf = Z / (1 + (0.53 -
/// 0.9/sqrt(n)) / sqrt(n))` with `Z = D sqrt(n)`, scored against the 1-D
/// Kolmogorov distribution.
fn test_from_statistic(statistic: f64, n1: usize, n2: usize) -> Ks2dResult {
    let n1 = n1 as f64;
    let n2 = n2 as f64;
    let effective_n = n1 * n2 / (n1 + n2);
    let z = statistic * effective_n.sqrt();
    let z_inf = z / (1.0 + (0.53 - 0.9 / effective_n.sqrt()) / effective_n.sqrt());
    let p_value = kolmogorov_q(z_inf);
    Ks2dResult {
        statistic,
        similarity_percent: 100.0 * (1.0 - statistic),
        p_value,
        effective_n,
    }
}

/// Runs the full two-sample test with the (fast) Fasano–Franceschini
/// statistic and Peacock's `Z∞` significance approximation.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn peacock_test(a: &[Point], b: &[Point]) -> Ks2dResult {
    test_from_statistic(ff_statistic(a, b), a.len(), b.len())
}

/// Similarity regimes the paper maps to penalty-function types (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityClass {
    /// Above 95% similarity.
    VerySimilar,
    /// Between 80% and 95%.
    Similar,
    /// Below 80%.
    LessSimilar,
}

impl SimilarityClass {
    /// Classifies a similarity percentage using the paper's thresholds.
    ///
    /// Appropriate for large samples (the paper's Table IV uses full days
    /// of trips); for small streaming windows prefer
    /// [`SimilarityClass::from_test`], which accounts for the upward bias
    /// of the KS statistic at small `n`.
    pub fn from_percent(similarity: f64) -> Self {
        if similarity > 95.0 {
            SimilarityClass::VerySimilar
        } else if similarity >= 80.0 {
            SimilarityClass::Similar
        } else {
            SimilarityClass::LessSimilar
        }
    }

    /// Classifies a two-sample test outcome, robust to small samples:
    ///
    /// * not significant (`p > 0.05`) → *very similar* (no evidence of a
    ///   shift),
    /// * significant with a modest effect (`D < 0.5`) → *similar*,
    /// * significant with a large effect (`D ≥ 0.5`) → *less similar*.
    ///
    /// The 0.5 effect-size bar is deliberately high: ordinary diurnal
    /// rotation of demand (morning office mass vs all-day history) shows
    /// `D ≈ 0.2–0.35` and must not count as a regime change, whereas a
    /// genuine relocation of demand to an uncovered region (the paper's
    /// Fig. 6(b) scenario) drives `D` towards 1.
    pub fn from_test(result: &Ks2dResult) -> Self {
        if result.p_value > 0.05 {
            SimilarityClass::VerySimilar
        } else if result.statistic < 0.5 {
            SimilarityClass::Similar
        } else {
            SimilarityClass::LessSimilar
        }
    }

    /// Stable snake_case label for telemetry and logs (`very_similar`,
    /// `similar`, `less_similar`).
    pub fn as_str(self) -> &'static str {
        match self {
            SimilarityClass::VerySimilar => "very_similar",
            SimilarityClass::Similar => "similar",
            SimilarityClass::LessSimilar => "less_similar",
        }
    }
}

impl Ks2dResult {
    /// The similarity regime this test outcome falls in
    /// ([`SimilarityClass::from_test`]).
    pub fn class(&self) -> SimilarityClass {
        SimilarityClass::from_test(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn similarity_class_labels_and_result_class() {
        assert_eq!(SimilarityClass::VerySimilar.as_str(), "very_similar");
        assert_eq!(SimilarityClass::Similar.as_str(), "similar");
        assert_eq!(SimilarityClass::LessSimilar.as_str(), "less_similar");
        let result = Ks2dResult {
            statistic: 0.7,
            similarity_percent: 30.0,
            p_value: 0.001,
            effective_n: 100.0,
        };
        assert_eq!(result.class(), SimilarityClass::LessSimilar);
        assert_eq!(result.class(), SimilarityClass::from_test(&result));
    }

    fn uniform_sample(rng: &mut StdRng, n: usize, side: f64) -> Vec<Point> {
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    /// Points on a small integer lattice: duplicate coordinates and
    /// duplicate points are the norm, exercising every tie-handling path.
    fn lattice_sample(rng: &mut StdRng, n: usize, side: u32) -> Vec<Point> {
        (0..n)
            .map(|_| {
                Point::new(
                    f64::from(rng.gen_range(0..side)),
                    f64::from(rng.gen_range(0..side)),
                )
            })
            .collect()
    }

    #[test]
    fn identical_samples_give_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = uniform_sample(&mut rng, 60, 100.0);
        assert_eq!(peacock_statistic(&a, &a), 0.0);
        assert_eq!(ff_statistic(&a, &a), 0.0);
        assert_eq!(similarity_percent(&a, &a), 100.0);
    }

    #[test]
    fn disjoint_samples_give_one() {
        let a: Vec<Point> = (0..20).map(|i| Point::new(i as f64, i as f64)).collect();
        let b: Vec<Point> = (0..20)
            .map(|i| Point::new(1000.0 + i as f64, 1000.0 + i as f64))
            .collect();
        assert!(peacock_statistic(&a, &b) > 0.95);
        assert!(ff_statistic(&a, &b) > 0.95);
    }

    #[test]
    fn statistic_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = uniform_sample(&mut rng, 40, 100.0);
        let b = uniform_sample(&mut rng, 30, 120.0);
        assert_eq!(peacock_statistic(&a, &b), peacock_statistic(&b, &a));
        assert_eq!(ff_statistic(&a, &b), ff_statistic(&b, &a));
    }

    #[test]
    fn ff_lower_bounds_peacock() {
        // FF restricts the split points, so its supremum cannot exceed
        // Peacock's.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let a = uniform_sample(&mut rng, 25, 100.0);
            let b = uniform_sample(&mut rng, 25, 100.0);
            let ff = ff_statistic(&a, &b);
            let pk = peacock_statistic(&a, &b);
            assert!(ff <= pk + 1e-12, "ff {ff} > peacock {pk}");
        }
    }

    #[test]
    fn same_distribution_small_statistic() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = uniform_sample(&mut rng, 300, 100.0);
        let b = uniform_sample(&mut rng, 300, 100.0);
        let d = ff_statistic(&a, &b);
        assert!(d < 0.15, "same-distribution D should be small, got {d}");
        let r = peacock_test(&a, &b);
        assert!(r.p_value > 0.05, "p-value {} should not reject", r.p_value);
    }

    #[test]
    fn shifted_distribution_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = uniform_sample(&mut rng, 200, 100.0);
        let b: Vec<Point> = uniform_sample(&mut rng, 200, 100.0)
            .into_iter()
            .map(|p| p + Point::new(60.0, 0.0))
            .collect();
        let r = peacock_test(&a, &b);
        assert!(
            r.statistic > 0.3,
            "shift should inflate D, got {}",
            r.statistic
        );
        assert!(r.p_value < 0.01, "p-value {} should reject", r.p_value);
    }

    #[test]
    fn statistic_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = uniform_sample(&mut rng, 50, 10.0);
        let b = uniform_sample(&mut rng, 70, 50.0);
        let d = peacock_statistic(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let a = vec![Point::ORIGIN];
        let _ = peacock_statistic(&a, &[]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics_ff() {
        let a = vec![Point::ORIGIN];
        let _ = ff_statistic(&a, &[]);
    }

    #[test]
    fn kolmogorov_q_monotone() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        let q1 = kolmogorov_q(0.5);
        let q2 = kolmogorov_q(1.0);
        let q3 = kolmogorov_q(2.0);
        assert!(q1 > q2 && q2 > q3);
        assert!(q3 < 0.01);
        // Known value: Q(1.0) ~ 0.27.
        assert!((q2 - 0.27).abs() < 0.01);
    }

    #[test]
    fn similarity_class_thresholds() {
        assert_eq!(
            SimilarityClass::from_percent(97.0),
            SimilarityClass::VerySimilar
        );
        assert_eq!(
            SimilarityClass::from_percent(95.0),
            SimilarityClass::Similar
        );
        assert_eq!(
            SimilarityClass::from_percent(80.0),
            SimilarityClass::Similar
        );
        assert_eq!(
            SimilarityClass::from_percent(79.9),
            SimilarityClass::LessSimilar
        );
        assert_eq!(
            SimilarityClass::from_percent(60.0),
            SimilarityClass::LessSimilar
        );
    }

    #[test]
    fn quadrant_fractions_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = uniform_sample(&mut rng, 101, 100.0);
        let f = quadrant_fractions(&a, 50.0, 50.0);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_ff_matches_naive_on_random_samples() {
        let mut rng = StdRng::seed_from_u64(11);
        for case in 0..20 {
            let na = rng.gen_range(1..80);
            let nb = rng.gen_range(1..80);
            let (a, b) = if case % 2 == 0 {
                (
                    uniform_sample(&mut rng, na, 100.0),
                    uniform_sample(&mut rng, nb, 120.0),
                )
            } else {
                (
                    lattice_sample(&mut rng, na, 5),
                    lattice_sample(&mut rng, nb, 5),
                )
            };
            let fast = ff_statistic(&a, &b);
            let naive = ff_statistic_naive(&a, &b);
            assert_eq!(fast, naive, "case {case}: fast {fast} vs naive {naive}");
        }
    }

    #[test]
    fn fast_peacock_matches_naive_on_random_samples() {
        let mut rng = StdRng::seed_from_u64(12);
        for case in 0..12 {
            let na = rng.gen_range(1..30);
            let nb = rng.gen_range(1..30);
            let (a, b) = if case % 2 == 0 {
                (
                    uniform_sample(&mut rng, na, 50.0),
                    uniform_sample(&mut rng, nb, 60.0),
                )
            } else {
                (
                    lattice_sample(&mut rng, na, 4),
                    lattice_sample(&mut rng, nb, 4),
                )
            };
            let fast = peacock_statistic(&a, &b);
            let naive = peacock_statistic_naive(&a, &b);
            assert_eq!(fast, naive, "case {case}: fast {fast} vs naive {naive}");
        }
    }

    #[test]
    fn ranked_sample_reuse_matches_one_shot() {
        let mut rng = StdRng::seed_from_u64(13);
        let history = uniform_sample(&mut rng, 150, 100.0);
        let ranked = RankedSample::new(&history);
        for _ in 0..5 {
            let window = uniform_sample(&mut rng, 40, 100.0);
            let reused = ranked.peacock_test_against(&window);
            let fresh = peacock_test(&history, &window);
            assert_eq!(reused.statistic, fresh.statistic);
            assert_eq!(reused.p_value, fresh.p_value);
        }
    }

    #[test]
    fn single_point_samples() {
        let a = vec![Point::new(1.0, 2.0)];
        let b = vec![Point::new(1.0, 2.0)];
        assert_eq!(ff_statistic(&a, &b), ff_statistic_naive(&a, &b));
        assert_eq!(peacock_statistic(&a, &b), peacock_statistic_naive(&a, &b));
        let c = vec![Point::new(3.0, -1.0)];
        assert_eq!(ff_statistic(&a, &c), ff_statistic_naive(&a, &c));
        assert_eq!(peacock_statistic(&a, &c), peacock_statistic_naive(&a, &c));
    }

    #[test]
    fn incremental_window_is_fifo() {
        let mut w = IncrementalWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.pop_front(), None);
        for i in 0..5 {
            w.push_back(Point::new(f64::from(i), f64::from(-i)));
        }
        assert_eq!(w.len(), 5);
        assert_eq!(w.pop_front(), Some(Point::new(0.0, 0.0)));
        assert_eq!(w.pop_front(), Some(Point::new(1.0, -1.0)));
        assert_eq!(w.len(), 3);
        let order: Vec<Point> = w.iter().collect();
        assert_eq!(
            order,
            vec![
                Point::new(2.0, -2.0),
                Point::new(3.0, -3.0),
                Point::new(4.0, -4.0)
            ]
        );
    }

    #[test]
    fn incremental_window_matches_batch_under_churn() {
        // Stream a capped FIFO window (the deviation-monitor pattern) and
        // compare the incremental test against the batch re-rank at every
        // step where the window is non-empty. Lattice points force
        // duplicate x-runs, duplicate y-ranks and duplicate whole points
        // through the treaps.
        let mut rng = StdRng::seed_from_u64(21);
        let history = lattice_sample(&mut rng, 120, 6);
        let ranked = RankedSample::new(&history);
        let mut w = IncrementalWindow::new();
        let mut mirror: VecDeque<Point> = VecDeque::new();
        for step in 0..400 {
            let p = Point::new(
                f64::from(rng.gen_range(0u32..6)),
                f64::from(rng.gen_range(0u32..6)),
            );
            w.push_back(p);
            mirror.push_back(p);
            if mirror.len() > 37 {
                assert_eq!(w.pop_front(), mirror.pop_front());
            }
            if step % 7 == 0 {
                let batch: Vec<Point> = mirror.iter().copied().collect();
                let fast = ranked.peacock_test_window(&mut w);
                let slow = ranked.peacock_test_against(&batch);
                assert_eq!(fast, slow, "step {step}");
                assert_eq!(
                    fast.statistic,
                    ff_statistic_naive(&history, &batch),
                    "step {step}"
                );
            }
        }
    }

    #[test]
    fn all_identical_points_tie_storm() {
        let a = vec![Point::new(2.0, 2.0); 17];
        let mut b = vec![Point::new(2.0, 2.0); 9];
        assert_eq!(ff_statistic(&a, &b), 0.0);
        assert_eq!(peacock_statistic(&a, &b), 0.0);
        b.push(Point::new(2.0, 3.0));
        assert_eq!(ff_statistic(&a, &b), ff_statistic_naive(&a, &b));
        assert_eq!(peacock_statistic(&a, &b), peacock_statistic_naive(&a, &b));
    }

    #[test]
    fn merge_tree_counts_match_scan() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [1usize, 2, 3, 7, 8, 9, 33, 100] {
            let pts = lattice_sample(&mut rng, n, 5);
            let ranked = RankedSample::new(&pts);
            let tree = MergeTree::new(&ranked.by_x);
            for prefix in 0..=n {
                for y in [-1.0, 0.0, 1.5, 2.0, 3.0, 4.0, 10.0] {
                    let scan = ranked.by_x[..prefix].iter().filter(|p| p.y <= y).count();
                    assert_eq!(
                        tree.count_le_in_prefix(prefix, y),
                        scan as u32,
                        "n {n} prefix {prefix} y {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn drift_monitor_matches_batch_under_churn() {
        // Mirror of `incremental_window_matches_batch_under_churn` for the
        // cached-quadrant monitor: the evaluated test must be bit-identical
        // to the batch re-rank and the naive oracle at every probe, with
        // lattice ties driving duplicates through every cache path.
        let mut rng = StdRng::seed_from_u64(41);
        let history = lattice_sample(&mut rng, 120, 6);
        let ranked = RankedSample::new(&history);
        let shared = Arc::new(DriftHistory::new(&history));
        let mut m = DriftMonitor::new(Arc::clone(&shared));
        let mut mirror: VecDeque<Point> = VecDeque::new();
        for step in 0..400 {
            let p = Point::new(
                f64::from(rng.gen_range(0u32..6)),
                f64::from(rng.gen_range(0u32..6)),
            );
            m.push_back(p);
            mirror.push_back(p);
            if mirror.len() > 37 {
                assert_eq!(m.pop_front(), mirror.pop_front());
            }
            if step % 7 == 0 {
                let batch: Vec<Point> = mirror.iter().copied().collect();
                let fast = m.evaluate_now();
                let slow = ranked.peacock_test_against(&batch);
                assert_eq!(fast, slow, "step {step}");
                assert_eq!(
                    fast.statistic,
                    ff_statistic_naive(&history, &batch),
                    "step {step}"
                );
            }
        }
    }

    #[test]
    fn drift_snapshot_evaluation_is_pure_and_rebuildable() {
        let mut rng = StdRng::seed_from_u64(43);
        let history = uniform_sample(&mut rng, 150, 100.0);
        let ranked = RankedSample::new(&history);
        let shared = Arc::new(DriftHistory::new(&history));
        let mut m = DriftMonitor::new(Arc::clone(&shared));
        for p in uniform_sample(&mut rng, 60, 100.0) {
            m.push_back(p);
        }
        let window: Vec<Point> = m.iter().collect();
        let snap = m.snapshot();
        // Pure: repeated evaluation returns the same bits, and the monitor
        // keeps serving pushes/pops independently of the snapshot.
        let first = snap.evaluate();
        assert_eq!(first, snap.evaluate());
        assert_eq!(first, ranked.peacock_test_against(&window));
        m.push_back(Point::new(1.0, 1.0));
        m.pop_front();
        assert_eq!(first, snap.evaluate(), "snapshot is immutable under churn");
        // Rebuilding from the bare points (the checkpoint-restore path)
        // reproduces the same result, whatever the input order.
        let mut shuffled: Vec<Point> = snap.points().collect();
        shuffled.reverse();
        let rebuilt = DriftSnapshot::from_points(&shared, &shuffled);
        assert_eq!(first, rebuilt.evaluate());
    }

    #[test]
    fn drift_monitor_tie_storm_and_tiny_samples() {
        // All-identical points, then a history of size 1: the degenerate
        // shapes the subsampled deviation history can produce.
        let hist = vec![Point::new(2.0, 2.0); 17];
        let shared = Arc::new(DriftHistory::new(&hist));
        let mut m = DriftMonitor::new(Arc::clone(&shared));
        for _ in 0..9 {
            m.push_back(Point::new(2.0, 2.0));
        }
        assert_eq!(m.evaluate_now().statistic, 0.0);
        m.push_back(Point::new(2.0, 3.0));
        let batch: Vec<Point> = m.iter().collect();
        assert_eq!(
            m.evaluate_now().statistic,
            ff_statistic_naive(&hist, &batch)
        );
        let tiny = vec![Point::new(5.0, -3.0)];
        let shared = Arc::new(DriftHistory::new(&tiny));
        let mut m = DriftMonitor::new(shared);
        m.push_back(Point::new(4.0, 0.0));
        let batch: Vec<Point> = m.iter().collect();
        assert_eq!(
            m.evaluate_now().statistic,
            ff_statistic_naive(&tiny, &batch)
        );
    }

    #[test]
    fn drift_monitor_empty_history_accepts_pushes() {
        // An unarmed monitor (no history yet) must absorb window churn
        // without panicking; only evaluation requires both sides.
        let shared = Arc::new(DriftHistory::new(&[]));
        assert!(shared.is_empty());
        let mut m = DriftMonitor::new(shared);
        for i in 0..10 {
            m.push_back(Point::new(f64::from(i), f64::from(-i)));
        }
        assert_eq!(m.pop_front(), Some(Point::new(0.0, 0.0)));
        assert_eq!(m.len(), 9);
    }
}
