//! Cross-algorithm integration tests for Tier 1 (PLP).

use e_sharing::geo::Point;
use e_sharing::placement::offline::jms_greedy;
use e_sharing::placement::online::{
    DeviationConfig, DeviationPenalty, Meyerson, OnlineKMeans, OnlinePlacement,
};
use e_sharing::placement::PlpInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn uniform(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

/// The paper's Table V ordering on averaged random workloads:
/// offline ≤ E-sharing < Meyerson < online k-means.
#[test]
fn table_v_cost_ordering_holds_on_average() {
    const SPACE: f64 = 5_000.0;
    let mut totals = [0.0f64; 4];
    for seed in 0..10u64 {
        let history = uniform(150, 1_000.0, 10_000 + seed);
        let live = uniform(150, 1_000.0, 20_000 + seed);
        let inst = PlpInstance::with_uniform_cost(live.clone(), SPACE);
        let off = jms_greedy(&inst);
        totals[0] += inst.cost_of(&off).total();

        let guide_inst = PlpInstance::with_uniform_cost(history.clone(), SPACE);
        let landmarks = jms_greedy(&guide_inst).facility_points(&guide_inst);
        let k = landmarks.len();
        let mut es = DeviationPenalty::new(
            landmarks,
            history,
            DeviationConfig {
                space_cost: SPACE,
                seed,
                ..DeviationConfig::default()
            },
        );
        totals[1] += es.run(live.iter().copied()).total();

        let mut mey = Meyerson::new(SPACE, seed);
        totals[2] += mey.run(live.iter().copied()).total();

        let mut km =
            OnlineKMeans::new(k.max(1), live.len(), SPACE, seed).with_phase_length(k.max(1));
        totals[3] += km.run(live.iter().copied()).total();
    }
    let [off, es, mey, km] = totals;
    assert!(off <= es, "offline {off} must lower-bound E-sharing {es}");
    assert!(es < mey, "E-sharing {es} must beat Meyerson {mey}");
    assert!(mey < km, "Meyerson {mey} must beat online k-means {km}");
    // And the E-sharing gap to offline stays well inside the paper's band.
    assert!(
        es / off < 1.6,
        "E-sharing/offline ratio {:.2} too large",
        es / off
    );
}

/// Theorem 1's adversarial stream: geometrically shrinking requests at
/// (2^-i, 2^-i). The offline optimum opens one facility; any online
/// algorithm keeps paying. We verify the *construction* — the offline cost
/// stays bounded while Meyerson's grows with the horizon.
#[test]
fn theorem_1_adversarial_stream() {
    let f = 2.0;
    let stream: Vec<Point> = (1..40)
        .map(|i| {
            let c = 2.0f64.powi(-i);
            Point::new(c, c)
        })
        .collect();
    // Offline: a single facility at the first (largest) point serves all
    // with cost bounded by 2 + sqrt(2).
    let inst = PlpInstance::with_uniform_cost(stream.clone(), f);
    let off = jms_greedy(&inst);
    let off_cost = inst.cost_of(&off).total();
    assert!(
        off_cost <= f + std::f64::consts::SQRT_2,
        "offline cost {off_cost} must stay bounded"
    );
    // The online algorithm cannot be O(1)-competitive on this family; at
    // the very least it pays the distance stream or extra facilities.
    let mut mey = Meyerson::new(f, 1);
    let on_cost = mey.run(stream.iter().copied()).total();
    assert!(on_cost >= off_cost);
}

/// The guided online algorithm defaults toward the landmarks: when live
/// traffic exactly matches history, extra stations stay rare.
#[test]
fn guided_online_stays_near_landmark_count() {
    for seed in 0..5u64 {
        let history = uniform(200, 1_500.0, 777 + seed);
        let inst = PlpInstance::with_uniform_cost(history.clone(), 5_000.0);
        let landmarks = jms_greedy(&inst).facility_points(&inst);
        let k = landmarks.len();
        let mut es = DeviationPenalty::new(
            landmarks,
            history.clone(),
            DeviationConfig {
                space_cost: 5_000.0,
                seed,
                ..DeviationConfig::default()
            },
        );
        for p in uniform(200, 1_500.0, 888 + seed) {
            es.handle(p);
        }
        assert!(
            es.stations().len() <= 2 * k + 2,
            "seed {seed}: {} stations from k={k}",
            es.stations().len()
        );
    }
}

/// Removing every station leaves the algorithm functional (footnote 2).
#[test]
fn deviation_penalty_survives_total_station_loss() {
    let history = uniform(100, 500.0, 1);
    let landmarks = vec![Point::new(100.0, 100.0), Point::new(400.0, 400.0)];
    let mut es = DeviationPenalty::new(landmarks.clone(), history, DeviationConfig::default());
    for p in &landmarks {
        assert!(es.remove_station(*p));
    }
    let mut served = 0;
    for p in uniform(50, 500.0, 2) {
        es.handle(p);
        served += 1;
    }
    assert_eq!(served, 50);
    assert!(!es.stations().is_empty());
}

/// Online algorithms agree with their cost invariant: walking equals the
/// sum of assigned distances, space equals stations × f.
#[test]
fn online_cost_invariants() {
    const SPACE: f64 = 2_000.0;
    let stream = uniform(300, 800.0, 3);

    let mut mey = Meyerson::new(SPACE, 3);
    let mut walking = 0.0;
    for &p in &stream {
        if let e_sharing::placement::online::Decision::Assigned { walking: w, .. } = mey.handle(p) {
            walking += w;
        }
    }
    let cost = mey.cost();
    assert!((cost.walking - walking).abs() < 1e-9);
    assert!((cost.space - mey.stations().len() as f64 * SPACE).abs() < 1e-9);
}
