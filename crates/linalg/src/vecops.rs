//! Element-wise vector helpers used by the LSTM forward/backward passes.

/// Dot product.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// In-place `a += b`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add_assign length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// In-place `a += b * scale` (axpy).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy(a: &mut [f64], b: &[f64], scale: f64) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y * scale;
    }
}

/// Element-wise (Hadamard) product.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn hadamard(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Scales `a` in place so its Euclidean norm does not exceed `max_norm` —
/// global gradient clipping for BPTT stability. Returns the scale applied.
pub fn clip_norm(a: &mut [f64], max_norm: f64) -> f64 {
    debug_assert!(max_norm > 0.0);
    let n = norm(a);
    if n > max_norm {
        let s = max_norm / n;
        for x in a.iter_mut() {
            *x *= s;
        }
        s
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn add_and_assign_agree() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        let summed = add(&a, &b);
        let mut inplace = a;
        add_assign(&mut inplace, &b);
        assert_eq!(summed, inplace.to_vec());
        assert_eq!(summed, vec![4.0, 7.0]);
    }

    #[test]
    fn axpy_known() {
        let mut a = [1.0, 1.0];
        axpy(&mut a, &[2.0, 3.0], 0.5);
        assert_eq!(a, [2.0, 2.5]);
    }

    #[test]
    fn hadamard_known() {
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
    }

    #[test]
    fn norm_known() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn clip_norm_only_when_needed() {
        let mut a = [3.0, 4.0];
        let s = clip_norm(&mut a, 10.0);
        assert_eq!(s, 1.0);
        assert_eq!(a, [3.0, 4.0]);
        let s = clip_norm(&mut a, 1.0);
        assert!((s - 0.2).abs() < 1e-12);
        assert!((norm(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
