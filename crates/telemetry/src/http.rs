//! Tiny std-only HTTP exposition server.
//!
//! One `TcpListener` accept loop on a background thread, serving
//! point-in-time [`Scrape`]s pulled from a [`ScrapeSource`] (the engine's
//! telemetry probe). This is deliberately not a web framework: requests
//! are parsed to the first line, responses are `Connection: close`, and
//! the whole thing exists so `curl`/Prometheus can watch a live replay
//! run. Shutdown uses a poison-pill self-connect to unblock `accept`.

use crate::expose::{render_events_json, render_json, render_prometheus_into, MetricFamily};
use crate::journal::EventRecord;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A point-in-time view of the whole system: metric families plus the
/// merged event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Scrape {
    /// Metric families (fleet totals first, then shard-labelled series).
    pub families: Vec<MetricFamily>,
    /// Merged, time-ordered event records.
    pub events: Vec<EventRecord>,
    /// Events lost to journal/log bounds before this scrape.
    pub events_dropped: u64,
}

/// Something that can produce a [`Scrape`] on demand. Returning `None`
/// means the system has shut down; the server answers 503.
pub trait ScrapeSource: Send + Sync {
    /// Produce a current scrape, or `None` if the source is gone.
    fn scrape(&self) -> Option<Scrape>;

    /// A frozen flight-recorder dump by id (served at `/flight/<id>`).
    /// Sources without a flight recorder keep the default `None`.
    fn flight(&self, _id: &str) -> Option<String> {
        None
    }

    /// Ids of retained flight dumps (served at `/flight`). Default empty.
    fn flight_ids(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Background HTTP responder exposing a [`ScrapeSource`].
///
/// Routes: `/metrics` (Prometheus text), `/metrics.json` (JSON),
/// `/events` (JSON event log), `/flight` + `/flight/<id>` (flight-recorder
/// dumps), `/` (plain-text index).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `source`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, source: Arc<dyn ScrapeSource>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("esharing-metrics-http".into())
            .spawn(move || serve_loop(listener, source, stop2))
            .expect("spawn metrics http thread");
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves the actual port for `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Poison pill: unblock the accept call.
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: TcpListener, source: Arc<dyn ScrapeSource>, stop: Arc<AtomicBool>) {
    // One body buffer for the life of the loop: each response renders
    // into it in place, so steady-state scraping stops reallocating the
    // full exposition text per request.
    let mut body = String::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        let Some(path) = read_request_path(&mut stream) else {
            continue;
        };
        body.clear();
        let (status, content_type) = respond(&path, source.as_ref(), &mut body);
        let _ = write_response(&mut stream, status, content_type, &body);
    }
}

/// Reads the request head and returns the request-target of the first
/// line (`GET /metrics HTTP/1.1` → `/metrics`).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let first = head.lines().next()?;
    let mut parts = first.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_string())
}

/// Renders the response body for `path` into `body` (assumed cleared)
/// and returns `(status, content_type)`.
fn respond(path: &str, source: &dyn ScrapeSource, body: &mut String) -> (u16, &'static str) {
    // Strip any query string: scrapers add ?format= and friends.
    let path = path.split('?').next().unwrap_or(path);
    if let Some(id) = path.strip_prefix("/flight/") {
        return match source.flight(id) {
            Some(dump) => {
                body.push_str(&dump);
                (200, "application/json")
            }
            None => {
                body.push_str("no such flight dump\n");
                (404, "text/plain; charset=utf-8")
            }
        };
    }
    match path {
        "/" => {
            body.push_str(
                "esharing telemetry\n\n/metrics       Prometheus text format\n/metrics.json  JSON metric families\n/events        JSON event journal\n/flight        flight-recorder dump index\n/flight/<id>   one frozen flight dump\n",
            );
            (200, "text/plain; charset=utf-8")
        }
        "/flight" => {
            let ids: Vec<String> = source
                .flight_ids()
                .iter()
                .map(|i| crate::expose::json_string(i))
                .collect();
            body.push_str(&format!("{{\"flights\": [{}]}}\n", ids.join(", ")));
            (200, "application/json")
        }
        "/metrics" | "/metrics.json" | "/events" => match source.scrape() {
            None => {
                body.push_str("engine shut down\n");
                (503, "text/plain; charset=utf-8")
            }
            Some(scrape) => match path {
                "/metrics" => {
                    render_prometheus_into(body, &scrape.families);
                    (200, "text/plain; version=0.0.4; charset=utf-8")
                }
                "/metrics.json" => {
                    body.push_str(&render_json(&scrape.families));
                    (200, "application/json")
                }
                _ => {
                    body.push_str(&render_events_json(&scrape.events, scrape.events_dropped));
                    (200, "application/json")
                }
            },
        },
        _ => {
            body.push_str("not found\n");
            (404, "text/plain; charset=utf-8")
        }
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET against the metrics server (tests, CI smoke,
/// and `exp_engine`'s self-scrape all use this instead of depending on an
/// HTTP client).
///
/// Returns `(status, body)`.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses.
pub fn http_get<A: ToSocketAddrs>(addr: A, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MergeMode, Registry};
    use std::sync::Mutex;

    struct FixedSource {
        scrape: Mutex<Option<Scrape>>,
    }

    impl ScrapeSource for FixedSource {
        fn scrape(&self) -> Option<Scrape> {
            self.scrape.lock().unwrap().clone()
        }

        fn flight(&self, id: &str) -> Option<String> {
            (id == "flight-0001").then(|| "{\"id\": \"flight-0001\"}\n".to_string())
        }

        fn flight_ids(&self) -> Vec<String> {
            vec!["flight-0001".into()]
        }
    }

    fn demo_scrape() -> Scrape {
        let mut r = Registry::new();
        let c = r.counter("esharing_decisions_total", "decisions");
        r.add(c, 9);
        let g = r.gauge("esharing_ks_d_statistic", "d", MergeMode::PerShard);
        r.set(g, 0.5);
        Scrape {
            families: crate::expose::snapshot_families(&[&r.snapshot()]),
            events: Vec::new(),
            events_dropped: 0,
        }
    }

    #[test]
    fn serves_metrics_json_events_and_404() {
        let source = Arc::new(FixedSource {
            scrape: Mutex::new(Some(demo_scrape())),
        });
        let mut server = MetricsServer::start("127.0.0.1:0", source.clone()).expect("bind");
        let addr = server.addr();

        let (status, body) = http_get(addr, "/metrics").expect("scrape");
        assert_eq!(status, 200);
        assert!(body.contains("esharing_decisions_total 9"), "{body}");
        assert!(body.contains("# TYPE esharing_ks_d_statistic gauge"));

        let (status, body) = http_get(addr, "/metrics.json").expect("json");
        assert_eq!(status, 200);
        assert!(body.contains("\"value\": 9"));

        let (status, body) = http_get(addr, "/events").expect("events");
        assert_eq!(status, 200);
        assert!(body.contains("\"events\": ["));

        let (status, _) = http_get(addr, "/metrics?format=prometheus").expect("query");
        assert_eq!(status, 200);

        let (status, _) = http_get(addr, "/nope").expect("404");
        assert_eq!(status, 404);

        let (status, body) = http_get(addr, "/flight").expect("flight index");
        assert_eq!(status, 200);
        assert!(body.contains("\"flight-0001\""), "{body}");

        let (status, body) = http_get(addr, "/flight/flight-0001").expect("flight dump");
        assert_eq!(status, 200);
        assert!(body.contains("\"id\": \"flight-0001\""));

        let (status, _) = http_get(addr, "/flight/flight-9999").expect("flight 404");
        assert_eq!(status, 404);

        let (status, body) = http_get(addr, "/").expect("index");
        assert_eq!(status, 200);
        assert!(body.contains("/metrics"));

        // Source gone -> 503, and the server survives to answer it.
        *source.scrape.lock().unwrap() = None;
        let (status, _) = http_get(addr, "/metrics").expect("503");
        assert_eq!(status, 503);

        server.shutdown();
        server.shutdown(); // idempotent; also exercised again by drop
    }
}
