//! Fleet-level aggregation of per-shard state.
//!
//! Every field of [`SystemMetrics`] is a running sum, so per-shard metrics
//! merge by addition (see `esharing-core`'s `Add` impl) and the derived
//! averages recompute correctly from the merged sums. Snapshots merge the
//! same way: station sets concatenate (zones are disjoint), costs and
//! counters add.

use esharing_core::server::ServerSnapshot;
use esharing_core::{LatencyHistogram, SystemMetrics};
use esharing_geo::Point;
use serde::{Deserialize, Serialize};

/// One shard's state at snapshot time, decorated with router-side data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// The zone's representative point (rectangle center / Voronoi
    /// anchor).
    pub anchor: Point,
    /// The shard worker's server view (stations, placement cost, served).
    pub server: ServerSnapshot,
    /// The shard's full metric sums.
    pub metrics: SystemMetrics,
    /// KS similarity (percent) at the shard's last periodic drift test.
    pub last_similarity: Option<f64>,
    /// Requests the router shed for this shard (mailbox full).
    pub shed: u64,
}

/// The whole fleet: per-shard parts plus their merged totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Per-shard state, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Union of the shards' server views.
    pub fleet: ServerSnapshot,
    /// Sum of the shards' metrics.
    pub metrics: SystemMetrics,
    /// Sum of the shards' shed counts.
    pub shed_total: u64,
}

impl EngineSnapshot {
    /// Merges per-shard snapshots into fleet totals.
    pub fn from_shards(shards: Vec<ShardSnapshot>) -> Self {
        let fleet = merge_server_snapshots(shards.iter().map(|s| &s.server));
        let metrics = shards.iter().map(|s| s.metrics).sum();
        let shed_total = shards.iter().map(|s| s.shed).sum();
        EngineSnapshot {
            shards,
            fleet,
            metrics,
            shed_total,
        }
    }

    /// Serialises the snapshot to a flat JSON document (hand-emitted; the
    /// workspace deliberately carries no JSON dependency) suitable for
    /// dumping alongside `BENCH_engine.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"fleet\": {{ \"stations\": {}, \"requests_served\": {}, \"walking_m\": {:.1}, \"space_m\": {:.1}, \"shed\": {}, {} }},\n",
            self.fleet.stations.len(),
            self.fleet.requests_served,
            self.fleet.placement.walking,
            self.fleet.placement.space,
            self.shed_total,
            latency_json(&self.fleet.latency),
        ));
        out.push_str("  \"shards\": [\n");
        for (i, s) in self.shards.iter().enumerate() {
            let similarity = match s.last_similarity {
                Some(v) if v.is_finite() => format!("{v:.1}"),
                _ => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{ \"shard\": {}, \"anchor\": [{:.1}, {:.1}], \"stations\": {}, \"requests_served\": {}, \"walking_m\": {:.1}, \"space_m\": {:.1}, \"similarity_percent\": {}, \"shed\": {}, {} }}{}\n",
                s.shard,
                s.anchor.x,
                s.anchor.y,
                s.server.stations.len(),
                s.server.requests_served,
                s.server.placement.walking,
                s.server.placement.space,
                similarity,
                s.shed,
                latency_json(&s.server.latency),
                if i + 1 < self.shards.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Decision-latency quantile fields for the hand-emitted JSON dump.
/// Bucketed quantiles (12.5% resolution) in microseconds; see
/// [`LatencyHistogram`].
fn latency_json(latency: &LatencyHistogram) -> String {
    format!(
        "\"latency_count\": {}, \"latency_p50_us\": {:.1}, \"latency_p99_us\": {:.1}, \"latency_p999_us\": {:.1}",
        latency.count(),
        latency.p50_ns() as f64 / 1_000.0,
        latency.p99_ns() as f64 / 1_000.0,
        latency.p999_ns() as f64 / 1_000.0,
    )
}

/// Merges server snapshots: stations concatenate (disjoint zones), costs,
/// counters and latency histograms sum — merging the histograms *before*
/// taking quantiles is what keeps fleet percentiles honest (averaging
/// per-shard percentiles is not a percentile).
pub fn merge_server_snapshots<'a, I>(parts: I) -> ServerSnapshot
where
    I: IntoIterator<Item = &'a ServerSnapshot>,
{
    let mut merged = ServerSnapshot {
        stations: Vec::new(),
        placement: esharing_placement::PlacementCost::ZERO,
        requests_served: 0,
        latency: LatencyHistogram::new(),
    };
    for part in parts {
        merged.stations.extend_from_slice(&part.stations);
        merged.placement = merged.placement + part.placement;
        merged.requests_served += part.requests_served;
        merged.latency += part.latency.clone();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharing_placement::PlacementCost;

    fn shard(i: usize, stations: usize, served: u64, walk: f64, shed: u64) -> ShardSnapshot {
        let mut latency = LatencyHistogram::new();
        for r in 0..served {
            latency.record_ns((r + 1) * 10_000 * (i as u64 + 1));
        }
        let server = ServerSnapshot {
            stations: (0..stations)
                .map(|s| Point::new(i as f64 * 1000.0 + s as f64, 0.0))
                .collect(),
            placement: PlacementCost::new(walk, stations as f64 * 100.0),
            requests_served: served,
            latency,
        };
        ShardSnapshot {
            shard: i,
            anchor: Point::new(i as f64 * 1000.0, 0.0),
            server,
            metrics: SystemMetrics {
                placement: PlacementCost::new(walk, stations as f64 * 100.0),
                requests_served: served,
                ..SystemMetrics::default()
            },
            last_similarity: if i == 0 { Some(92.5) } else { None },
            shed,
        }
    }

    #[test]
    fn fleet_totals_are_sums_of_parts() {
        let snap = EngineSnapshot::from_shards(vec![
            shard(0, 3, 40, 1200.0, 2),
            shard(1, 2, 60, 800.0, 0),
        ]);
        assert_eq!(snap.fleet.stations.len(), 5);
        assert_eq!(snap.fleet.requests_served, 100);
        assert_eq!(snap.fleet.placement, PlacementCost::new(2000.0, 500.0));
        assert_eq!(snap.metrics.requests_served, 100);
        assert_eq!(snap.metrics.avg_walk_m(), 20.0);
        assert_eq!(snap.shed_total, 2);
        // The fleet histogram is the sum of the parts, not an average of
        // their quantiles.
        assert_eq!(snap.fleet.latency.count(), 100);
        assert_eq!(
            snap.fleet.latency,
            snap.shards
                .iter()
                .map(|s| s.server.latency.clone())
                .sum::<LatencyHistogram>()
        );
        assert!(snap.fleet.latency.p999_ns() >= snap.fleet.latency.p50_ns());
    }

    #[test]
    fn merge_of_empty_is_zero() {
        let merged = merge_server_snapshots(std::iter::empty());
        assert!(merged.stations.is_empty());
        assert_eq!(merged.requests_served, 0);
        assert_eq!(merged.placement, PlacementCost::ZERO);
    }

    #[test]
    fn json_dump_is_flat_and_complete() {
        let snap = EngineSnapshot::from_shards(vec![
            shard(0, 3, 40, 1200.0, 2),
            shard(1, 2, 60, 800.0, 0),
        ]);
        let json = snap.to_json();
        assert!(json.contains("\"fleet\""));
        assert!(json.contains("\"requests_served\": 100"));
        assert!(json.contains("\"similarity_percent\": 92.5"));
        assert!(json.contains("\"similarity_percent\": null"));
        assert!(json.contains("\"shed\": 2"));
        assert_eq!(json.matches("\"shard\":").count(), 2);
        // Latency fields appear for the fleet and for every shard.
        assert_eq!(json.matches("\"latency_p50_us\":").count(), 3);
        assert_eq!(json.matches("\"latency_p99_us\":").count(), 3);
        assert_eq!(json.matches("\"latency_p999_us\":").count(), 3);
        assert!(json.contains("\"latency_count\": 100"));
    }
}
