//! Trip records and the deterministic trip stream generator.

use crate::city::SyntheticCity;
use crate::time::{Timestamp, SECONDS_PER_HOUR};
use esharing_geo::{geohash, GeoError, LatLon, LocalProjection, Point};
use esharing_stats::samplers::poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Geohash precision used for trip endpoints (7 characters ≈ the paper's
/// 100 × 100 m bins at Beijing's latitude).
pub const GEOHASH_PRECISION: usize = 7;

/// The geographic datum anchoring planar city coordinates: the south-west
/// corner of the field maps to this coordinate (central Beijing, matching
/// the original dataset's region).
pub fn city_datum() -> LocalProjection {
    LocalProjection::new(LatLon::new(39.88, 116.35).expect("valid datum"))
}

/// One trip record in the Mobike schema: "(order id, user id, bike id,
/// bike type, starting time, starting location, ending location)".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trip {
    /// Unique order id.
    pub order_id: u64,
    /// User who rode.
    pub user_id: u64,
    /// Bike that was ridden.
    pub bike_id: u64,
    /// Bike type (0 = classic, 1 = e-bike).
    pub bike_type: u8,
    /// Trip start time.
    pub start_time: Timestamp,
    /// Pick-up location in planar city meters.
    pub start: Point,
    /// Drop-off location (the destination the placement algorithms serve).
    pub end: Point,
}

impl Trip {
    /// Geohash of the pick-up location.
    ///
    /// # Errors
    ///
    /// Returns a [`GeoError`] if the point maps outside valid coordinates.
    pub fn start_geohash(&self) -> Result<String, GeoError> {
        geohash::encode(city_datum().unproject(self.start)?, GEOHASH_PRECISION)
    }

    /// Geohash of the drop-off location.
    ///
    /// # Errors
    ///
    /// Returns a [`GeoError`] if the point maps outside valid coordinates.
    pub fn end_geohash(&self) -> Result<String, GeoError> {
        geohash::encode(city_datum().unproject(self.end)?, GEOHASH_PRECISION)
    }

    /// Straight-line trip length in meters.
    pub fn length(&self) -> f64 {
        self.start.distance(self.end)
    }
}

/// Extracts the drop-off stream the placement algorithms serve, in trip
/// order. Replay drivers (the sharded engine's load generator, the
/// simulation) feed this to an online server one destination at a time.
pub fn destinations(trips: &[Trip]) -> Vec<Point> {
    trips.iter().map(|t| t.end).collect()
}

/// A temporary demand surge at an otherwise quiet location — the paper's
/// motivating scenario for the online algorithm: "events such as concerts
/// or sports games might lead to short-time demand surge at previously
/// unexpected locations" (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecialEvent {
    /// Venue of the event (trips end here while it runs).
    pub location: Point,
    /// Day the surge occurs.
    pub day: u64,
    /// First hour of the surge (0–23).
    pub start_hour: u64,
    /// Surge length in hours.
    pub duration_h: u64,
    /// Expected extra arrivals per surge hour.
    pub arrivals_per_hour: f64,
    /// Spatial scatter of the surge arrivals (Gaussian σ, meters).
    pub scatter: f64,
}

impl SpecialEvent {
    /// Whether the event is active at `(day, hour)`.
    pub fn active_at(&self, day: u64, hour: u64) -> bool {
        day == self.day && (self.start_hour..self.start_hour + self.duration_h).contains(&hour)
    }
}

/// Deterministic, seeded generator of [`Trip`] streams over the city.
///
/// Per hour and POI, the number of arriving trips is Poisson with the
/// city's diurnal rate; each arrival scatters around its POI and originates
/// near another POI chosen by popularity. Registered [`SpecialEvent`]s add
/// surge arrivals at their venue while active.
#[derive(Debug, Clone)]
pub struct TripGenerator {
    city: SyntheticCity,
    rng: StdRng,
    next_order_id: u64,
    events: Vec<SpecialEvent>,
}

impl TripGenerator {
    /// Creates a generator for `city` with its own `seed` (independent of
    /// the city-layout seed).
    pub fn new(city: &SyntheticCity, seed: u64) -> Self {
        TripGenerator {
            city: city.clone(),
            rng: StdRng::seed_from_u64(seed),
            next_order_id: 1,
            events: Vec::new(),
        }
    }

    /// Registers a special event; its surge arrivals are generated on top
    /// of the regular demand while it is active.
    pub fn add_event(&mut self, event: SpecialEvent) {
        self.events.push(event);
    }

    /// The registered events.
    pub fn events(&self) -> &[SpecialEvent] {
        &self.events
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn scatter_around(&mut self, center: Point, sigma: f64) -> Point {
        let p = center + Point::new(self.gaussian() * sigma, self.gaussian() * sigma);
        self.city.bbox().clamp(p)
    }

    /// Samples an origin POI index by popularity weight.
    fn sample_origin_poi(&mut self) -> usize {
        let total: f64 = self.city.pois().iter().map(|p| p.weight).sum();
        let mut target = self.rng.gen_range(0.0..total);
        for (i, poi) in self.city.pois().iter().enumerate() {
            target -= poi.weight;
            if target <= 0.0 {
                return i;
            }
        }
        self.city.pois().len() - 1
    }

    /// Generates all trips for one hour of one day, sorted by start time.
    pub fn generate_hour(&mut self, day: u64, hour: u64) -> Vec<Trip> {
        let weekend = Timestamp::from_day_hour(day, hour).is_weekend();
        let rates = self.city.poi_arrival_rates(hour, weekend);
        let cfg = self.city.config().clone();
        let mut trips = Vec::new();
        for (poi_idx, rate) in rates.iter().enumerate() {
            let n = poisson(&mut self.rng, *rate);
            for _ in 0..n {
                let dest_poi = self.city.pois()[poi_idx];
                let end = self.scatter_around(dest_poi.location, dest_poi.scatter);
                let origin_idx = self.sample_origin_poi();
                let origin_poi = self.city.pois()[origin_idx];
                let start = self.scatter_around(origin_poi.location, origin_poi.scatter);
                let second = self.rng.gen_range(0..SECONDS_PER_HOUR);
                let order_id = self.next_order_id;
                self.next_order_id += 1;
                trips.push(Trip {
                    order_id,
                    user_id: self.rng.gen_range(0..cfg.user_count as u64),
                    bike_id: self.rng.gen_range(0..cfg.fleet_size as u64),
                    bike_type: 1,
                    start_time: Timestamp(Timestamp::from_day_hour(day, hour).seconds() + second),
                    start,
                    end,
                });
            }
        }
        // Surge arrivals from active special events.
        let active: Vec<SpecialEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.active_at(day, hour))
            .collect();
        for event in active {
            let n = poisson(&mut self.rng, event.arrivals_per_hour);
            for _ in 0..n {
                let end = self.scatter_around(event.location, event.scatter);
                let origin_idx = self.sample_origin_poi();
                let origin_poi = self.city.pois()[origin_idx];
                let start = self.scatter_around(origin_poi.location, origin_poi.scatter);
                let second = self.rng.gen_range(0..SECONDS_PER_HOUR);
                let order_id = self.next_order_id;
                self.next_order_id += 1;
                trips.push(Trip {
                    order_id,
                    user_id: self.rng.gen_range(0..cfg.user_count as u64),
                    bike_id: self.rng.gen_range(0..cfg.fleet_size as u64),
                    bike_type: 1,
                    start_time: Timestamp(Timestamp::from_day_hour(day, hour).seconds() + second),
                    start,
                    end,
                });
            }
        }
        trips.sort_by_key(|t| t.start_time);
        trips
    }

    /// Generates `n_days` full days starting at `start_day`, sorted by
    /// start time.
    pub fn generate_days(&mut self, start_day: u64, n_days: u64) -> Vec<Trip> {
        let mut all = Vec::new();
        for day in start_day..start_day + n_days {
            for hour in 0..24 {
                all.extend(self.generate_hour(day, hour));
            }
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;

    fn small_city() -> SyntheticCity {
        SyntheticCity::generate(&CityConfig {
            trips_per_day: 500.0,
            ..CityConfig::default()
        })
    }

    #[test]
    fn generator_is_deterministic() {
        let city = small_city();
        let a = TripGenerator::new(&city, 1).generate_days(0, 1);
        let b = TripGenerator::new(&city, 1).generate_days(0, 1);
        assert_eq!(a, b);
        let c = TripGenerator::new(&city, 2).generate_days(0, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn daily_volume_near_configured() {
        let city = small_city();
        let trips = TripGenerator::new(&city, 3).generate_days(0, 3);
        let per_day = trips.len() as f64 / 3.0;
        assert!(
            (per_day - 500.0).abs() < 75.0,
            "daily volume {per_day} too far from 500"
        );
    }

    #[test]
    fn trips_inside_field_and_sorted() {
        let city = small_city();
        let trips = TripGenerator::new(&city, 4).generate_days(0, 1);
        for t in &trips {
            assert!(city.bbox().contains(t.start));
            assert!(city.bbox().contains(t.end));
        }
        assert!(trips.windows(2).all(|w| w[0].start_time <= w[1].start_time));
        // Order ids unique.
        let mut ids: Vec<u64> = trips.iter().map(|t| t.order_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), trips.len());
    }

    #[test]
    fn geohash_roundtrip_within_cell() {
        let city = small_city();
        let trips = TripGenerator::new(&city, 5).generate_days(0, 1);
        let t = &trips[0];
        let h = t.end_geohash().unwrap();
        assert_eq!(h.len(), GEOHASH_PRECISION);
        let (latlon, err) = geohash::decode(&h).unwrap();
        let decoded = city_datum().project(latlon);
        // Cell half-diagonal at 7 chars is < 120 m.
        let _ = err;
        assert!(t.end.distance(decoded) < 120.0);
    }

    #[test]
    fn weekday_rush_hour_busier_than_night() {
        let city = small_city();
        let mut g = TripGenerator::new(&city, 6);
        let mut rush = 0usize;
        let mut night = 0usize;
        // Days 0-2 are Wed-Fri.
        for day in 0..3 {
            rush += g.generate_hour(day, 8).len();
            night += g.generate_hour(day, 3).len();
        }
        assert!(rush > 5 * night.max(1), "rush {rush} vs night {night}");
    }

    #[test]
    fn weekend_distribution_differs_from_weekday() {
        // Destination mass at office POIs should collapse on weekends.
        let city = small_city();
        let mut g = TripGenerator::new(&city, 7);
        let office_mass = |trips: &[Trip]| -> f64 {
            let office_pois: Vec<Point> = city
                .pois()
                .iter()
                .filter(|p| p.category == crate::PoiCategory::Office)
                .map(|p| p.location)
                .collect();
            let near = trips
                .iter()
                .filter(|t| office_pois.iter().any(|&o| t.end.distance(o) < 250.0))
                .count();
            near as f64 / trips.len().max(1) as f64
        };
        let weekday = g.generate_days(1, 1); // Thu
        let weekend = g.generate_days(3, 1); // Sat
        assert!(
            office_mass(&weekday) > 1.5 * office_mass(&weekend),
            "weekday office mass {} vs weekend {}",
            office_mass(&weekday),
            office_mass(&weekend)
        );
    }

    #[test]
    fn special_event_adds_surge_at_venue() {
        let city = small_city();
        let venue = Point::new(2_900.0, 2_900.0); // a quiet corner
        let event = SpecialEvent {
            location: venue,
            day: 1,
            start_hour: 19,
            duration_h: 3,
            arrivals_per_hour: 60.0,
            scatter: 80.0,
        };
        let near_venue = |trips: &[Trip]| {
            trips
                .iter()
                .filter(|t| t.end.distance(venue) < 300.0)
                .count()
        };
        let mut plain = TripGenerator::new(&city, 70);
        let baseline = near_venue(&plain.generate_days(1, 1));
        let mut surged = TripGenerator::new(&city, 70);
        surged.add_event(event);
        let with_event = surged.generate_days(1, 1);
        let surge = near_venue(&with_event);
        assert!(
            surge >= baseline + 100,
            "venue arrivals {surge} vs baseline {baseline}"
        );
        // The surge lands inside the event window.
        let in_window = with_event
            .iter()
            .filter(|t| {
                t.end.distance(venue) < 300.0 && (19..22).contains(&t.start_time.hour_of_day())
            })
            .count();
        assert!(in_window >= 100, "in-window surge {in_window}");
        // Other days are untouched.
        let mut surged2 = TripGenerator::new(&city, 70);
        surged2.add_event(event);
        let other_day = surged2.generate_days(2, 1);
        assert!(near_venue(&other_day) < baseline + 20);
        assert_eq!(surged.events().len(), 1);
    }

    #[test]
    fn special_event_activity_window() {
        let e = SpecialEvent {
            location: Point::ORIGIN,
            day: 3,
            start_hour: 20,
            duration_h: 2,
            arrivals_per_hour: 10.0,
            scatter: 50.0,
        };
        assert!(e.active_at(3, 20));
        assert!(e.active_at(3, 21));
        assert!(!e.active_at(3, 22));
        assert!(!e.active_at(3, 19));
        assert!(!e.active_at(4, 20));
    }

    #[test]
    fn destinations_extracts_end_points_in_order() {
        let city = small_city();
        let trips = TripGenerator::new(&city, 9).generate_days(0, 1);
        let dests = destinations(&trips);
        assert_eq!(dests.len(), trips.len());
        assert!(dests.iter().zip(&trips).all(|(d, t)| *d == t.end));
    }

    #[test]
    fn trip_length_positive() {
        let city = small_city();
        let trips = TripGenerator::new(&city, 8).generate_days(0, 1);
        let mean_len: f64 = trips.iter().map(Trip::length).sum::<f64>() / trips.len() as f64;
        // Origins and destinations are different POIs in a 3 km field.
        assert!(mean_len > 300.0, "mean trip length {mean_len}");
    }
}
