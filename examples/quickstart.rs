//! Quickstart: the E-Sharing pipeline in ~60 lines.
//!
//! Builds a synthetic city, bootstraps the offline landmarks from three
//! days of history, streams a live day of trip requests through the
//! deviation-penalty online algorithm, and runs one incentivized
//! maintenance period.
//!
//! Run with: `cargo run --release --example quickstart`

use e_sharing::core::{ESharing, SystemConfig};
use e_sharing::dataset::{CityConfig, Fleet, SyntheticCity, TripGenerator};
use e_sharing::geo::Point;

fn main() {
    // 1. A city with POI-anchored demand and a fleet of e-bikes.
    let city_config = CityConfig {
        trips_per_day: 1_200.0,
        fleet_size: 600,
        ..CityConfig::default()
    };
    let city = SyntheticCity::generate(&city_config);
    let mut generator = TripGenerator::new(&city, 42);
    let system_config = SystemConfig::default();
    let mut fleet = Fleet::new(600, city.bbox(), system_config.energy, 42);

    // 2. Bootstrap: three days of history feed the offline 1.61-factor
    //    placement, producing the landmark parking locations.
    let history = generator.generate_days(0, 3);
    let destinations: Vec<Point> = history.iter().map(|t| t.end).collect();
    fleet.replay(history.iter());
    let mut system = ESharing::new(system_config);
    let landmarks = system.bootstrap(&destinations).to_vec();
    println!(
        "bootstrapped {} landmark stations from {} historical trips",
        landmarks.len(),
        destinations.len()
    );

    // 3. Live day: every trip request is decided online, guided by the
    //    offline solution through the deviation penalty.
    let live = generator.generate_days(3, 1);
    let mut opened = 0usize;
    for trip in &live {
        let decision = system.handle_request(trip.end).expect("bootstrapped");
        if decision.opened() {
            opened += 1;
        }
        fleet.apply_trip(trip);
    }
    fleet.apply_idle_day();
    println!(
        "served {} live requests; {} new stations were established online",
        live.len(),
        opened
    );
    println!(
        "average walk to assigned parking: {:.0} m",
        system.metrics().avg_walk_m()
    );

    // 4. Evening maintenance: incentives aggregate the low-battery bikes,
    //    the operator tours the remaining demand sites.
    let low_before = fleet.low_battery_bikes().len();
    let report = system.maintenance_period(&mut fleet).expect("bootstrapped");
    println!(
        "maintenance: {} low bikes -> {} sites visited, {} bikes relocated by users \
         for ${:.0}, tour cost ${:.0}",
        low_before,
        report.shift.visited.len(),
        report.incentives.relocated,
        report.incentives.incentives_paid,
        report.shift.tour_cost
    );
    println!("\nfinal metrics:\n{}", system.metrics());
}
