//! Engine ↔ single-worker server equivalence and overload behavior.
//!
//! The contract that makes the sharded engine trustworthy:
//!
//! 1. with one shard and the same seed it is the `RequestServer`,
//!    decision for decision, bit for bit;
//! 2. with many shards the fleet aggregates are exactly the sums of the
//!    per-shard parts;
//! 3. an overloaded shard sheds instead of blocking, and the shed count
//!    surfaces in the aggregated snapshot.

use esharing_core::server::RequestServer;
use esharing_core::{ESharing, SystemConfig};
use esharing_engine::{DecisionPath, Engine, EngineConfig, EngineDecision, Partition};
use esharing_geo::Point;
use esharing_placement::online::Decision;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

/// Serves `stream` through a fresh single-worker `RequestServer`.
fn server_decisions(
    history: &[Point],
    stream: &[Point],
    cfg: &SystemConfig,
) -> (Vec<Decision>, ESharing) {
    let mut system = ESharing::new(cfg.clone());
    system.bootstrap(history);
    let server = RequestServer::start(system);
    let handle = server.handle();
    let decisions = stream
        .iter()
        .map(|&p| handle.submit(p).expect("server is running"))
        .collect();
    (decisions, server.shutdown())
}

/// Serves `stream` through a one-shard engine with `partition` geometry
/// over the given serving substrate.
fn engine_decisions(
    history: &[Point],
    stream: &[Point],
    cfg: &SystemConfig,
    partition: Partition,
    path: DecisionPath,
) -> (Vec<Decision>, Vec<ESharing>) {
    let engine = Engine::start(
        history,
        EngineConfig {
            shards: 1,
            partition,
            decision_path: path,
            system: cfg.clone(),
            ..EngineConfig::default()
        },
    );
    let decisions = stream
        .iter()
        .map(|&p| match engine.submit(p).expect("engine is running") {
            EngineDecision::Served { shard, decision } => {
                assert_eq!(shard, 0);
                decision
            }
            EngineDecision::Degraded { .. } => {
                panic!("sequential submits must never overflow the pending queue")
            }
        })
        .collect();
    (decisions, engine.shutdown())
}

#[test]
fn one_shard_engine_is_bit_identical_to_request_server() {
    let history = uniform_points(500, 3_000.0, 11);
    let stream = uniform_points(2_000, 3_000.0, 12);
    let cfg = SystemConfig::default();
    let (expected, server_system) = server_decisions(&history, &stream, &cfg);
    // Both zone geometries, on both serving substrates: the sync-read
    // fast path must replay the mailbox path — and the single-worker
    // server — decision for decision, bit for bit.
    for partition in [Partition::UniformGrid, Partition::LandmarkVoronoi] {
        for path in [DecisionPath::SyncShared, DecisionPath::Mailbox] {
            let (got, mut systems) = engine_decisions(&history, &stream, &cfg, partition, path);
            // Exact equality — decisions carry f64 stations and walking
            // costs, and every one of the 2 000 must match bit for bit.
            assert_eq!(
                got, expected,
                "decision divergence under {partition:?}/{path:?}"
            );
            assert_eq!(systems.len(), 1);
            let system = systems.pop().expect("one shard");
            assert_eq!(
                system.metrics().placement,
                server_system.metrics().placement
            );
            assert_eq!(
                system.metrics().requests_served,
                server_system.metrics().requests_served
            );
            assert_eq!(system.stations(), server_system.stations());
        }
    }
}

#[test]
fn batched_submit_is_bit_identical_to_sequential() {
    let history = uniform_points(500, 3_000.0, 51);
    let stream = uniform_points(2_000, 3_000.0, 52);
    let cfg = EngineConfig {
        shards: 4,
        partition: Partition::UniformGrid,
        system: SystemConfig::default(),
        ..EngineConfig::default()
    };
    // Sequential one-at-a-time submits are the reference.
    let sequential = Engine::start(&history, cfg.clone());
    let expected: Vec<EngineDecision> = stream
        .iter()
        .map(|&p| sequential.submit(p).expect("engine is running"))
        .collect();
    // One big batch through an identically-configured fresh engine.
    let engine = Engine::start(&history, cfg.clone());
    let got = engine.submit_batch(&stream).expect("engine is running");
    assert_eq!(got, expected, "whole-stream batch diverged");
    drop(engine);
    // Mixed traffic: uneven batch chunks interleaved with single submits
    // must replay the exact same decision sequence.
    let engine = Engine::start(&history, cfg);
    let mut got = Vec::with_capacity(stream.len());
    let mut rest = &stream[..];
    let mut chunk = 1usize;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        if chunk.is_multiple_of(3) {
            for &p in &rest[..take] {
                got.push(engine.submit(p).expect("engine is running"));
            }
        } else {
            got.extend(
                engine
                    .submit_batch(&rest[..take])
                    .expect("engine is running"),
            );
        }
        rest = &rest[take..];
        chunk = chunk % 7 + 1;
    }
    assert_eq!(got, expected, "chunked batch traffic diverged");
    // Latency telemetry covered every served request.
    let snap = engine.snapshot().expect("engine is running");
    assert_eq!(snap.fleet.latency.count(), stream.len() as u64);
    assert!(snap.fleet.latency.p999_ns() >= snap.fleet.latency.p50_ns());
    assert!(engine
        .submit_batch(&[])
        .expect("engine is running")
        .is_empty());
}

#[test]
fn fleet_snapshot_is_the_sum_of_its_shards() {
    let history = uniform_points(600, 2_000.0, 21);
    let stream = uniform_points(500, 2_000.0, 22);
    let engine = Engine::start(
        &history,
        EngineConfig {
            shards: 4,
            partition: Partition::UniformGrid,
            system: SystemConfig::default(),
            ..EngineConfig::default()
        },
    );
    for &p in &stream {
        let d = engine.submit(p).expect("engine is running");
        assert!(!d.degraded());
    }
    let snap = engine.snapshot().expect("engine is running");
    assert_eq!(snap.fleet.requests_served, 500);
    assert_eq!(
        snap.shards
            .iter()
            .map(|s| s.server.requests_served)
            .sum::<u64>(),
        500
    );
    assert_eq!(
        snap.fleet.stations.len(),
        snap.shards.iter().map(|s| s.server.stations.len()).sum()
    );
    let walking: f64 = snap.shards.iter().map(|s| s.server.placement.walking).sum();
    assert_eq!(snap.fleet.placement.walking, walking);
    assert_eq!(snap.metrics, snap.shards.iter().map(|s| s.metrics).sum());
    assert_eq!(snap.shed_total, 0);
    // The shutdown systems tell the same story as the snapshot.
    let systems = engine.shutdown();
    let served: u64 = systems.iter().map(|s| s.metrics().requests_served).sum();
    assert_eq!(served, 500);
}

#[test]
fn hot_shard_sheds_instead_of_blocking() {
    let history = uniform_points(600, 2_000.0, 31);
    let engine = Engine::start(
        &history,
        EngineConfig {
            shards: 4,
            partition: Partition::UniformGrid,
            queue_capacity: 2,
            // Slow downstream: 2 ms of emulated fetch latency per
            // request, so a burst must overflow the 2-deep ring.
            service_delay: Duration::from_millis(2),
            system: SystemConfig::default(),
            ..EngineConfig::default()
        },
    );
    let hot = Point::new(100.0, 100.0);
    let hot_shard = engine.map().shard_of(hot);
    let mut accepted = 0u64;
    let mut shed = 0u64;
    for _ in 0..200 {
        match engine.submit_nowait(hot).expect("engine is running") {
            esharing_engine::Admission::Accepted { shard } => {
                assert_eq!(shard, hot_shard);
                accepted += 1;
            }
            esharing_engine::Admission::Shed { shard } => {
                assert_eq!(shard, hot_shard);
                shed += 1;
            }
        }
    }
    assert!(shed > 0, "200-deep burst into a 2-deep queue must shed");
    assert!(accepted > 0, "the queue accepts up to its bound");
    assert_eq!(engine.shed(hot_shard), shed);
    assert_eq!(engine.shed_total(), shed);
    // Top the queue back up (the drain worker frees slots while we
    // assert), then check that a synchronous submit against the full hot
    // shard degrades immediately instead of blocking the caller.
    loop {
        match engine.submit_nowait(hot).expect("engine is running") {
            esharing_engine::Admission::Accepted { .. } => accepted += 1,
            esharing_engine::Admission::Shed { .. } => {
                shed += 1;
                break;
            }
        }
    }
    let d = engine.submit(hot).expect("engine is running");
    match d {
        EngineDecision::Degraded { shard, fallback } => {
            assert_eq!(shard, hot_shard);
            assert!(fallback.x.is_finite() && fallback.y.is_finite());
        }
        EngineDecision::Served { .. } => {
            panic!("hot shard has a full queue; submit must shed")
        }
    }
    // Other zones keep serving while the hot one drains.
    let cold = Point::new(1_900.0, 1_900.0);
    assert_ne!(engine.map().shard_of(cold), hot_shard);
    assert!(!engine.submit(cold).expect("engine is running").degraded());
    // The snapshot probe queues behind the backlog (backpressure, not
    // deadlock) and reports the shed count in the aggregate.
    let snap = engine.snapshot().expect("engine is running");
    assert_eq!(snap.shed_total, shed + 1);
    assert_eq!(snap.metrics.requests_served, accepted + 1);
    let _ = engine.shutdown();
}

#[test]
fn concurrent_clients_lose_no_mutations() {
    // Many client threads hammer the fast path while a reader interleaves
    // lock-free decision-view reads and full snapshots. Every submit is a
    // state mutation, so the accounting at the end proves no mutation was
    // lost or double-applied across seqlock publications and epoch flips.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 500;
    let history = uniform_points(600, 2_000.0, 61);
    let streams: Vec<Vec<Point>> = (0..CLIENTS)
        .map(|c| uniform_points(PER_CLIENT, 2_000.0, 62 + c as u64))
        .collect();
    let engine = Engine::start(
        &history,
        EngineConfig {
            shards: 2,
            partition: Partition::UniformGrid,
            system: SystemConfig::default(),
            ..EngineConfig::default()
        },
    );
    let total = (CLIENTS * PER_CLIENT) as u64;
    std::thread::scope(|s| {
        let engine = &engine;
        for stream in &streams {
            s.spawn(move || {
                // submit() blocks per call, so each client's requests hit
                // its shard in this exact per-client order.
                for &p in stream {
                    let d = engine.submit(p).expect("engine is running");
                    assert!(!d.degraded(), "default queue depth must not shed");
                }
            });
        }
        s.spawn(|| {
            // Reads must never block the writers or observe torn state:
            // published views are internally consistent and epochs only
            // move forward.
            let mut last_epoch = vec![0u64; engine.shard_count()];
            for _ in 0..50 {
                for (shard, last) in last_epoch.iter_mut().enumerate() {
                    if let Some(v) = engine.decision_view(shard) {
                        assert!(v.decision_cost.is_finite() && v.decision_cost >= 0.0);
                        assert!(v.opened_online <= v.stations);
                        assert!(v.epoch >= *last, "epoch went backwards");
                        *last = v.epoch;
                    }
                }
                let snap = engine.snapshot().expect("engine is running");
                assert!(snap.metrics.requests_served <= total);
                std::thread::yield_now();
            }
        });
    });
    let snap = engine.snapshot().expect("engine is running");
    assert_eq!(
        snap.metrics.requests_served, total,
        "a lost or double-applied mutation would skew the served count"
    );
    assert_eq!(snap.fleet.latency.count(), total);
    assert_eq!(snap.shed_total, 0);
    // The final published views agree with the authoritative seat state.
    for shard in 0..engine.shard_count() {
        let v = engine.decision_view(shard).expect("every shard served");
        assert_eq!(v.stations, snap.shards[shard].server.stations.len());
    }
    let systems = engine.shutdown();
    let served: u64 = systems.iter().map(|s| s.metrics().requests_served).sum();
    assert_eq!(served, total);
}

#[test]
fn realized_shard_count_follows_landmarks() {
    // A tiny city yields few landmarks; a Voronoi engine asked for many
    // shards realizes only as many zones as it has anchors.
    let history = uniform_points(80, 400.0, 41);
    let engine = Engine::start(
        &history,
        EngineConfig {
            shards: 64,
            partition: Partition::LandmarkVoronoi,
            system: SystemConfig::default(),
            ..EngineConfig::default()
        },
    );
    assert!(engine.shard_count() <= 64);
    assert!(engine.shard_count() >= 1);
    let d = engine.submit(Point::new(200.0, 200.0)).unwrap();
    assert!(!d.degraded());
}
