//! End-to-end integration tests of the full two-tier pipeline.

use e_sharing::core::{ESharing, Simulation, SystemConfig};
use e_sharing::dataset::{CityConfig, Fleet, SyntheticCity, TripGenerator};
use e_sharing::geo::Point;

fn small_city() -> CityConfig {
    CityConfig {
        trips_per_day: 700.0,
        fleet_size: 400,
        ..CityConfig::default()
    }
}

#[test]
fn simulation_runs_a_week() {
    let mut sim = Simulation::new(&small_city(), SystemConfig::default(), 3);
    sim.bootstrap_days(2);
    let mut total_trips = 0usize;
    for _ in 0..5 {
        let day = sim.run_day();
        total_trips += day.trips;
        assert!(day.stations >= sim.system().landmarks().len());
        assert!(day.low_after_maintenance <= day.low_before_maintenance);
    }
    let report = sim.report();
    assert_eq!(report.metrics.requests_served as usize, total_trips);
    assert_eq!(report.days.len(), 5);
    assert!(report.metrics.placement.total() > 0.0);
    assert!(report.metrics.maintenance_periods == 5);
    // The fleet must not collapse: maintenance keeps most bikes charged.
    let low = sim.fleet().low_battery_bikes().len();
    assert!(
        low < sim.fleet().len() / 2,
        "{low} of {} bikes low after a maintained week",
        sim.fleet().len()
    );
}

#[test]
fn metrics_accumulate_across_days() {
    let mut sim = Simulation::new(&small_city(), SystemConfig::default(), 4);
    sim.bootstrap_days(1);
    let day1 = sim.run_day();
    let m1 = *sim.system().metrics();
    let day2 = sim.run_day();
    let m2 = *sim.system().metrics();
    assert_eq!(m2.requests_served - m1.requests_served, day2.trips as u64);
    assert!(m2.placement.walking >= m1.placement.walking);
    assert!(m2.maintenance_cost > m1.maintenance_cost);
    assert!(day1.trips > 0 && day2.trips > 0);
}

#[test]
fn weekday_demand_exceeds_night_in_stream() {
    // The synthetic workload drives the pipeline with realistic diurnal
    // structure; sanity-check it end to end through the generator.
    let city = SyntheticCity::generate(&small_city());
    let mut generator = TripGenerator::new(&city, 5);
    let trips = generator.generate_days(0, 1); // Wednesday
    let morning = trips
        .iter()
        .filter(|t| (7..10).contains(&t.start_time.hour_of_day()))
        .count();
    let night = trips
        .iter()
        .filter(|t| (2..5).contains(&t.start_time.hour_of_day()))
        .count();
    assert!(morning > 3 * night.max(1));
}

#[test]
fn orchestrator_bootstrap_is_idempotent_per_window() {
    // Bootstrapping twice with the same data yields the same landmarks.
    let history: Vec<Point> = (0..300)
        .map(|i| Point::new((i % 17) as f64 * 150.0, (i % 23) as f64 * 120.0))
        .collect();
    let mut a = ESharing::new(SystemConfig::default());
    let mut b = ESharing::new(SystemConfig::default());
    assert_eq!(a.bootstrap(&history), b.bootstrap(&history));
}

#[test]
fn alpha_zero_pays_no_incentives() {
    let cfg = SystemConfig {
        alpha: 0.0,
        ..SystemConfig::default()
    };
    let city = SyntheticCity::generate(&small_city());
    let mut generator = TripGenerator::new(&city, 6);
    let trips = generator.generate_days(0, 2);
    let mut system = ESharing::new(cfg);
    system.bootstrap(&trips.iter().map(|t| t.end).collect::<Vec<_>>());
    let mut fleet = Fleet::new(400, city.bbox(), system.config().energy, 6);
    fleet.replay(trips.iter());
    let report = system.maintenance_period(&mut fleet).unwrap();
    assert_eq!(report.incentives.incentives_paid, 0.0);
    assert_eq!(report.incentives.relocated, 0);
    assert_eq!(system.metrics().incentives_paid, 0.0);
}

#[test]
fn station_energy_accounts_every_low_bike() {
    let city = SyntheticCity::generate(&small_city());
    let mut generator = TripGenerator::new(&city, 7);
    let trips = generator.generate_days(0, 2);
    let mut system = ESharing::new(SystemConfig::default());
    system.bootstrap(&trips.iter().map(|t| t.end).collect::<Vec<_>>());
    let mut fleet = Fleet::new(400, city.bbox(), system.config().energy, 7);
    fleet.replay(trips.iter());
    let stations = system.station_energy(&fleet).unwrap();
    let attributed: usize = stations.iter().map(|s| s.low_bikes).sum();
    assert_eq!(attributed, fleet.low_battery_bikes().len());
    assert_eq!(stations.len(), system.stations().len());
}
