//! Table IV — Similarity (%) between the request distributions of
//! different days of the week, by Peacock's 2-D KS test.
//!
//! The paper compares the same hour across different days, averages over
//! the 24 hours, and finds a block structure: weekdays are mutually
//! similar (≳ 90%), weekends are mutually similar, and the weekday–weekend
//! similarity drops to ~60–80%.

use esharing_bench::Table;
use esharing_dataset::{arrivals, CityConfig, SyntheticCity, Timestamp, TripGenerator};
use esharing_geo::Point;
use esharing_stats::ks2d::similarity_percent;
use esharing_stats::RunningStats;

/// Cap per-hour samples so the O(n²) statistic stays fast while keeping
/// the estimate stable.
const SAMPLE_CAP: usize = 250;

fn subsample(points: Vec<Point>) -> Vec<Point> {
    if points.len() <= SAMPLE_CAP {
        return points;
    }
    let stride = points.len() as f64 / SAMPLE_CAP as f64;
    (0..SAMPLE_CAP)
        .map(|i| points[(i as f64 * stride) as usize])
        .collect()
}

fn main() {
    let city = SyntheticCity::generate(&CityConfig::default());
    let mut gen = TripGenerator::new(&city, 2017);
    let trips = gen.generate_days(0, 28);
    println!(
        "Table IV — Peacock-KS similarity (%) between day-of-week request distributions\n\
         ({} trips over 28 days; same hour compared across days, averaged over 24 h)\n",
        trips.len()
    );

    // Collect destination samples per (weekday, hour) pooled over the two
    // weeks.
    let mut samples: Vec<Vec<Vec<Point>>> = vec![vec![Vec::new(); 24]; 7];
    for day in 0..28u64 {
        let weekday = Timestamp::from_day_hour(day, 0).weekday() as usize;
        for hour in 0..24u64 {
            let from = Timestamp::from_day_hour(day, hour);
            let to = Timestamp(from.seconds() + 3_600);
            samples[weekday][hour as usize]
                .extend(arrivals::destinations_in_window(&trips, from, to));
        }
    }

    let names = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    let mut matrix = [[0.0f64; 7]; 7];
    for a in 0..7 {
        for b in (a + 1)..7 {
            let mut sim = RunningStats::new();
            for (ha, hb) in samples[a].iter().zip(&samples[b]) {
                let sa = subsample(ha.clone());
                let sb = subsample(hb.clone());
                if sa.len() >= 30 && sb.len() >= 30 {
                    sim.push(similarity_percent(&sa, &sb));
                }
            }
            matrix[a][b] = sim.mean();
            matrix[b][a] = sim.mean();
        }
    }

    let mut t = Table::new(
        std::iter::once("".to_string())
            .chain(names.iter().map(|s| s.to_string()))
            .collect(),
    );
    for (a, name) in names.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (b, val) in matrix[a].iter().enumerate() {
            row.push(if a == b {
                "-".into()
            } else {
                format!("{val:.1}")
            });
        }
        t.row(row);
    }
    println!("{t}");

    // Block summaries.
    let mut within_week = RunningStats::new();
    let mut within_weekend = RunningStats::new();
    let mut across = RunningStats::new();
    for (a, row) in matrix.iter().enumerate() {
        for (b, &val) in row.iter().enumerate().skip(a + 1) {
            match (a >= 5, b >= 5) {
                (false, false) => within_week.push(val),
                (true, true) => within_weekend.push(val),
                _ => across.push(val),
            }
        }
    }
    println!(
        "block means — weekday-weekday: {:.1}%  weekend-weekend: {:.1}%  weekday-weekend: {:.1}%",
        within_week.mean(),
        within_weekend.mean(),
        across.mean()
    );
    println!(
        "paper shape: weekday block ~90-97%, Sat-Sun 88.9%, cross block ~58-79% —\n\
         the within-block similarities must clearly exceed the cross-block ones."
    );
}
