//! Activation functions and their derivatives.
//!
//! The LSTM cell uses the logistic sigmoid for its input/forget/output gates
//! and `tanh` for the candidate state and output squashing; both derivatives
//! are expressed in terms of the *activated* value, which is what backprop
//! caches.

/// Logistic sigmoid `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Numerically stable branch for large negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid given the activated value `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_derivative_from_output(s: f64) -> f64 {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
#[inline]
pub fn tanh(x: f64) -> f64 {
    x.tanh()
}

/// Derivative of `tanh` given the activated value `t = tanh(x)`.
#[inline]
pub fn tanh_derivative_from_output(t: f64) -> f64 {
    1.0 - t * t
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Derivative of ReLU (0 at the kink).
#[inline]
pub fn relu_derivative(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Numerically stable softmax over a slice.
///
/// Returns an empty vector for empty input.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_fixed_points() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-1000.0) >= 0.0); // no NaN/underflow panic
    }

    #[test]
    fn sigmoid_symmetric_about_half() {
        for x in [-3.0, -1.0, 0.5, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_derivative_matches_numeric() {
        for x in [-2.0, -0.5, 0.0, 1.0, 3.0] {
            let h = 1e-6;
            let numeric = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            let analytic = sigmoid_derivative_from_output(sigmoid(x));
            assert!((numeric - analytic).abs() < 1e-8);
        }
    }

    #[test]
    fn tanh_derivative_matches_numeric() {
        for x in [-2.0, 0.0, 0.7, 2.5] {
            let h = 1e-6;
            let numeric = (tanh(x + h) - tanh(x - h)) / (2.0 * h);
            let analytic = tanh_derivative_from_output(tanh(x));
            assert!((numeric - analytic).abs() < 1e-8);
        }
    }

    #[test]
    fn relu_behaviour() {
        assert_eq!(relu(-5.0), 0.0);
        assert_eq!(relu(5.0), 5.0);
        assert_eq!(relu_derivative(-1.0), 0.0);
        assert_eq!(relu_derivative(1.0), 1.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let s = softmax(&[1000.0, 1000.0]);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!(softmax(&[]).is_empty());
    }
}
