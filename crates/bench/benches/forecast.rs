//! Criterion benches for the prediction engine: LSTM training/inference
//! and the statistical baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharing_forecast::{Arima, Forecaster, Lstm, LstmConfig, MovingAverage};
use std::hint::black_box;

fn diurnal_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            60.0 + 40.0 * (t as f64 * std::f64::consts::TAU / 24.0).sin()
                + 10.0 * (t as f64 * std::f64::consts::TAU / 12.0).cos()
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let series = diurnal_series(14 * 24);
    let mut group = c.benchmark_group("forecast_fit");
    group.sample_size(10);
    for layers in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("lstm_20_epochs", layers),
            &layers,
            |b, &layers| {
                b.iter(|| {
                    let mut model = Lstm::new(LstmConfig {
                        layers,
                        hidden: 16,
                        back: 12,
                        epochs: 20,
                        ..LstmConfig::default()
                    })
                    .expect("valid");
                    model.fit(&series).expect("fit");
                    black_box(model.last_loss())
                });
            },
        );
    }
    group.bench_function("arima_p10_d1", |b| {
        b.iter(|| {
            let mut model = Arima::new(10, 1).expect("valid");
            model.fit(&series).expect("fit");
            black_box(model.coefficients().map(|(i, _)| i))
        });
    });
    group.finish();
}

fn bench_forecast(c: &mut Criterion) {
    let series = diurnal_series(14 * 24);
    let mut lstm = Lstm::new(LstmConfig {
        layers: 2,
        hidden: 16,
        back: 12,
        epochs: 20,
        ..LstmConfig::default()
    })
    .expect("valid");
    lstm.fit(&series).expect("fit");
    let mut arima = Arima::new(10, 0).expect("valid");
    arima.fit(&series).expect("fit");
    let mut ma = MovingAverage::new(3).expect("valid");
    ma.fit(&series).expect("fit");

    let mut group = c.benchmark_group("forecast_6h");
    group.bench_function("lstm", |b| {
        b.iter(|| black_box(lstm.forecast(&series, 6).expect("forecast")));
    });
    group.bench_function("arima", |b| {
        b.iter(|| black_box(arima.forecast(&series, 6).expect("forecast")));
    });
    group.bench_function("moving_average", |b| {
        b.iter(|| black_box(ma.forecast(&series, 6).expect("forecast")));
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_forecast);
criterion_main!(benches);
