//! Fig. 6 — Examples of solving PLP with the proposed deviation-penalty
//! algorithm: (a) in-distribution stream (paper: 7 parking incl. 2 opened
//! online, total 50 542 — a 23% reduction from Meyerson), (b) arrivals
//! from an unknown (shifted) distribution introduce additional online
//! stations.

use esharing_bench::table::{f1, Table};
use esharing_geo::Point;
use esharing_placement::offline::jms_greedy;
use esharing_placement::online::{DeviationConfig, DeviationPenalty, Meyerson, OnlinePlacement};
use esharing_placement::PlpInstance;
use esharing_stats::RunningStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIELD: f64 = 1_000.0;
const SPACE_COST: f64 = 5_000.0;

fn uniform(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn main() {
    println!(
        "Fig. 6 — deviation-penalty online algorithm (100 arrivals, 1km^2, f = {SPACE_COST} m)\n"
    );

    // (a) In-distribution stream, averaged over 30 draws.
    let mut es_total = RunningStats::new();
    let mut es_stations = RunningStats::new();
    let mut es_online = RunningStats::new();
    let mut mey_total = RunningStats::new();
    for seed in 0..30u64 {
        let history = uniform(100, FIELD, 3_000 + seed);
        let instance = PlpInstance::with_uniform_cost(history.clone(), SPACE_COST);
        let landmarks = jms_greedy(&instance).facility_points(&instance);
        let stream = uniform(100, FIELD, 6_000 + seed);
        let mut es = DeviationPenalty::new(
            landmarks,
            history,
            DeviationConfig {
                space_cost: SPACE_COST,
                seed,
                ..DeviationConfig::default()
            },
        );
        let c = es.run(stream.iter().copied());
        es_total.push(c.total());
        es_stations.push(es.stations().len() as f64);
        es_online.push(es.opened_online() as f64);
        let mut mey = Meyerson::new(SPACE_COST, seed);
        mey_total.push(mey.run(stream.iter().copied()).total());
    }
    let mut t = Table::new(vec!["metric".into(), "mean".into(), "paper".into()]);
    t.row(vec![
        "(a) parking opened (total)".into(),
        f1(es_stations.mean()),
        "7".into(),
    ]);
    t.row(vec![
        "(a) of which online".into(),
        f1(es_online.mean()),
        "2".into(),
    ]);
    t.row(vec![
        "(a) total cost".into(),
        f1(es_total.mean()),
        "50542".into(),
    ]);
    t.row(vec![
        "(a) reduction vs Meyerson (%)".into(),
        f1(100.0 * (mey_total.mean() - es_total.mean()) / mey_total.mean()),
        "23".into(),
    ]);
    println!("{t}");

    // (b) Arrivals from an unknown distribution: demand shifts to a region
    // no landmark covers.
    let mut extra_online = RunningStats::new();
    let mut shifted_covered = RunningStats::new();
    for seed in 0..30u64 {
        let history = uniform(150, FIELD, 9_000 + seed);
        let instance = PlpInstance::with_uniform_cost(history.clone(), SPACE_COST);
        let landmarks = jms_greedy(&instance).facility_points(&instance);
        let mut es = DeviationPenalty::new(
            landmarks,
            history,
            DeviationConfig {
                space_cost: SPACE_COST,
                seed,
                ..DeviationConfig::default()
            },
        );
        // In-distribution warm-up, then the shift.
        for p in uniform(100, FIELD, 12_000 + seed) {
            es.handle(p);
        }
        let before = es.opened_online();
        let shifted: Vec<Point> = uniform(150, 400.0, 15_000 + seed)
            .into_iter()
            .map(|p| p + Point::new(2_200.0, 2_200.0))
            .collect();
        for p in &shifted {
            es.handle(*p);
        }
        extra_online.push((es.opened_online() - before) as f64);
        let covered = es
            .stations()
            .iter()
            .filter(|s| s.x > 2_000.0 && s.y > 2_000.0)
            .count();
        shifted_covered.push(covered as f64);
    }
    println!("(b) after a demand shift to an uncovered region:");
    println!(
        "  extra online stations: {:.1} mean (paper example: 3)",
        extra_online.mean()
    );
    println!(
        "  stations inside the shifted region: {:.1} mean (paper: >0, \"handles new arrivals from unknown distribution\")",
        shifted_covered.mean()
    );
}
