//! Peacock's two-dimensional two-sample Kolmogorov–Smirnov test.
//!
//! In one dimension the KS statistic compares cumulative distributions; in
//! two dimensions there is no unique cumulative ordering, so Peacock (1983)
//! enumerates all four quadrant orientations around candidate split points
//! `(X, Y)` — `(x < X, y < Y)`, `(x < X, y > Y)`, `(x > X, y < Y)`,
//! `(x > X, y > Y)` — and takes the supremum of the empirical probability
//! difference across them. The paper (§III-D) runs this test between the
//! historical destination distribution `H` and the live stream `G`, and maps
//! the resulting similarity `100(1 − D)%` to a penalty-function type
//! (§V-C): above 95% → Type II, 80–95% → Type III, below 80% → Type I.
//!
//! Two evaluation strategies are provided:
//!
//! * [`peacock_statistic`] — Peacock's original proposal evaluates the
//!   quadrant difference on the grid of all `(x_i, y_j)` coordinate pairs
//!   from the pooled sample (`O(n²)` split points × `O(n)` counting =
//!   `O(n³)`, matching the complexity the paper reports);
//! * [`ff_statistic`] — the Fasano–Franceschini (1987) variant that only
//!   visits the `O(n)` split points located *at* sample points, which is a
//!   tight, widely used approximation running in `O(n²)`.

use esharing_geo::Point;

/// Outcome of a two-sample Peacock test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ks2dResult {
    /// The KS statistic `D = sup |H − G|` over quadrants.
    pub statistic: f64,
    /// Similarity `100 (1 − D)` in percent, the paper's Table IV metric.
    pub similarity_percent: f64,
    /// Approximate significance of `D` (probability of observing a larger
    /// `D` under the null hypothesis), using Peacock's `Z∞` asymptotic.
    pub p_value: f64,
    /// Effective sample size `n1 n2 / (n1 + n2)`.
    pub effective_n: f64,
}

/// Counts the fraction of `sample` in each of the four open quadrants
/// around `(x, y)`.
fn quadrant_fractions(sample: &[Point], x: f64, y: f64) -> [f64; 4] {
    let n = sample.len() as f64;
    let (mut q1, mut q2, mut q3, mut q4) = (0u32, 0u32, 0u32, 0u32);
    for p in sample {
        if p.x > x {
            if p.y > y {
                q1 += 1;
            } else {
                q4 += 1;
            }
        } else if p.y > y {
            q2 += 1;
        } else {
            q3 += 1;
        }
    }
    [
        f64::from(q1) / n,
        f64::from(q2) / n,
        f64::from(q3) / n,
        f64::from(q4) / n,
    ]
}

fn max_quadrant_diff(a: &[Point], b: &[Point], x: f64, y: f64) -> f64 {
    let fa = quadrant_fractions(a, x, y);
    let fb = quadrant_fractions(b, x, y);
    fa.iter()
        .zip(fb.iter())
        .map(|(u, v)| (u - v).abs())
        .fold(0.0, f64::max)
}

/// Peacock's exact 2-D KS statistic over all `(x_i, y_j)` split pairs from
/// the pooled sample.
///
/// Runs in `O(n³)` for `n` pooled points — use [`ff_statistic`] for large
/// samples.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn peacock_statistic(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let xs: Vec<f64> = a.iter().chain(b.iter()).map(|p| p.x).collect();
    let ys: Vec<f64> = a.iter().chain(b.iter()).map(|p| p.y).collect();
    let mut d: f64 = 0.0;
    for &x in &xs {
        for &y in &ys {
            d = d.max(max_quadrant_diff(a, b, x, y));
        }
    }
    d
}

/// Fasano–Franceschini approximation: split points restricted to the pooled
/// sample points themselves (`O(n²)`).
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ff_statistic(a: &[Point], b: &[Point]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let mut d: f64 = 0.0;
    for p in a.iter().chain(b.iter()) {
        d = d.max(max_quadrant_diff(a, b, p.x, p.y));
    }
    d
}

/// Similarity in percent, `100 (1 − D)`, computed with the
/// Fasano–Franceschini statistic. This is the number reported in the
/// paper's Table IV.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn similarity_percent(a: &[Point], b: &[Point]) -> f64 {
    100.0 * (1.0 - ff_statistic(a, b))
}

/// Kolmogorov distribution complementary CDF `Q(λ) = 2 Σ (−1)^{k−1}
/// e^{−2k²λ²}`, used for the asymptotic p-value.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Runs the full two-sample test with the Fasano–Franceschini statistic and
/// Peacock's `Z∞` significance approximation.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn peacock_test(a: &[Point], b: &[Point]) -> Ks2dResult {
    let statistic = ff_statistic(a, b);
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    let effective_n = n1 * n2 / (n1 + n2);
    // Peacock's empirical correction: Z_inf = Z / (1 + (0.53 - 0.9/sqrt(n)) /
    // sqrt(n)) with Z = D sqrt(n); for the 2-D test the effective
    // significance uses Z_inf against the 1-D Kolmogorov distribution.
    let z = statistic * effective_n.sqrt();
    let z_inf = z / (1.0 + (0.53 - 0.9 / effective_n.sqrt()) / effective_n.sqrt());
    let p_value = kolmogorov_q(z_inf);
    Ks2dResult {
        statistic,
        similarity_percent: 100.0 * (1.0 - statistic),
        p_value,
        effective_n,
    }
}

/// Similarity regimes the paper maps to penalty-function types (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityClass {
    /// Above 95% similarity.
    VerySimilar,
    /// Between 80% and 95%.
    Similar,
    /// Below 80%.
    LessSimilar,
}

impl SimilarityClass {
    /// Classifies a similarity percentage using the paper's thresholds.
    ///
    /// Appropriate for large samples (the paper's Table IV uses full days
    /// of trips); for small streaming windows prefer
    /// [`SimilarityClass::from_test`], which accounts for the upward bias
    /// of the KS statistic at small `n`.
    pub fn from_percent(similarity: f64) -> Self {
        if similarity > 95.0 {
            SimilarityClass::VerySimilar
        } else if similarity >= 80.0 {
            SimilarityClass::Similar
        } else {
            SimilarityClass::LessSimilar
        }
    }

    /// Classifies a two-sample test outcome, robust to small samples:
    ///
    /// * not significant (`p > 0.05`) → *very similar* (no evidence of a
    ///   shift),
    /// * significant with a modest effect (`D < 0.5`) → *similar*,
    /// * significant with a large effect (`D ≥ 0.5`) → *less similar*.
    ///
    /// The 0.5 effect-size bar is deliberately high: ordinary diurnal
    /// rotation of demand (morning office mass vs all-day history) shows
    /// `D ≈ 0.2–0.35` and must not count as a regime change, whereas a
    /// genuine relocation of demand to an uncovered region (the paper's
    /// Fig. 6(b) scenario) drives `D` towards 1.
    pub fn from_test(result: &Ks2dResult) -> Self {
        if result.p_value > 0.05 {
            SimilarityClass::VerySimilar
        } else if result.statistic < 0.5 {
            SimilarityClass::Similar
        } else {
            SimilarityClass::LessSimilar
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_sample(rng: &mut StdRng, n: usize, side: f64) -> Vec<Point> {
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    #[test]
    fn identical_samples_give_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = uniform_sample(&mut rng, 60, 100.0);
        assert_eq!(peacock_statistic(&a, &a), 0.0);
        assert_eq!(ff_statistic(&a, &a), 0.0);
        assert_eq!(similarity_percent(&a, &a), 100.0);
    }

    #[test]
    fn disjoint_samples_give_one() {
        let a: Vec<Point> = (0..20).map(|i| Point::new(i as f64, i as f64)).collect();
        let b: Vec<Point> = (0..20)
            .map(|i| Point::new(1000.0 + i as f64, 1000.0 + i as f64))
            .collect();
        assert!(peacock_statistic(&a, &b) > 0.95);
        assert!(ff_statistic(&a, &b) > 0.95);
    }

    #[test]
    fn statistic_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = uniform_sample(&mut rng, 40, 100.0);
        let b = uniform_sample(&mut rng, 30, 120.0);
        assert_eq!(peacock_statistic(&a, &b), peacock_statistic(&b, &a));
        assert_eq!(ff_statistic(&a, &b), ff_statistic(&b, &a));
    }

    #[test]
    fn ff_lower_bounds_peacock() {
        // FF restricts the split points, so its supremum cannot exceed
        // Peacock's.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let a = uniform_sample(&mut rng, 25, 100.0);
            let b = uniform_sample(&mut rng, 25, 100.0);
            let ff = ff_statistic(&a, &b);
            let pk = peacock_statistic(&a, &b);
            assert!(ff <= pk + 1e-12, "ff {ff} > peacock {pk}");
        }
    }

    #[test]
    fn same_distribution_small_statistic() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = uniform_sample(&mut rng, 300, 100.0);
        let b = uniform_sample(&mut rng, 300, 100.0);
        let d = ff_statistic(&a, &b);
        assert!(d < 0.15, "same-distribution D should be small, got {d}");
        let r = peacock_test(&a, &b);
        assert!(r.p_value > 0.05, "p-value {} should not reject", r.p_value);
    }

    #[test]
    fn shifted_distribution_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = uniform_sample(&mut rng, 200, 100.0);
        let b: Vec<Point> = uniform_sample(&mut rng, 200, 100.0)
            .into_iter()
            .map(|p| p + Point::new(60.0, 0.0))
            .collect();
        let r = peacock_test(&a, &b);
        assert!(r.statistic > 0.3, "shift should inflate D, got {}", r.statistic);
        assert!(r.p_value < 0.01, "p-value {} should reject", r.p_value);
    }

    #[test]
    fn statistic_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = uniform_sample(&mut rng, 50, 10.0);
        let b = uniform_sample(&mut rng, 70, 50.0);
        let d = peacock_statistic(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let a = vec![Point::ORIGIN];
        let _ = peacock_statistic(&a, &[]);
    }

    #[test]
    fn kolmogorov_q_monotone() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        let q1 = kolmogorov_q(0.5);
        let q2 = kolmogorov_q(1.0);
        let q3 = kolmogorov_q(2.0);
        assert!(q1 > q2 && q2 > q3);
        assert!(q3 < 0.01);
        // Known value: Q(1.0) ~ 0.27.
        assert!((q2 - 0.27).abs() < 0.01);
    }

    #[test]
    fn similarity_class_thresholds() {
        assert_eq!(
            SimilarityClass::from_percent(97.0),
            SimilarityClass::VerySimilar
        );
        assert_eq!(SimilarityClass::from_percent(95.0), SimilarityClass::Similar);
        assert_eq!(SimilarityClass::from_percent(80.0), SimilarityClass::Similar);
        assert_eq!(
            SimilarityClass::from_percent(79.9),
            SimilarityClass::LessSimilar
        );
        assert_eq!(
            SimilarityClass::from_percent(60.0),
            SimilarityClass::LessSimilar
        );
    }

    #[test]
    fn quadrant_fractions_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = uniform_sample(&mut rng, 101, 100.0);
        let f = quadrant_fractions(&a, 50.0, 50.0);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
