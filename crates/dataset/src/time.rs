//! Dataset time axis.
//!
//! The Mobike dataset spans May 10–24 2017. May 10 2017 was a Wednesday;
//! the synthetic time axis anchors day 0 to a Wednesday so that the
//! weekday/weekend structure matches the original two-week window.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds in an hour.
pub const SECONDS_PER_HOUR: u64 = 3_600;
/// Hours in a day.
pub const HOURS_PER_DAY: u64 = 24;
/// Seconds in a day.
pub const SECONDS_PER_DAY: u64 = SECONDS_PER_HOUR * HOURS_PER_DAY;

/// Day-of-week index of day 0 (Wednesday, matching May 10 2017).
/// Monday = 0 … Sunday = 6.
const DAY0_WEEKDAY: u64 = 2;

/// A timestamp in seconds since the start of the dataset window.
///
/// # Examples
///
/// ```
/// use esharing_dataset::Timestamp;
///
/// let t = Timestamp::from_day_hour(3, 15); // Saturday 3pm
/// assert_eq!(t.day(), 3);
/// assert_eq!(t.hour_of_day(), 15);
/// assert!(t.is_weekend());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Builds a timestamp from a day index and an hour of day.
    ///
    /// # Panics
    ///
    /// Panics when `hour >= 24`.
    pub fn from_day_hour(day: u64, hour: u64) -> Self {
        assert!(hour < HOURS_PER_DAY, "hour {hour} out of range");
        Timestamp(day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR)
    }

    /// Seconds since the dataset epoch.
    #[inline]
    pub fn seconds(self) -> u64 {
        self.0
    }

    /// Day index (0-based).
    #[inline]
    pub fn day(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Hour within the day, `0..24`.
    #[inline]
    pub fn hour_of_day(self) -> u64 {
        (self.0 % SECONDS_PER_DAY) / SECONDS_PER_HOUR
    }

    /// Absolute hour index since the epoch.
    #[inline]
    pub fn hour_index(self) -> u64 {
        self.0 / SECONDS_PER_HOUR
    }

    /// Day of week, Monday = 0 … Sunday = 6.
    #[inline]
    pub fn weekday(self) -> u64 {
        (self.day() + DAY0_WEEKDAY) % 7
    }

    /// Whether the timestamp falls on Saturday or Sunday.
    #[inline]
    pub fn is_weekend(self) -> bool {
        self.weekday() >= 5
    }

    /// English weekday name, e.g. `"Mon"`.
    pub fn weekday_name(self) -> &'static str {
        ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][self.weekday() as usize]
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "day {} ({}) {:02}:{:02}",
            self.day(),
            self.weekday_name(),
            self.hour_of_day(),
            (self.0 % SECONDS_PER_HOUR) / 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day0_is_wednesday() {
        assert_eq!(Timestamp(0).weekday_name(), "Wed");
        assert!(!Timestamp(0).is_weekend());
    }

    #[test]
    fn weekend_detection_matches_may_2017() {
        // May 13-14 2017 (days 3 and 4) were Sat/Sun.
        assert_eq!(Timestamp::from_day_hour(3, 0).weekday_name(), "Sat");
        assert_eq!(Timestamp::from_day_hour(4, 0).weekday_name(), "Sun");
        assert!(Timestamp::from_day_hour(3, 12).is_weekend());
        assert!(Timestamp::from_day_hour(4, 12).is_weekend());
        assert!(!Timestamp::from_day_hour(5, 12).is_weekend()); // Mon May 15
    }

    #[test]
    fn component_extraction() {
        let t = Timestamp::from_day_hour(2, 17);
        assert_eq!(t.day(), 2);
        assert_eq!(t.hour_of_day(), 17);
        assert_eq!(t.hour_index(), 2 * 24 + 17);
        assert_eq!(t.seconds(), (2 * 24 + 17) * 3600);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_hour_panics() {
        let _ = Timestamp::from_day_hour(0, 24);
    }

    #[test]
    fn ordering_by_seconds() {
        assert!(Timestamp::from_day_hour(0, 5) < Timestamp::from_day_hour(0, 6));
        assert!(Timestamp::from_day_hour(1, 0) > Timestamp::from_day_hour(0, 23));
    }

    #[test]
    fn display_contains_weekday() {
        let t = Timestamp::from_day_hour(3, 9);
        assert!(t.to_string().contains("Sat"));
    }
}
