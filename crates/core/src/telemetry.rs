//! Worker-side telemetry glue: one [`WorkerTelemetry`] per serving thread.
//!
//! The serving layers (`server::RequestServer`'s worker, the engine's
//! shard workers) each own one `WorkerTelemetry`: a lock-free
//! [`Registry`] of pre-registered counters/gauges/histograms plus a
//! bounded [`EventJournal`], updated inline on the decision path. Because
//! the worker thread is the single owner, every update is a plain `&mut`
//! store — no atomics, no locks — and cross-thread visibility happens
//! only at probe time, when the worker replies to a probe command with a
//! [`TelemetryProbe`] (a registry snapshot plus the drained journal).
//!
//! Decision *tracing* (per-stage wall-clock breakdown) costs extra clock
//! reads, so it is sampled: [`WorkerTelemetry::should_trace`] returns
//! `true` for every `sample_every`-th request and the worker switches to
//! [`ESharing::handle_request_traced`] — bit-identical decisions, plus a
//! [`HandleTrace`]. Everything else (counters, event draining, gauge
//! stores) is O(1) per request and runs unsampled, so scraped totals are
//! exact.

use crate::{ESharing, SystemMetrics};
use esharing_placement::online::{Decision, HandleTrace, PlacementEvent};
use esharing_placement::penalty::PenaltyType;
use esharing_telemetry::{
    CounterId, Event, EventJournal, EventKind, GaugeId, HistogramId, MergeMode, Registry,
    RegistrySnapshot, TelemetryConfig,
};
use std::time::Instant;

/// The paper's penalty-type number (0 = no penalty), stable across the
/// journal's serialized form.
pub fn penalty_code(p: PenaltyType) -> u8 {
    match p {
        PenaltyType::None => 0,
        PenaltyType::TypeI => 1,
        PenaltyType::TypeII => 2,
        PenaltyType::TypeIII => 3,
    }
}

/// A worker's reply to a telemetry probe: the metric state at probe time
/// plus every journal event recorded since the previous probe.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryProbe {
    /// Counter/gauge/histogram samples (copy; the worker keeps counting).
    pub registry: RegistrySnapshot,
    /// Journal events drained by this probe, oldest first.
    pub events: Vec<Event>,
    /// Events the journal overwrote before any probe drained them.
    pub events_dropped: u64,
}

impl TelemetryProbe {
    /// The probe of a worker running with telemetry disabled.
    pub fn empty() -> Self {
        TelemetryProbe::default()
    }
}

/// Which queueing substrate carried a traced request to its decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePath {
    /// The crossbeam mailbox: the request waited in the shard's channel
    /// until the worker dequeued it (`mailbox_wait` stage).
    Mailbox,
    /// The shared-nothing fast path: the caller acquired the shard seat
    /// and decided inline (`seat_acquire` stage, plus `ring_enqueue` for
    /// the downstream-ring publication).
    Seat,
}

/// Serving-layer timing context attached to a sampled decision: how the
/// request reached the decision math and how long each serving stage took.
/// The in-algorithm stages ride along in [`ServeTrace::stages`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeTrace {
    /// Nanoseconds spent reaching the decision math: mailbox wait
    /// (dequeue-observed) or seat acquisition (lock wait), per `path`.
    pub queue_ns: u64,
    /// Which substrate carried the request.
    pub path: QueuePath,
    /// Fast path only: nanoseconds spent claiming and publishing the
    /// downstream-ring slot. `None` on the mailbox path, where the ring
    /// does not exist.
    pub enqueue_ns: Option<u64>,
    /// The in-algorithm per-stage breakdown.
    pub stages: HandleTrace,
}

impl ServeTrace {
    /// A trace observed on the mailbox path (`queue_ns` = mailbox wait).
    pub fn mailbox(queue_ns: u64, stages: HandleTrace) -> Self {
        ServeTrace {
            queue_ns,
            path: QueuePath::Mailbox,
            enqueue_ns: None,
            stages,
        }
    }

    /// A trace observed on the shared-nothing fast path
    /// (`queue_ns` = seat acquisition, `enqueue_ns` = ring publication).
    pub fn seat(queue_ns: u64, enqueue_ns: u64, stages: HandleTrace) -> Self {
        ServeTrace {
            queue_ns,
            path: QueuePath::Seat,
            enqueue_ns: Some(enqueue_ns),
            stages,
        }
    }
}

/// Per-worker telemetry state: registry, typed handles, journal, and the
/// trace-sampling countdown. See the module docs.
#[derive(Debug)]
pub struct WorkerTelemetry {
    registry: Registry,
    journal: EventJournal,
    sample_period: u32,
    countdown: u32,
    /// Reused drain buffer so per-request event collection stays
    /// allocation-free.
    event_buf: Vec<PlacementEvent>,
    maintenance_seen: u64,
    decisions: CounterId,
    parkings_opened: CounterId,
    epochs: CounterId,
    ks_tests: CounterId,
    ks_verdicts_committed: CounterId,
    penalty_switches: CounterId,
    maintenance_dispatches: CounterId,
    stations_open: GaugeId,
    decision_cost: GaugeId,
    drift_pending: GaugeId,
    ks_d: GaugeId,
    ks_similarity: GaugeId,
    walking_cost: GaugeId,
    space_cost: GaugeId,
    decision_latency: HistogramId,
    stage_mailbox: HistogramId,
    stage_seat: HistogramId,
    stage_ring: HistogramId,
    stage_nn: HistogramId,
    stage_penalty: HistogramId,
    stage_ks: HistogramId,
    stage_ks_deferred: HistogramId,
}

impl WorkerTelemetry {
    /// Registers every metric this worker will ever touch. `epoch` is the
    /// journal's timestamp origin; pass the same instant to every worker
    /// of a fleet so their events merge into one comparable timeline.
    pub fn new(config: &TelemetryConfig, epoch: Instant) -> Self {
        let mut r = Registry::new();
        let decisions = r.counter(
            "esharing_decisions_total",
            "Online placement decisions served.",
        );
        let parkings_opened = r.counter(
            "esharing_parkings_opened_total",
            "Parking locations opened by the online algorithm.",
        );
        let epochs = r.counter(
            "esharing_epochs_total",
            "Cost-doubling epochs crossed (decision cost f doubled).",
        );
        let ks_tests = r.counter(
            "esharing_ks_tests_total",
            "Periodic 2-D KS re-tests completed.",
        );
        let ks_verdicts_committed = r.counter(
            "esharing_ks_verdicts_committed_total",
            "Deferred KS drift verdicts committed at a doubling boundary.",
        );
        let penalty_switches = r.counter(
            "esharing_penalty_switches_total",
            "Penalty-type transitions driven by KS test outcomes.",
        );
        let maintenance_dispatches = r.counter(
            "esharing_maintenance_dispatches_total",
            "Tier-2 maintenance periods dispatched.",
        );
        let stations_open = r.gauge(
            "esharing_stations_open",
            "Open parking locations (landmarks + online additions).",
            MergeMode::Sum,
        );
        let decision_cost = r.gauge(
            "esharing_decision_cost",
            "Current decision-making opening cost f.",
            MergeMode::PerShard,
        );
        let drift_pending = r.gauge(
            "esharing_drift_pending",
            "Boundary KS snapshots awaiting their deferred commit (0/1 per shard).",
            MergeMode::Sum,
        );
        let ks_d = r.gauge(
            "esharing_ks_d_statistic",
            "Peacock D-statistic at the last KS re-test.",
            MergeMode::PerShard,
        );
        let ks_similarity = r.gauge(
            "esharing_ks_similarity_percent",
            "Similarity 100*(1-D) percent at the last KS re-test.",
            MergeMode::PerShard,
        );
        let walking_cost = r.gauge(
            "esharing_walking_cost_m",
            "Accumulated walking cost, meters.",
            MergeMode::Sum,
        );
        let space_cost = r.gauge(
            "esharing_space_cost_m",
            "Accumulated space-occupation cost, meters.",
            MergeMode::Sum,
        );
        let decision_latency = r.histogram(
            "esharing_decision_latency_ns",
            "Arrival-to-decision latency, nanoseconds.",
        );
        let stage = |r: &mut Registry, stage: &str| {
            r.histogram_with(
                "esharing_decision_stage_ns",
                "Sampled per-stage decision-path timings, nanoseconds.",
                &[("stage", stage)],
            )
        };
        let stage_mailbox = stage(&mut r, "mailbox_wait");
        let stage_seat = stage(&mut r, "seat_acquire");
        let stage_ring = stage(&mut r, "ring_enqueue");
        let stage_nn = stage(&mut r, "nn_lookup");
        let stage_penalty = stage(&mut r, "penalty_eval");
        let stage_ks = stage(&mut r, "ks_window");
        let stage_ks_deferred = stage(&mut r, "ks_retest_deferred");
        WorkerTelemetry {
            registry: r,
            journal: EventJournal::new(config.journal_capacity, epoch),
            sample_period: config.sample_period(),
            countdown: 0,
            event_buf: Vec::with_capacity(esharing_placement::online::EVENT_BUFFER_CAP),
            maintenance_seen: 0,
            decisions,
            parkings_opened,
            epochs,
            ks_tests,
            ks_verdicts_committed,
            penalty_switches,
            maintenance_dispatches,
            stations_open,
            decision_cost,
            drift_pending,
            ks_d,
            ks_similarity,
            walking_cost,
            space_cost,
            decision_latency,
            stage_mailbox,
            stage_seat,
            stage_ring,
            stage_nn,
            stage_penalty,
            stage_ks,
            stage_ks_deferred,
        }
    }

    /// Records one off-seat deferred KS re-test's wall-clock cost as the
    /// `ks_retest_deferred` stage. Unsampled: every off-seat evaluation is
    /// observed, since the point of the deferred pipeline is that this cost
    /// no longer rides the decision path.
    pub fn observe_deferred_retest(&mut self, ns: u64) {
        self.registry.observe_ns(self.stage_ks_deferred, ns);
    }

    /// Whether the next request should run the traced decision path.
    /// Returns `true` once every `sample_every` calls, starting with the
    /// first.
    pub fn should_trace(&mut self) -> bool {
        if self.countdown == 0 {
            self.countdown = self.sample_period - 1;
            true
        } else {
            self.countdown -= 1;
            false
        }
    }

    /// Accounts one served decision: exact counters and gauges, journal
    /// events drained from the placement layer, and — when `trace` is
    /// present — the sampled per-stage timings. The [`ServeTrace`] names
    /// the queueing substrate, so the mailbox path observes `mailbox_wait`
    /// while the shared-nothing fast path observes `seat_acquire` (and
    /// `ring_enqueue` when the downstream-ring publication was timed).
    pub fn on_decision(
        &mut self,
        system: &mut ESharing,
        decision: &Decision,
        latency_ns: u64,
        trace: Option<ServeTrace>,
    ) {
        self.registry.inc(self.decisions);
        if decision.opened() {
            self.registry.inc(self.parkings_opened);
        }
        self.registry.observe_ns(self.decision_latency, latency_ns);
        if let Some(st) = trace {
            match st.path {
                QueuePath::Mailbox => self.registry.observe_ns(self.stage_mailbox, st.queue_ns),
                QueuePath::Seat => self.registry.observe_ns(self.stage_seat, st.queue_ns),
            }
            if let Some(ring_ns) = st.enqueue_ns {
                self.registry.observe_ns(self.stage_ring, ring_ns);
            }
            let tr = st.stages;
            self.registry.observe_ns(self.stage_nn, tr.nn_lookup_ns);
            self.registry
                .observe_ns(self.stage_penalty, tr.penalty_eval_ns);
            self.registry.observe_ns(self.stage_ks, tr.ks_window_ns);
        }
        system.take_placement_events(&mut self.event_buf);
        for ev in self.event_buf.drain(..) {
            match ev {
                PlacementEvent::Opened { station } => {
                    self.journal.record(EventKind::ParkingOpened {
                        x: station.x,
                        y: station.y,
                    });
                }
                PlacementEvent::EpochCrossed {
                    epoch,
                    decision_cost,
                } => {
                    self.registry.inc(self.epochs);
                    self.journal.record(EventKind::EpochCrossed {
                        epoch,
                        decision_cost,
                    });
                }
                PlacementEvent::KsTest {
                    d_statistic,
                    similarity_percent,
                    penalty_before,
                    penalty_after,
                } => {
                    self.registry.inc(self.ks_tests);
                    self.registry.set(self.ks_d, d_statistic);
                    self.registry.set(self.ks_similarity, similarity_percent);
                    if penalty_before != penalty_after {
                        self.registry.inc(self.penalty_switches);
                    }
                    self.journal.record(EventKind::KsTest {
                        d_statistic,
                        similarity_percent,
                        penalty_before: penalty_code(penalty_before),
                        penalty_after: penalty_code(penalty_after),
                    });
                }
                PlacementEvent::KsVerdictCommitted {
                    requests,
                    d_statistic,
                } => {
                    self.registry.inc(self.ks_verdicts_committed);
                    self.journal.record(EventKind::KsVerdictCommitted {
                        requests,
                        d_statistic,
                    });
                }
            }
        }
        self.registry.set(
            self.stations_open,
            (system.landmarks().len() + system.opened_online()) as f64,
        );
        self.registry.set(
            self.drift_pending,
            if system.drift_pending() { 1.0 } else { 0.0 },
        );
        if let Some(f) = system.decision_cost() {
            self.registry.set(self.decision_cost, f);
        }
        let placement = system.metrics().placement;
        self.registry.set(self.walking_cost, placement.walking);
        self.registry.set(self.space_cost, placement.space);
    }

    /// Catches the dispatch counter and journal up with the system's
    /// maintenance-period count (Tier-2 runs outside the request path, so
    /// workers reconcile by diffing rather than observing the dispatch).
    pub fn observe_maintenance(&mut self, metrics: &SystemMetrics) {
        while self.maintenance_seen < metrics.maintenance_periods {
            self.maintenance_seen += 1;
            self.registry.inc(self.maintenance_dispatches);
            self.journal.record(EventKind::MaintenanceDispatch {
                period: self.maintenance_seen,
                total_cost: metrics.maintenance_cost,
            });
        }
    }

    /// Snapshots the registry and drains the journal.
    pub fn probe(&mut self) -> TelemetryProbe {
        TelemetryProbe {
            registry: self.registry.snapshot(),
            events: self.journal.drain(),
            events_dropped: self.journal.dropped(),
        }
    }

    /// Read access to the live registry (tests, in-process dashboards).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use esharing_geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bootstrapped(seed: u64) -> ESharing {
        let mut rng = StdRng::seed_from_u64(seed);
        let history: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let mut sys = ESharing::new(SystemConfig::default());
        sys.bootstrap(&history);
        sys
    }

    #[test]
    fn sampling_countdown_fires_every_nth() {
        let mut wt = WorkerTelemetry::new(
            &TelemetryConfig {
                sample_every: 4,
                ..TelemetryConfig::default()
            },
            Instant::now(),
        );
        let fired: Vec<bool> = (0..9).map(|_| wt.should_trace()).collect();
        assert_eq!(
            fired,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn decisions_counted_exactly_and_traces_sampled() {
        let mut sys = bootstrapped(1);
        let mut wt = WorkerTelemetry::new(
            &TelemetryConfig {
                sample_every: 4,
                ..TelemetryConfig::default()
            },
            Instant::now(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let traced = wt.should_trace();
            if traced {
                let (d, tr) = sys.handle_request_traced(p).unwrap();
                wt.on_decision(&mut sys, &d, 1_000, Some(ServeTrace::mailbox(500, tr)));
            } else {
                let d = sys.handle_request(p).unwrap();
                wt.on_decision(&mut sys, &d, 1_000, None);
            }
        }
        let probe = wt.probe();
        assert_eq!(probe.registry.counter_total("esharing_decisions_total"), 40);
        assert_eq!(
            probe
                .registry
                .counter_total("esharing_parkings_opened_total"),
            sys.opened_online() as u64
        );
        // 40 requests at 1-in-4 sampling: 10 traces, 4 stage series each.
        let stages = probe.registry.histogram_total("esharing_decision_stage_ns");
        assert_eq!(stages.count(), 40);
        assert_eq!(
            probe
                .registry
                .histogram_total("esharing_decision_latency_ns")
                .count(),
            40
        );
        let stations = probe.registry.gauge("esharing_stations_open").unwrap();
        assert_eq!(
            stations as usize,
            sys.landmarks().len() + sys.opened_online()
        );
        // Epoch crossings journal and count: 40 requests / (beta*k) each.
        assert_eq!(
            probe.registry.counter_total("esharing_epochs_total"),
            sys.epoch()
        );
        assert!(probe
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::EpochCrossed { .. })));
        assert_eq!(probe.events_dropped, 0);
        // A second probe starts from an empty journal but keeps counters.
        let again = wt.probe();
        assert!(again.events.is_empty());
        assert_eq!(again.registry.counter_total("esharing_decisions_total"), 40);
    }

    #[test]
    fn seat_path_traces_observe_fast_path_stages() {
        let mut sys = bootstrapped(7);
        let mut wt = WorkerTelemetry::new(&TelemetryConfig::default(), Instant::now());
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..3 {
            let p = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
            let (d, tr) = sys.handle_request_traced(p).unwrap();
            wt.on_decision(&mut sys, &d, 900, Some(ServeTrace::seat(120, 80, tr)));
        }
        let probe = wt.probe();
        let count_of = |stage: &str| {
            probe
                .registry
                .histograms
                .iter()
                .find(|s| {
                    s.name == "esharing_decision_stage_ns"
                        && s.labels.iter().any(|(_, v)| v == stage)
                })
                .map(|s| s.value.count())
                .unwrap_or(0)
        };
        assert_eq!(count_of("seat_acquire"), 3);
        assert_eq!(count_of("ring_enqueue"), 3);
        assert_eq!(count_of("mailbox_wait"), 0);
        assert_eq!(count_of("nn_lookup"), 3);
    }

    #[test]
    fn maintenance_dispatches_reconcile_by_diffing() {
        let mut wt = WorkerTelemetry::new(&TelemetryConfig::default(), Instant::now());
        let metrics = SystemMetrics {
            maintenance_periods: 3,
            maintenance_cost: 123.5,
            ..SystemMetrics::default()
        };
        wt.observe_maintenance(&metrics);
        wt.observe_maintenance(&metrics); // idempotent
        let probe = wt.probe();
        assert_eq!(
            probe
                .registry
                .counter_total("esharing_maintenance_dispatches_total"),
            3
        );
        let periods: Vec<u64> = probe
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MaintenanceDispatch { period, .. } => Some(period),
                _ => None,
            })
            .collect();
        assert_eq!(periods, vec![1, 2, 3]);
    }

    #[test]
    fn penalty_codes_are_stable() {
        assert_eq!(penalty_code(PenaltyType::None), 0);
        assert_eq!(penalty_code(PenaltyType::TypeI), 1);
        assert_eq!(penalty_code(PenaltyType::TypeII), 2);
        assert_eq!(penalty_code(PenaltyType::TypeIII), 3);
    }
}
