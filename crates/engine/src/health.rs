//! The engine's fleet health plane.
//!
//! Ties the telemetry crate's analysis tier (`tsdb` + `slo` +
//! `flight_recorder`) into the serving engine without adding threads or
//! touching the decision seat:
//!
//! * every fast-path decision drops one unsampled [`FlightSample`] into a
//!   shared lock-free [`FlightRing`] (wait-free `fetch_add` + stores);
//! * each shard's **drain worker** — which already wakes on a harvest
//!   quantum to emulate downstream fetches — doubles as the health pump:
//!   on a sweep cadence it records the shard's ring occupancy and shed
//!   counter into the in-process [`Tsdb`], harvests the seat's registry
//!   snapshot through a [`HealthSlot`] handshake (same offer/take idiom
//!   as the drift slot: the worker *requests*, the next decision on the
//!   seat *deposits*, the worker's next sweep *takes* — the seat never
//!   blocks on health), and runs the SLO burn-rate evaluation;
//! * breach/recover transitions are journalled as typed events and a
//!   breach (or an elastic-lifecycle op) freezes the flight ring into a
//!   canonical JSON "black box" dump, rate-limited, served at
//!   `/flight/<id>` and mirrored under a results directory.
//!
//! With telemetry disabled the pump still runs on router-side scalars
//! (occupancy, sheds, a decision-count mirror), so admission-control SLOs
//! keep working on overhead A/B runs; the histogram/drift rules simply
//! yield no verdict. The mailbox fallback path is health-inert by design:
//! it exists as a baseline comparison lane and records no flight samples.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use esharing_telemetry::slo::default_rules;
use esharing_telemetry::{
    Event, EventJournal, EventKind, EventRecord, FlightRecorder, FlightRing, MergeMode, Registry,
    RegistrySnapshot, SloEngine, SloRule, SloStatus, Tsdb, TsdbConfig,
};

const MS: u64 = 1_000_000;
const SEC: u64 = 1_000_000_000;
/// Recent health events retained for inclusion in flight dumps.
const DUMP_TAIL: usize = 64;

/// Health-plane knobs: the tsdb shape, the SLO rule set, the sweep
/// cadence, and the flight-recorder bounds.
///
/// Disabled by default: the health plane costs one atomic flag read plus
/// one flight-ring store per decision when on, and exactly nothing when
/// off, which keeps the overhead A/B comparison honest.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Master switch for the whole plane (tsdb, SLOs, flight recorder).
    pub enabled: bool,
    /// Rollup-ring shape of the in-process time-series store.
    pub tsdb: TsdbConfig,
    /// Drain-worker sweep cadence in milliseconds (clamped to ≥ 1): how
    /// often each shard records scalars, harvests a registry snapshot,
    /// and the SLO engine re-evaluates.
    pub sweep_interval_ms: u64,
    /// The objectives to enforce. Empty means "default rules"
    /// ([`default_rules`]: decision p99, shed ratio, drift backlog).
    pub rules: Vec<SloRule>,
    /// Flight-ring capacity: the newest N decision samples retained.
    pub flight_capacity: usize,
    /// Maximum flight dumps frozen per run.
    pub max_dumps: usize,
    /// Minimum spacing between dumps in milliseconds (flap protection).
    pub min_dump_interval_ms: u64,
    /// Directory to mirror dumps into (e.g. `results/flight`). `None`
    /// keeps dumps in memory only (still served at `/flight/<id>`).
    pub dump_dir: Option<PathBuf>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: false,
            tsdb: TsdbConfig::default(),
            sweep_interval_ms: 100,
            rules: Vec::new(),
            flight_capacity: 4096,
            max_dumps: 8,
            min_dump_interval_ms: 1_000,
            dump_dir: None,
        }
    }
}

impl HealthConfig {
    /// The plane switched on with every default (default SLO rules,
    /// default tsdb resolutions, in-memory dumps).
    pub fn enabled() -> Self {
        HealthConfig {
            enabled: true,
            ..HealthConfig::default()
        }
    }

    /// The rule set actually enforced: the configured rules, or the
    /// defaults when none were given.
    pub fn effective_rules(&self) -> Vec<SloRule> {
        if self.rules.is_empty() {
            default_rules()
        } else {
            self.rules.clone()
        }
    }

    pub(crate) fn sweep_interval_ns(&self) -> u64 {
        self.sweep_interval_ms.max(1) * MS
    }
}

/// Per-shard seat↔pump handshake cell plus router-side scalar mirrors.
///
/// Same shape as the drift slot: the drain worker raises `requested`,
/// the next decision holding the seat deposits a registry snapshot (one
/// relaxed flag read per decision while idle), and the worker's next
/// sweep takes it. The scalar mirrors let the pump observe sheds and
/// decision counts without the seat or the registry at all.
#[derive(Debug, Default)]
pub(crate) struct HealthSlot {
    requested: AtomicBool,
    snap: Mutex<Option<RegistrySnapshot>>,
    sheds: AtomicU64,
    decisions: AtomicU64,
}

impl HealthSlot {
    pub(crate) fn new() -> Self {
        HealthSlot::default()
    }

    /// Pump side: ask the seat for a registry snapshot.
    pub(crate) fn request_registry(&self) {
        self.requested.store(true, Ordering::Relaxed);
    }

    /// Seat side: is a snapshot wanted? One relaxed load per decision.
    pub(crate) fn registry_requested(&self) -> bool {
        self.requested.load(Ordering::Relaxed)
    }

    /// Seat side: deposit the snapshot (or clear the request when the
    /// shard runs without telemetry and has nothing to deposit).
    pub(crate) fn offer_registry(&self, snap: Option<RegistrySnapshot>) {
        if let Some(s) = snap {
            *self.snap.lock().expect("health slot poisoned") = Some(s);
        }
        self.requested.store(false, Ordering::Relaxed);
    }

    /// Pump side: take the deposited snapshot, if any arrived.
    pub(crate) fn take_registry(&self) -> Option<RegistrySnapshot> {
        self.snap.lock().expect("health slot poisoned").take()
    }

    /// Router side: count `n` shed requests against this shard.
    pub(crate) fn note_sheds(&self, n: u64) {
        self.sheds.fetch_add(n, Ordering::Relaxed);
    }

    /// Seat side: count one served decision.
    pub(crate) fn note_decision(&self) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    pub(crate) fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }
}

/// Everything the health pump mutates, behind one mutex that only drain
/// workers (sweeps), lifecycle ops (dumps), and scrapes (reads) touch —
/// never the decision seat.
struct HealthState {
    tsdb: Tsdb,
    slo: SloEngine,
    recorder: FlightRecorder,
    journal: EventJournal,
    /// Recent health events (bounded copy) embedded into dumps, so a
    /// dump always carries the `SloBreach` that triggered it even after
    /// the journal has been drained by a snapshot.
    tail: Vec<EventRecord>,
    last_eval_ns: u64,
}

/// The engine-wide health plane: one flight ring shared by every fast
/// shard, one tsdb + SLO engine + flight recorder behind a mutex.
pub(crate) struct HealthPlane {
    telemetry_enabled: bool,
    sweep_interval_ns: u64,
    /// Dump lookback: the largest fast burn window across the rules.
    dump_window_ns: u64,
    flights: FlightRing,
    state: Mutex<HealthState>,
}

impl std::fmt::Debug for HealthPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthPlane")
            .field("sweep_interval_ns", &self.sweep_interval_ns)
            .field("flights", &self.flights)
            .finish()
    }
}

/// The bundle a fast shard's drain worker needs to run the health pump.
#[derive(Clone)]
pub(crate) struct HealthHandle {
    pub(crate) plane: Arc<HealthPlane>,
    pub(crate) slot: Arc<HealthSlot>,
    pub(crate) shard: usize,
}

impl HealthPlane {
    /// Builds the plane from its config. `epoch` is the engine's shared
    /// journal epoch; `telemetry_enabled` decides whether the decision
    /// counter mirror must stand in for the registry sweep.
    pub(crate) fn new(cfg: &HealthConfig, telemetry_enabled: bool, epoch: Instant) -> Self {
        let rules = cfg.effective_rules();
        let dump_window_ns = rules
            .iter()
            .map(|r| r.fast_window_ns)
            .max()
            .unwrap_or(60 * SEC);
        HealthPlane {
            telemetry_enabled,
            sweep_interval_ns: cfg.sweep_interval_ns(),
            dump_window_ns,
            flights: FlightRing::new(cfg.flight_capacity),
            state: Mutex::new(HealthState {
                tsdb: Tsdb::new(&cfg.tsdb),
                slo: SloEngine::new(rules),
                recorder: FlightRecorder::new(
                    cfg.dump_dir.clone(),
                    cfg.max_dumps,
                    cfg.min_dump_interval_ms * MS,
                ),
                journal: EventJournal::new(256, epoch),
                tail: Vec::new(),
                last_eval_ns: 0,
            }),
        }
    }

    /// The shared per-decision sample ring.
    pub(crate) fn flights(&self) -> &FlightRing {
        &self.flights
    }

    /// The pump cadence in nanoseconds.
    pub(crate) fn sweep_interval_ns(&self) -> u64 {
        self.sweep_interval_ns
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthState> {
        self.state.lock().expect("health plane poisoned")
    }

    /// One shard's sweep: record the router-side scalars, fold in the
    /// harvested registry snapshot (when the seat deposited one), and —
    /// at most once per sweep interval fleet-wide — re-evaluate the SLO
    /// rules, journalling transitions and freezing dumps on breach.
    pub(crate) fn sweep(
        &self,
        now_ns: u64,
        shard: usize,
        occupancy: u64,
        sheds: u64,
        decisions: u64,
        registry: Option<RegistrySnapshot>,
    ) {
        let mut st = self.lock();
        let labels = [("shard".to_string(), shard.to_string())];
        st.tsdb.record_scalar(
            now_ns,
            "esharing_ring_occupancy",
            &labels,
            esharing_telemetry::SeriesKind::Gauge,
            occupancy as f64,
        );
        st.tsdb.record_scalar(
            now_ns,
            "esharing_router_sheds_total",
            &labels,
            esharing_telemetry::SeriesKind::Counter,
            sheds as f64,
        );
        if !self.telemetry_enabled {
            // No registry sweeps will ever arrive: mirror the decision
            // counter so the shed-ratio denominator still exists.
            st.tsdb.record_scalar(
                now_ns,
                "esharing_decisions_total",
                &labels,
                esharing_telemetry::SeriesKind::Counter,
                decisions as f64,
            );
        }
        if let Some(snap) = registry {
            st.tsdb.sweep(now_ns, &snap, Some(shard));
        }
        if now_ns.saturating_sub(st.last_eval_ns) >= self.sweep_interval_ns {
            st.last_eval_ns = now_ns;
            self.evaluate_locked(&mut st, now_ns);
        }
    }

    fn push_event(st: &mut HealthState, now_ns: u64, kind: EventKind) {
        st.journal.record_at(now_ns, kind);
        let seq = st.journal.total_recorded() - 1;
        st.tail.push(EventRecord {
            shard: None,
            event: Event {
                seq,
                t_ns: now_ns,
                kind,
            },
        });
        if st.tail.len() > DUMP_TAIL {
            let excess = st.tail.len() - DUMP_TAIL;
            st.tail.drain(..excess);
        }
    }

    fn freeze_dump(&self, st: &mut HealthState, now_ns: u64, trigger: &str, window_ns: u64) {
        if !st.recorder.should_dump(now_ns) {
            // Still count the suppression without assembling the dump.
            let _ = st
                .recorder
                .record_dump(now_ns, trigger, window_ns, &[], &[], "");
            return;
        }
        let samples = self
            .flights
            .snapshot_since(now_ns.saturating_sub(window_ns));
        let excerpt = st.tsdb.excerpt_json(window_ns, now_ns);
        let tail = st.tail.clone();
        st.recorder
            .record_dump(now_ns, trigger, window_ns, &samples, &tail, &excerpt);
    }

    fn evaluate_locked(&self, st: &mut HealthState, now_ns: u64) {
        use esharing_telemetry::SloTransition;
        let HealthState { tsdb, slo, .. } = &mut *st;
        let transitions = slo.evaluate(tsdb, now_ns);
        for t in transitions {
            match t {
                SloTransition::Breach {
                    rule,
                    value,
                    threshold,
                    burn_fast,
                    burn_slow,
                } => {
                    Self::push_event(
                        st,
                        now_ns,
                        EventKind::SloBreach {
                            rule: rule.min(u8::MAX as usize) as u8,
                            value,
                            threshold,
                            burn_fast,
                            burn_slow,
                        },
                    );
                    let (id, window) = {
                        let r = &st.slo.rules()[rule];
                        (r.id.clone(), r.fast_window_ns)
                    };
                    self.freeze_dump(st, now_ns, &format!("slo_breach:{id}"), window);
                }
                SloTransition::Recover { rule, burn_fast } => {
                    Self::push_event(
                        st,
                        now_ns,
                        EventKind::SloRecovered {
                            rule: rule.min(u8::MAX as usize) as u8,
                            burn_fast,
                        },
                    );
                }
            }
        }
    }

    /// Freezes a dump for an elastic-lifecycle op (`split` / `merge` /
    /// `recover`) — structural changes are exactly when an operator wants
    /// the black box.
    pub(crate) fn on_lifecycle(&self, kind: &str, now_ns: u64) {
        let mut st = self.lock();
        self.freeze_dump(
            &mut st,
            now_ns,
            &format!("lifecycle:{kind}"),
            self.dump_window_ns,
        );
    }

    /// Per-shard trend signals for the lifecycle policy: the occupancy
    /// projected one window ahead (newest bucket + slope × window) and the
    /// shed delta over the window. Projecting from the newest bucket
    /// rather than the window mean matters right after a split: the
    /// senior shard's pre-split backlog stays in the window's history for
    /// a while, and a mean-based forecast would keep calling it hot long
    /// after the split relieved it. `None` until the tsdb holds occupancy
    /// data for this shard, so the policy can fall back to instantaneous
    /// signals per shard.
    pub(crate) fn shard_trend(
        &self,
        shard: usize,
        window_ns: u64,
        now_ns: u64,
    ) -> Option<(f64, f64)> {
        let st = self.lock();
        let shard_label = shard.to_string();
        let labels = [("shard", shard_label.as_str())];
        let occ_buckets = st.tsdb.scalar_buckets(
            "esharing_ring_occupancy",
            &labels,
            0,
            now_ns.saturating_sub(window_ns),
            now_ns,
        );
        let (_, newest) = occ_buckets.last()?;
        let slope = st
            .tsdb
            .slope_per_sec("esharing_ring_occupancy", &labels, window_ns, now_ns)
            .unwrap_or(0.0);
        let projected = newest.mean() + slope * (window_ns as f64 / SEC as f64);
        let sheds = st
            .tsdb
            .aggregate_labeled("esharing_router_sheds_total", &labels, window_ns, now_ns)
            .map(|r| (r.max - r.min).max(0.0))
            .unwrap_or(0.0);
        Some((projected.max(0.0), sheds))
    }

    /// Current verdict per rule (for snapshots and run reports).
    pub(crate) fn statuses(&self) -> Vec<SloStatus> {
        self.lock().slo.statuses()
    }

    /// Drains the health journal for the fleet event log (router-side
    /// events: `shard` is `None`).
    pub(crate) fn drain_events(&self) -> Vec<Event> {
        self.lock().journal.drain()
    }

    /// Events the bounded health journal overwrote before a drain.
    pub(crate) fn journal_dropped(&self) -> u64 {
        self.lock().journal.dropped()
    }

    /// Burn-rate gauges and breach counters for `/metrics`:
    /// `esharing_slo_burn{slo}` (fast-window burn) and
    /// `esharing_slo_breaches_total{slo}`, every rule emitted even at
    /// zero so scrapes see the full family immediately.
    pub(crate) fn burn_registry(&self) -> RegistrySnapshot {
        let statuses = self.statuses();
        let mut r = Registry::new();
        for s in &statuses {
            let labels = [("slo", s.id.as_str())];
            let g = r.gauge_with(
                "esharing_slo_burn",
                "Fast-window SLO burn rate (signal / threshold; >= 1 is burning).",
                MergeMode::Sum,
                &labels,
            );
            r.set(g, s.burn_fast);
            let c = r.counter_with(
                "esharing_slo_breaches_total",
                "Ok->Breach SLO transitions since engine start.",
                &labels,
            );
            r.add(c, s.breaches);
        }
        r.snapshot()
    }

    /// The frozen dump document for `id`, if retained.
    pub(crate) fn flight(&self, id: &str) -> Option<String> {
        self.lock().recorder.get(id).map(str::to_string)
    }

    /// Retained dump ids, oldest first.
    pub(crate) fn flight_ids(&self) -> Vec<String> {
        self.lock().recorder.ids()
    }

    /// Dumps frozen so far.
    pub(crate) fn dump_count(&self) -> usize {
        self.lock().recorder.dump_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_off_with_default_rules() {
        let cfg = HealthConfig::default();
        assert!(!cfg.enabled);
        assert!(HealthConfig::enabled().enabled);
        let ids: Vec<String> = cfg.effective_rules().iter().map(|r| r.id.clone()).collect();
        assert_eq!(ids, ["decision_p99", "shed_ratio", "drift_pending"]);
        assert_eq!(cfg.sweep_interval_ns(), 100 * MS);
        assert_eq!(
            HealthConfig {
                sweep_interval_ms: 0,
                ..HealthConfig::default()
            }
            .sweep_interval_ns(),
            MS
        );
    }

    #[test]
    fn slot_handshake_offers_and_takes_once() {
        let slot = HealthSlot::new();
        assert!(!slot.registry_requested());
        slot.request_registry();
        assert!(slot.registry_requested());
        slot.offer_registry(Some(RegistrySnapshot::default()));
        assert!(!slot.registry_requested());
        assert!(slot.take_registry().is_some());
        assert!(slot.take_registry().is_none());
        slot.note_sheds(3);
        slot.note_decision();
        assert_eq!((slot.sheds(), slot.decisions()), (3, 1));
    }

    #[test]
    fn sweep_feeds_shed_ratio_rule_without_telemetry() {
        // Shed-ratio breach from router scalars alone (telemetry off),
        // with tight windows so seconds of data suffice.
        let cfg = HealthConfig {
            enabled: true,
            rules: vec![SloRule::ratio_below(
                "shed_ratio",
                "esharing_router_sheds_total",
                "esharing_decisions_total",
                0.01,
            )
            .with_windows_ms(2_000, 5_000)],
            sweep_interval_ms: 500,
            min_dump_interval_ms: 0,
            ..HealthConfig::default()
        };
        let plane = HealthPlane::new(&cfg, false, Instant::now());
        for s in 1..=12u64 {
            // 10% of traffic shed, sustained.
            plane.sweep(s * 500 * MS, 0, 4, s * 10, s * 100, None);
        }
        let st = plane.statuses();
        assert!(
            st[0].breached,
            "burn {} / {}",
            st[0].burn_fast, st[0].burn_slow
        );
        assert_eq!(st[0].breaches, 1);
        // Breach journalled and dumped.
        let events = plane.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SloBreach { .. })));
        assert_eq!(plane.dump_count(), 1);
        let id = plane.flight_ids()[0].clone();
        let dump = plane.flight(&id).expect("dump served");
        assert!(dump.contains("slo_breach:shed_ratio"));
        assert!(dump.contains("\"kind\": \"slo_breach\""));
        // Burn registry exports the family even for this single rule.
        let reg = plane.burn_registry();
        assert!(reg.counter_total("esharing_slo_breaches_total") >= 1);
    }

    #[test]
    fn shard_trend_projects_occupancy_and_windows_sheds() {
        let cfg = HealthConfig {
            enabled: true,
            sweep_interval_ms: 1_000,
            ..HealthConfig::default()
        };
        let plane = HealthPlane::new(&cfg, true, Instant::now());
        assert!(plane.shard_trend(0, 10 * SEC, 10 * SEC).is_none());
        // Occupancy ramps 0..=10 over 10 s; sheds grow by 5.
        for s in 0..=10u64 {
            plane.sweep(s * SEC, 0, s, s / 2, s * 10, None);
        }
        let (projected, sheds) = plane.shard_trend(0, 10 * SEC, 10 * SEC).expect("data");
        // Newest bucket is 10, slope ~1/s, so the 10 s projection lands
        // near 20.
        assert!(projected > 10.0, "projected {projected}");
        assert!((sheds - 5.0).abs() < 1e-9, "sheds {sheds}");
        // Other shards stay independent.
        assert!(plane.shard_trend(1, 10 * SEC, 10 * SEC).is_none());
    }

    #[test]
    fn lifecycle_dump_rate_limited() {
        let cfg = HealthConfig {
            enabled: true,
            min_dump_interval_ms: 1_000,
            ..HealthConfig::default()
        };
        let plane = HealthPlane::new(&cfg, true, Instant::now());
        plane.on_lifecycle("split", SEC);
        plane.on_lifecycle("merge", SEC + MS);
        assert_eq!(plane.dump_count(), 1);
        plane.on_lifecycle("merge", 3 * SEC);
        assert_eq!(plane.dump_count(), 2);
        assert!(plane
            .flight("flight-0001")
            .unwrap()
            .contains("lifecycle:split"));
    }
}
