//! Property-based equivalence between the flat-hash-grid
//! [`NearestNeighborIndex`] and its `BTreeMap` oracle
//! [`NearestNeighborIndexReference`].
//!
//! Both implementations promise identical, deterministically tie-broken
//! answers — `nearest` minimizes and `within` sorts under the shared
//! `candidate_cmp` order — so every property asserts exact equality on
//! points and bit equality on distances, under random interleavings of
//! inserts, removes and queries.

use esharing_geo::{NearestNeighborIndex, NearestNeighborIndexReference, Point};
use proptest::prelude::*;

/// One step of an interleaved workload. Coordinates are quantized to a
/// lattice so removes hit live points and ties actually occur.
#[derive(Debug, Clone)]
enum Op {
    Insert(Point),
    Remove(Point),
    Nearest(Point),
    Within(Point, f64),
}

fn lattice_point(col: i8, row: i8) -> Point {
    Point::new(f64::from(col) * 60.0, f64::from(row) * 60.0)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let point = (-20i8..20, -20i8..20).prop_map(|(c, r)| lattice_point(c, r));
    prop_oneof![
        4 => point.clone().prop_map(Op::Insert),
        2 => point.clone().prop_map(Op::Remove),
        2 => point.clone().prop_map(Op::Nearest),
        1 => (point, 0.0f64..500.0).prop_map(|(p, r)| Op::Within(p, r)),
    ]
}

fn assert_nearest_equal(got: Option<(Point, f64)>, want: Option<(Point, f64)>, ctx: &str) {
    match (got, want) {
        (None, None) => {}
        (Some((gp, gd)), Some((wp, wd))) => {
            assert_eq!(gp, wp, "{ctx}: nearest point diverged");
            assert_eq!(
                gd.to_bits(),
                wd.to_bits(),
                "{ctx}: nearest distance diverged"
            );
        }
        other => panic!("{ctx}: nearest presence diverged: {other:?}"),
    }
}

proptest! {
    /// Random interleavings of inserts, removes, nearest and within queries
    /// produce identical results from both implementations at every step.
    #[test]
    fn interleaved_ops_match_reference(
        bucket in prop_oneof![Just(40.0f64), Just(100.0), Just(350.0)],
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut fast = NearestNeighborIndex::new(bucket);
        let mut oracle = NearestNeighborIndexReference::new(bucket);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(p) => {
                    fast.insert(p);
                    oracle.insert(p);
                }
                Op::Remove(p) => {
                    prop_assert_eq!(fast.remove(p), oracle.remove(p), "step {}", step);
                }
                Op::Nearest(q) => {
                    assert_nearest_equal(fast.nearest(q), oracle.nearest(q), &format!("step {step}"));
                }
                Op::Within(q, r) => {
                    prop_assert_eq!(fast.within(q, r), oracle.within(q, r), "step {}", step);
                }
            }
            prop_assert_eq!(fast.len(), oracle.len(), "step {}", step);
        }
        // Final state holds the same multiset of points.
        let key = |p: &Point| (p.x.to_bits(), p.y.to_bits());
        let mut a: Vec<Point> = fast.iter().collect();
        let mut b: Vec<Point> = oracle.iter().collect();
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
    }

    /// Continuous coordinates (no engineered ties): nearest and within stay
    /// bit-identical across implementations.
    #[test]
    fn continuous_queries_match_reference(
        pts in proptest::collection::vec((0.0f64..2_000.0, 0.0f64..2_000.0), 1..200),
        queries in proptest::collection::vec((-200.0f64..2_200.0, -200.0f64..2_200.0), 1..20),
        radius in 0.0f64..800.0,
    ) {
        let mut fast = NearestNeighborIndex::new(90.0);
        let mut oracle = NearestNeighborIndexReference::new(90.0);
        for &(x, y) in &pts {
            fast.insert(Point::new(x, y));
            oracle.insert(Point::new(x, y));
        }
        for &(x, y) in &queries {
            let q = Point::new(x, y);
            assert_nearest_equal(fast.nearest(q), oracle.nearest(q), "query");
            prop_assert_eq!(fast.within(q, radius), oracle.within(q, radius));
        }
    }

    /// Removing every other point (including duplicates) keeps the two
    /// implementations in lockstep through the whole drain.
    #[test]
    fn drain_matches_reference(
        pts in proptest::collection::vec((-8i8..8, -8i8..8), 1..80),
    ) {
        let mut fast = NearestNeighborIndex::new(70.0);
        let mut oracle = NearestNeighborIndexReference::new(70.0);
        let pts: Vec<Point> = pts.iter().map(|&(c, r)| lattice_point(c, r)).collect();
        for &p in &pts {
            fast.insert(p);
            oracle.insert(p);
        }
        for (i, &p) in pts.iter().enumerate() {
            prop_assert!(fast.remove(p));
            prop_assert!(oracle.remove(p));
            let q = Point::new(5.0, -5.0);
            assert_nearest_equal(fast.nearest(q), oracle.nearest(q), &format!("drain {i}"));
        }
        prop_assert!(fast.is_empty());
        prop_assert!(fast.nearest(Point::ORIGIN).is_none());
    }
}
