//! Polynomial penalty functions fitted to an observed deviation
//! distribution — the extension the paper sketches in §V-B: "we can design
//! the penalty function as high-order polynomials to approximate an
//! incoming distribution in any reasonable shape. We intend to investigate
//! this in future."
//!
//! The three closed-form types are all (up to shape) survival functions of
//! a deviation distribution: Type II is the survival function of
//! `Uniform(0, L)`, Type III of a half-Gaussian, Type I of a heavy-tailed
//! law. [`PolynomialPenalty::fit`] generalizes this: it fits a polynomial
//! to the *empirical survival function* of historical deviations, so the
//! probability of opening a new parking tracks exactly how far real
//! requests tend to stray from the offline solution.

use esharing_linalg::{least_squares, Matrix};
use std::error::Error;
use std::fmt;

/// Errors from fitting a polynomial penalty.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FitError {
    /// Fewer samples than the polynomial degree allows.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required (`degree + 2`).
        needed: usize,
    },
    /// A deviation sample was negative or non-finite.
    InvalidSample,
    /// Degree 0 polynomials cannot decline; degrees above 8 oscillate.
    UnsupportedDegree(usize),
    /// The normal equations were singular (e.g. all samples identical).
    Degenerate,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { got, needed } => {
                write!(f, "need at least {needed} deviation samples, got {got}")
            }
            FitError::InvalidSample => write!(f, "deviation samples must be finite and >= 0"),
            FitError::UnsupportedDegree(d) => {
                write!(f, "polynomial degree {d} unsupported (use 1..=8)")
            }
            FitError::Degenerate => write!(f, "fit is numerically degenerate"),
        }
    }
}

impl Error for FitError {}

/// A penalty `g(c)` represented as a polynomial in `c / scale`, clamped to
/// `[0, 1]` and forced to 0 beyond the largest observed deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialPenalty {
    /// Coefficients in ascending power order (`a_0 + a_1 x + …`).
    coefficients: Vec<f64>,
    /// Normalization scale (the largest deviation seen during fitting).
    scale: f64,
}

impl PolynomialPenalty {
    /// Builds a penalty from explicit coefficients over `x = c / scale`.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients` is empty or `scale` is not positive.
    pub fn from_coefficients(coefficients: Vec<f64>, scale: f64) -> Self {
        assert!(!coefficients.is_empty(), "need at least one coefficient");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        PolynomialPenalty {
            coefficients,
            scale,
        }
    }

    /// Fits a degree-`degree` polynomial to the empirical survival function
    /// of `deviations` (walking costs between destinations and their
    /// nearest offline parking).
    ///
    /// The fitted `g` satisfies `g(0) ≈ 1` (sorted-rank survival starts
    /// at 1) and declines to ≈ 0 at the largest observed deviation,
    /// matching the boundary behaviour of the closed-form types.
    ///
    /// # Errors
    ///
    /// See [`FitError`].
    pub fn fit(deviations: &[f64], degree: usize) -> Result<Self, FitError> {
        if !(1..=8).contains(&degree) {
            return Err(FitError::UnsupportedDegree(degree));
        }
        let needed = degree + 2;
        if deviations.len() < needed {
            return Err(FitError::TooFewSamples {
                got: deviations.len(),
                needed,
            });
        }
        if deviations.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(FitError::InvalidSample);
        }
        let mut sorted = deviations.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let scale = *sorted.last().expect("non-empty");
        if scale <= 0.0 {
            return Err(FitError::Degenerate);
        }
        let n = sorted.len();
        // Survival points: S(c_i) = 1 - i / n at each sorted deviation,
        // plus the anchor S(0) = 1.
        let mut xs = Vec::with_capacity(n + 1);
        let mut ys = Vec::with_capacity(n + 1);
        xs.push(0.0);
        ys.push(1.0);
        for (i, &c) in sorted.iter().enumerate() {
            xs.push(c / scale);
            ys.push(1.0 - (i + 1) as f64 / n as f64);
        }
        let design = Matrix::from_fn(xs.len(), degree + 1, |r, k| xs[r].powi(k as i32));
        let coefficients = least_squares(&design, &ys, 1e-9).map_err(|_| FitError::Degenerate)?;
        Ok(PolynomialPenalty {
            coefficients,
            scale,
        })
    }

    /// The coefficient vector (ascending powers).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The normalization scale in meters.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Evaluates the penalty at walking cost `c`, clamped into `[0, 1]`,
    /// with `g ≡ 0` beyond the fitted range (no opening farther out than
    /// any historical deviation).
    pub fn g(&self, c: f64) -> f64 {
        debug_assert!(c >= 0.0, "walking cost must be non-negative");
        if c > self.scale {
            return 0.0;
        }
        let x = c / self.scale;
        // Horner evaluation.
        let mut acc = 0.0;
        for &a in self.coefficients.iter().rev() {
            acc = acc * x + a;
        }
        acc.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            PolynomialPenalty::fit(&[1.0, 2.0], 3),
            Err(FitError::TooFewSamples { needed: 5, got: 2 })
        ));
        assert!(matches!(
            PolynomialPenalty::fit(&[1.0; 10], 0),
            Err(FitError::UnsupportedDegree(0))
        ));
        assert!(matches!(
            PolynomialPenalty::fit(&[1.0; 10], 9),
            Err(FitError::UnsupportedDegree(9))
        ));
        assert!(matches!(
            PolynomialPenalty::fit(&[1.0, -2.0, 3.0, 4.0], 1),
            Err(FitError::InvalidSample)
        ));
        assert!(matches!(
            PolynomialPenalty::fit(&[0.0; 12], 2),
            Err(FitError::Degenerate)
        ));
    }

    #[test]
    fn uniform_deviations_recover_type_ii_shape() {
        // Survival of Uniform(0, L) is exactly Type II: 1 - c/L.
        let l = 200.0;
        let samples: Vec<f64> = (1..=400).map(|i| i as f64 * l / 400.0).collect();
        let poly = PolynomialPenalty::fit(&samples, 1).expect("fit");
        for c in [0.0, 50.0, 100.0, 150.0, 199.0] {
            let expected = 1.0 - c / l;
            assert!(
                (poly.g(c) - expected).abs() < 0.02,
                "g({c}) = {} vs linear {expected}",
                poly.g(c)
            );
        }
        assert_eq!(poly.g(5.0 * l), 0.0);
    }

    #[test]
    fn boundary_behaviour_matches_closed_forms() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..500)
            .map(|_| rng.gen_range(0.0..300.0f64).powf(1.3))
            .collect();
        let poly = PolynomialPenalty::fit(&samples, 3).expect("fit");
        assert!(poly.g(0.0) > 0.9, "g(0) = {}", poly.g(0.0));
        assert!(poly.g(poly.scale()) < 0.1);
        assert_eq!(poly.g(poly.scale() * 2.0), 0.0);
        for c in (0..50).map(|k| k as f64 * poly.scale() / 50.0) {
            assert!((0.0..=1.0).contains(&poly.g(c)));
        }
    }

    #[test]
    fn fitted_penalty_tracks_bimodal_distribution() {
        // Half the deviations tiny (destination at a landmark), half in a
        // far ring — a shape none of the closed forms matches: the fitted
        // survival stays elevated through the ring.
        let mut samples = Vec::new();
        for i in 0..200 {
            samples.push(5.0 + (i % 20) as f64); // near cluster
            samples.push(400.0 + (i % 30) as f64); // far ring
        }
        let poly = PolynomialPenalty::fit(&samples, 6).expect("fit");
        // Survival across the plateau between the modes is ~0.5 (half the
        // mass beyond); the degree-6 fit should stay in its vicinity —
        // and critically stay non-zero at 380 m where Type II(L=200) is 0.
        let plateau: f64 = [150.0, 200.0, 250.0, 300.0]
            .iter()
            .map(|&c| poly.g(c))
            .sum::<f64>()
            / 4.0;
        assert!(
            (0.25..=0.75).contains(&plateau),
            "mean plateau penalty {plateau}"
        );
        assert!(poly.g(380.0) > 0.1, "g(380) = {}", poly.g(380.0));
    }

    #[test]
    fn higher_degree_fits_at_least_as_well() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..300)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                200.0 * u * u // quadratic-ish survival
            })
            .collect();
        let sse = |poly: &PolynomialPenalty| -> f64 {
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            sorted
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let s = 1.0 - (i + 1) as f64 / sorted.len() as f64;
                    (poly.g(c) - s).powi(2)
                })
                .sum()
        };
        let linear = PolynomialPenalty::fit(&samples, 1).expect("fit");
        let cubic = PolynomialPenalty::fit(&samples, 3).expect("fit");
        assert!(
            sse(&cubic) <= sse(&linear) + 1e-6,
            "cubic {:.4} vs linear {:.4}",
            sse(&cubic),
            sse(&linear)
        );
    }

    #[test]
    fn from_coefficients_constructs_directly() {
        // g(x) = 1 - x over scale 100.
        let poly = PolynomialPenalty::from_coefficients(vec![1.0, -1.0], 100.0);
        assert_eq!(poly.g(0.0), 1.0);
        assert!((poly.g(50.0) - 0.5).abs() < 1e-12);
        assert_eq!(poly.g(150.0), 0.0);
        assert_eq!(poly.coefficients(), &[1.0, -1.0]);
        assert_eq!(poly.scale(), 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = PolynomialPenalty::from_coefficients(vec![1.0], 0.0);
    }
}
