//! Bounded structured event journal.
//!
//! Each shard worker owns one [`EventJournal`]: a fixed-capacity ring
//! buffer of typed [`Event`]s. Recording is O(1) and allocation-free once
//! the ring has filled its pre-reserved capacity — when the ring is full
//! the oldest entry is overwritten and counted in
//! [`EventJournal::dropped`], so a quiet scrape cadence degrades to "most
//! recent N events" rather than unbounded memory.
//!
//! Every event carries a per-journal sequence number and a nanosecond
//! timestamp taken against a shared epoch `Instant` (the engine start), so
//! events drained from different shards are comparable and merge into one
//! fleet-wide ordered log ([`merge_event_batches`] /
//! [`EventLog::absorb`]).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Typed fleet events. Variants carry the scalar context an operator needs
/// to interpret the transition without replaying the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// The online algorithm opened a parking location at `(x, y)`.
    ParkingOpened {
        /// Easting of the new station, meters.
        x: f64,
        /// Northing of the new station, meters.
        y: f64,
    },
    /// The cost-doubling schedule advanced: the per-opening decision cost
    /// doubled into epoch `epoch`.
    EpochCrossed {
        /// Doubling epochs completed since bootstrap.
        epoch: u64,
        /// The new per-opening decision cost `f_dec`.
        decision_cost: f64,
    },
    /// A periodic 2-D KS re-test completed.
    KsTest {
        /// Peacock D-statistic of live window vs. history.
        d_statistic: f64,
        /// Derived similarity percentage.
        similarity_percent: f64,
        /// Penalty type in force before the test (paper type number;
        /// 0 = none).
        penalty_before: u8,
        /// Penalty type selected by the test.
        penalty_after: u8,
    },
    /// A deferred KS drift verdict committed at a doubling boundary: the
    /// re-test snapshotted one boundary earlier took effect at this one.
    KsVerdictCommitted {
        /// Total requests the shard had handled when the verdict's
        /// snapshot was taken (the boundary request count).
        requests: u64,
        /// The committed Peacock D-statistic.
        d_statistic: f64,
    },
    /// The router shed a request for a full shard.
    ShardShed {
        /// Requests in the shard mailbox when the shed happened.
        queue_depth: u64,
    },
    /// A tier-2 maintenance period dispatched operators.
    MaintenanceDispatch {
        /// Maintenance periods completed so far.
        period: u64,
        /// Cumulative maintenance cost in dollars.
        total_cost: f64,
    },
    /// The shard's admitted-request write-ahead log entry: one accepted
    /// destination, recorded *in apply order* before the decision state
    /// can change. Replaying the suffix past a checkpoint's high-water
    /// sequence reproduces the shard bit-identically.
    RequestAdmitted {
        /// Easting of the admitted destination, meters.
        x: f64,
        /// Northing of the admitted destination, meters.
        y: f64,
    },
    /// A hot shard split in two: the parent zone was bisected and its
    /// state partitioned by point membership.
    ShardSplit {
        /// The shard that split.
        parent: u64,
        /// Child keeping the parent's slot (and cumulative counters).
        lo: u64,
        /// Newly appended child shard.
        hi: u64,
    },
    /// Two cold shards merged into one.
    ShardMerged {
        /// First (surviving) parent.
        a: u64,
        /// Second parent, retired by the merge.
        b: u64,
        /// The surviving shard index after renumbering.
        into: u64,
    },
    /// A killed shard was respawned from its last checkpoint plus a WAL
    /// suffix replay.
    ShardRecovered {
        /// The recovered shard.
        shard: u64,
        /// WAL entries replayed past the checkpoint's high-water mark.
        replayed: u64,
    },
    /// An epochal re-optimization hot-swapped a shard's landmark set: the
    /// forecaster was retrained on the trailing window, JMS re-solved the
    /// zone (warm-started when the context allowed it), and the new
    /// landmarks committed through the moved-seat protocol without pausing
    /// the decision path.
    EpochSwapped {
        /// The shard whose landmark set was replaced.
        shard: u64,
        /// Re-optimization epoch stamped on the published landmark table.
        epoch: u64,
        /// Landmark count before the swap.
        landmarks_before: u64,
        /// Landmark count after the swap.
        landmarks_after: u64,
        /// Whether the solve took the warm incremental path (false = cold
        /// rebuild of the solver context).
        warm: bool,
    },
    /// An SLO rule entered breach: both burn-rate windows crossed 1.
    SloBreach {
        /// Index of the rule in the configured rule set.
        rule: u8,
        /// Fast-window signal value at breach.
        value: f64,
        /// The rule's threshold.
        threshold: f64,
        /// Fast-window burn rate (value / threshold, ≥ 1 at breach).
        burn_fast: f64,
        /// Slow-window burn rate (≥ 1 at breach).
        burn_slow: f64,
    },
    /// A breached SLO rule recovered: fast-window burn back under 1.
    SloRecovered {
        /// Index of the rule in the configured rule set.
        rule: u8,
        /// Fast-window burn rate at recovery.
        burn_fast: f64,
    },
}

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Per-journal sequence number, starting at 0.
    pub seq: u64,
    /// Nanoseconds since the journal's epoch.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Fixed-capacity ring of [`Event`]s. See the module docs.
#[derive(Debug, Clone)]
pub struct EventJournal {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    next_seq: u64,
    dropped: u64,
    epoch: Instant,
}

impl EventJournal {
    /// A journal holding at most `capacity` events (clamped to ≥ 1),
    /// timestamping against `epoch`. The buffer is reserved up front so
    /// recording never allocates.
    pub fn new(capacity: usize, epoch: Instant) -> Self {
        let cap = capacity.max(1);
        EventJournal {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            next_seq: 0,
            dropped: 0,
            epoch,
        }
    }

    /// Records `kind` now.
    pub fn record(&mut self, kind: EventKind) {
        let t_ns = self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.record_at(t_ns, kind);
    }

    /// Records `kind` at an explicit timestamp (tests; replaying external
    /// clocks).
    pub fn record_at(&mut self, t_ns: u64, kind: EventKind) {
        let ev = Event {
            seq: self.next_seq,
            t_ns,
            kind,
        };
        self.next_seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten before being drained.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events ever recorded (drained + held + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// The journal's epoch instant (shared across shards for comparable
    /// timestamps).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Drains every held event, oldest first, into `out`. The ring keeps
    /// its reserved capacity.
    pub fn drain_into(&mut self, out: &mut Vec<Event>) {
        out.extend(self.buf[self.head..].iter().copied());
        out.extend(self.buf[..self.head].iter().copied());
        self.buf.clear();
        self.head = 0;
    }

    /// [`EventJournal::drain_into`] returning a fresh vector.
    pub fn drain(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        self.drain_into(&mut out);
        out
    }
}

/// A shard-attributed event in the fleet-wide merged log. `shard` is
/// `None` for router-side events (sheds are journalled by the submitting
/// thread, not a shard worker).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Originating shard, or `None` for the router.
    pub shard: Option<usize>,
    /// The event itself (sequence numbers are per source).
    pub event: Event,
}

fn record_key(r: &EventRecord) -> (u64, usize, u64) {
    (r.event.t_ns, r.shard.unwrap_or(usize::MAX), r.event.seq)
}

/// Merges per-source drained batches into one log ordered by
/// `(t_ns, shard, seq)`. Each source's own order (its sequence numbers)
/// is preserved because timestamps are nondecreasing per source and ties
/// break on `seq`.
pub fn merge_event_batches(batches: Vec<(Option<usize>, Vec<Event>)>) -> Vec<EventRecord> {
    let mut out: Vec<EventRecord> = batches
        .into_iter()
        .flat_map(|(shard, events)| {
            events
                .into_iter()
                .map(move |event| EventRecord { shard, event })
        })
        .collect();
    out.sort_by_key(record_key);
    out
}

/// Aggregator-side accumulation of merged events, bounded to the newest
/// `capacity` records.
#[derive(Debug, Clone)]
pub struct EventLog {
    records: Vec<EventRecord>,
    cap: usize,
    dropped: u64,
}

impl EventLog {
    /// A log keeping the newest `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            records: Vec::new(),
            cap: capacity.max(1),
            dropped: 0,
        }
    }

    /// Merges freshly drained per-source batches ([`merge_event_batches`])
    /// and appends them; oldest records fall off the front once the bound
    /// is hit. Successive absorbs stay globally ordered because each
    /// source drains completely every time, so later batches only carry
    /// later timestamps.
    pub fn absorb(&mut self, batches: Vec<(Option<usize>, Vec<Event>)>) {
        self.records.extend(merge_event_batches(batches));
        if self.records.len() > self.cap {
            let excess = self.records.len() - self.cap;
            self.records.drain(..excess);
            self.dropped += excess as u64;
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Records discarded to honour the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shed(depth: u64) -> EventKind {
        EventKind::ShardShed { queue_depth: depth }
    }

    #[test]
    fn ring_wraps_overwriting_oldest() {
        let mut j = EventJournal::new(3, Instant::now());
        for i in 0..5u64 {
            j.record_at(i * 10, shed(i));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.capacity(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.total_recorded(), 5);
        let drained = j.drain();
        // Oldest two (seq 0, 1) were overwritten; the survivors come out
        // oldest-first with contiguous sequence numbers.
        let seqs: Vec<u64> = drained.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        let times: Vec<u64> = drained.iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![20, 30, 40]);
        assert!(j.is_empty());
        // Draining resets the ring but not the counters.
        j.record_at(99, shed(9));
        assert_eq!(j.drain()[0].seq, 5);
        assert_eq!(j.dropped(), 2);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut j = EventJournal::new(8, Instant::now());
        j.record(shed(1));
        j.record(shed(2));
        assert_eq!(j.dropped(), 0);
        let drained = j.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].t_ns <= drained[1].t_ns);
        assert_eq!([drained[0].seq, drained[1].seq], [0, 1]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut j = EventJournal::new(0, Instant::now());
        j.record_at(1, shed(0));
        j.record_at(2, shed(1));
        assert_eq!(j.len(), 1);
        assert_eq!(j.drain()[0].seq, 1);
    }

    #[test]
    fn cross_shard_merge_orders_by_time_then_shard_then_seq() {
        let epoch = Instant::now();
        let mut a = EventJournal::new(8, epoch);
        let mut b = EventJournal::new(8, epoch);
        let mut router = EventJournal::new(8, epoch);
        a.record_at(10, shed(0));
        a.record_at(30, shed(1));
        b.record_at(20, shed(2));
        b.record_at(30, shed(3)); // same instant as shard 0's second event
        router.record_at(5, shed(4));
        let merged = merge_event_batches(vec![
            (Some(1), b.drain()),
            (None, router.drain()),
            (Some(0), a.drain()),
        ]);
        let order: Vec<(u64, Option<usize>)> =
            merged.iter().map(|r| (r.event.t_ns, r.shard)).collect();
        assert_eq!(
            order,
            vec![
                (5, None),
                (10, Some(0)),
                (20, Some(1)),
                (30, Some(0)), // tie on t_ns: lower shard id first
                (30, Some(1)),
            ]
        );
        // Per-source sequence order survives the merge.
        let shard0: Vec<u64> = merged
            .iter()
            .filter(|r| r.shard == Some(0))
            .map(|r| r.event.seq)
            .collect();
        assert_eq!(shard0, vec![0, 1]);
    }

    #[test]
    fn event_log_bounds_and_counts_drops() {
        let mut log = EventLog::new(3);
        log.absorb(vec![(
            Some(0),
            (0..5u64)
                .map(|i| Event {
                    seq: i,
                    t_ns: i,
                    kind: shed(i),
                })
                .collect(),
        )]);
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.records()[0].event.seq, 2);
        // A later absorb appends after the retained tail.
        log.absorb(vec![(
            Some(1),
            vec![Event {
                seq: 0,
                t_ns: 100,
                kind: shed(9),
            }],
        )]);
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records().last().unwrap().shard, Some(1));
    }
}
