//! Arrival-series extraction for the prediction engine.
//!
//! The paper bins trips by ending location into 100 × 100 m cells and
//! forecasts the hourly arrival count per cell. These helpers turn a trip
//! stream into exactly those series, plus the per-window destination sets
//! consumed by the KS test and the placement algorithms.

use crate::time::Timestamp;
use crate::trips::Trip;
use esharing_geo::{Cell, Grid, Point};
use std::collections::HashMap;

/// Hourly arrival counts for one cell over `[start_hour, end_hour)`
/// absolute hour indices. Hours with no arrivals yield 0.
pub fn hourly_counts_for_cell(
    trips: &[Trip],
    grid: &Grid,
    cell: Cell,
    start_hour: u64,
    end_hour: u64,
) -> Vec<f64> {
    assert!(start_hour <= end_hour, "inverted hour range");
    let mut series = vec![0.0; (end_hour - start_hour) as usize];
    for t in trips {
        let h = t.start_time.hour_index();
        if h < start_hour || h >= end_hour {
            continue;
        }
        if grid.cell_of(t.end) == cell {
            series[(h - start_hour) as usize] += 1.0;
        }
    }
    series
}

/// Hourly total arrivals across the whole field over
/// `[start_hour, end_hour)`.
pub fn hourly_totals(trips: &[Trip], start_hour: u64, end_hour: u64) -> Vec<f64> {
    assert!(start_hour <= end_hour, "inverted hour range");
    let mut series = vec![0.0; (end_hour - start_hour) as usize];
    for t in trips {
        let h = t.start_time.hour_index();
        if h >= start_hour && h < end_hour {
            series[(h - start_hour) as usize] += 1.0;
        }
    }
    series
}

/// Per-cell arrival counts over a time window `[from, to)`.
pub fn cell_counts_in_window(
    trips: &[Trip],
    grid: &Grid,
    from: Timestamp,
    to: Timestamp,
) -> HashMap<Cell, u64> {
    let mut counts = HashMap::new();
    for t in trips {
        if t.start_time >= from && t.start_time < to {
            *counts.entry(grid.cell_of(t.end)).or_insert(0) += 1;
        }
    }
    counts
}

/// Destination points of all trips in `[from, to)` — the sample the 2-D KS
/// test and the online placement stream consume.
pub fn destinations_in_window(trips: &[Trip], from: Timestamp, to: Timestamp) -> Vec<Point> {
    trips
        .iter()
        .filter(|t| t.start_time >= from && t.start_time < to)
        .map(|t| t.end)
        .collect()
}

/// The `k` busiest cells by arrival count over the whole stream —
/// "the space of N can be reduced to filter out those less popular
/// locations" (§III-A).
pub fn busiest_cells(trips: &[Trip], grid: &Grid, k: usize) -> Vec<(Cell, u64)> {
    let mut counts: HashMap<Cell, u64> = HashMap::new();
    for t in trips {
        *counts.entry(grid.cell_of(t.end)).or_insert(0) += 1;
    }
    let mut v: Vec<(Cell, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use crate::trips::TripGenerator;
    use crate::SyntheticCity;

    fn sample_trips() -> Vec<Trip> {
        let city = SyntheticCity::generate(&CityConfig {
            trips_per_day: 800.0,
            ..CityConfig::default()
        });
        TripGenerator::new(&city, 31).generate_days(0, 2)
    }

    #[test]
    fn totals_cover_all_trips() {
        let trips = sample_trips();
        let series = hourly_totals(&trips, 0, 48);
        assert_eq!(series.len(), 48);
        assert_eq!(series.iter().sum::<f64>() as usize, trips.len());
    }

    #[test]
    fn cell_series_sums_to_window_count() {
        let trips = sample_trips();
        let grid = Grid::new(100.0);
        let (cell, count) = busiest_cells(&trips, &grid, 1)[0];
        let series = hourly_counts_for_cell(&trips, &grid, cell, 0, 48);
        assert_eq!(series.iter().sum::<f64>() as u64, count);
        assert!(count > 0);
    }

    #[test]
    fn window_filters_by_time() {
        let trips = sample_trips();
        let day0 = destinations_in_window(
            &trips,
            Timestamp::from_day_hour(0, 0),
            Timestamp::from_day_hour(1, 0),
        );
        let day1 = destinations_in_window(
            &trips,
            Timestamp::from_day_hour(1, 0),
            Timestamp::from_day_hour(2, 0),
        );
        assert_eq!(day0.len() + day1.len(), trips.len());
        assert!(!day0.is_empty() && !day1.is_empty());
    }

    #[test]
    fn cell_counts_consistent_with_destinations() {
        let trips = sample_trips();
        let grid = Grid::new(100.0);
        let from = Timestamp::from_day_hour(0, 6);
        let to = Timestamp::from_day_hour(0, 10);
        let counts = cell_counts_in_window(&trips, &grid, from, to);
        let dests = destinations_in_window(&trips, from, to);
        assert_eq!(counts.values().sum::<u64>() as usize, dests.len());
    }

    #[test]
    fn busiest_cells_sorted_descending() {
        let trips = sample_trips();
        let grid = Grid::new(100.0);
        let top = busiest_cells(&trips, &grid, 10);
        assert!(top.len() <= 10);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = hourly_totals(&[], 5, 2);
    }
}
