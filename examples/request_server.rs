//! Concurrent backend demo: the request server behind channels.
//!
//! The paper's architecture streams app requests to a server backend
//! (Fig. 3). This example stands the [`RequestServer`] up around a
//! bootstrapped system and fires requests from four client threads,
//! then inspects the serialized decision state.
//!
//! Run with: `cargo run --release --example request_server`

use e_sharing::core::server::RequestServer;
use e_sharing::core::{ESharing, SystemConfig};
use e_sharing::geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // Bootstrap the system on a synthetic historical window.
    let mut rng = StdRng::seed_from_u64(5);
    let history: Vec<Point> = (0..500)
        .map(|_| Point::new(rng.gen_range(0.0..3_000.0), rng.gen_range(0.0..3_000.0)))
        .collect();
    let mut system = ESharing::new(SystemConfig::default());
    system.bootstrap(&history);
    println!("landmarks: {}", system.landmarks().len());

    let server = RequestServer::start(system);
    let started = Instant::now();
    let mut clients = Vec::new();
    const CLIENTS: u64 = 4;
    const REQUESTS_PER_CLIENT: usize = 500;
    for c in 0..CLIENTS {
        let handle = server.handle();
        clients.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(100 + c);
            let mut opened = 0usize;
            for _ in 0..REQUESTS_PER_CLIENT {
                let destination =
                    Point::new(rng.gen_range(0.0..3_000.0), rng.gen_range(0.0..3_000.0));
                let decision = handle.submit(destination).expect("server is running");
                if decision.opened() {
                    opened += 1;
                }
            }
            opened
        }));
    }
    let opened: usize = clients.into_iter().map(|c| c.join().expect("client")).sum();
    let elapsed = started.elapsed();

    let snapshot = server.handle().snapshot().expect("server is running");
    println!(
        "served {} requests from {CLIENTS} threads in {:.1} ms ({:.0} req/s)",
        snapshot.requests_served,
        elapsed.as_secs_f64() * 1_000.0,
        snapshot.requests_served as f64 / elapsed.as_secs_f64()
    );
    println!(
        "{} stations now open ({opened} established online); placement cost {}",
        snapshot.stations.len(),
        snapshot.placement
    );

    let system = server.shutdown();
    assert_eq!(
        system.metrics().requests_served,
        CLIENTS * REQUESTS_PER_CLIENT as u64
    );
    println!(
        "clean shutdown; final avg walk {:.0} m",
        system.metrics().avg_walk_m()
    );
}
