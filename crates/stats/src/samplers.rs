//! Two-dimensional request-distribution samplers.
//!
//! §V-B of the paper studies the three deviation-penalty functions on
//! synthetic request streams drawn from *uniform*, *Poisson* and *normal*
//! distributions, "which correspond respectively to an increasing similarity
//! between the actual requests and the predicted requests (the offline
//! derived parking locating at the origin)". The samplers here produce the
//! same three shapes around a configurable center:
//!
//! * [`UniformField`] — arrivals anywhere in a square field (largest spread),
//! * [`PoissonRadial`] — arrivals concentrated at a mid-range ring from the
//!   center (radius distributed as a scaled Poisson variate),
//! * [`Gaussian2d`] — arrivals aggregated around the center (smallest
//!   spread).

use esharing_geo::{BBox, Point};
use rand::Rng;

/// A source of random 2-D arrival points.
///
/// The trait is object-safe so experiment harnesses can mix samplers at
/// runtime.
pub trait PointSampler {
    /// Draws one point.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Point;

    /// Draws `n` points.
    fn sample_n(&self, rng: &mut dyn rand::RngCore, n: usize) -> Vec<Point>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform arrivals over an axis-aligned field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformField {
    bbox: BBox,
}

impl UniformField {
    /// Uniform sampler over `bbox`.
    pub fn new(bbox: BBox) -> Self {
        UniformField { bbox }
    }

    /// Uniform sampler over a centered square of the given side.
    pub fn centered_square(center: Point, side: f64) -> Self {
        let half = side / 2.0;
        UniformField {
            bbox: BBox::new(
                center - Point::new(half, half),
                center + Point::new(half, half),
            ),
        }
    }

    /// The sampled region.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }
}

impl PointSampler for UniformField {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Point {
        Point::new(
            rng.gen_range(self.bbox.min().x..=self.bbox.max().x),
            rng.gen_range(self.bbox.min().y..=self.bbox.max().y),
        )
    }
}

/// Isotropic Gaussian arrivals around a center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian2d {
    center: Point,
    sigma: f64,
}

impl Gaussian2d {
    /// Gaussian sampler with standard deviation `sigma` (meters) per axis.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite.
    pub fn new(center: Point, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        Gaussian2d { center, sigma }
    }

    /// The distribution center.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Per-axis standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws a standard normal variate via Box–Muller.
    fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
        // Avoid ln(0).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl PointSampler for Gaussian2d {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Point {
        let dx = Self::standard_normal(rng) * self.sigma;
        let dy = Self::standard_normal(rng) * self.sigma;
        self.center + Point::new(dx, dy)
    }
}

/// Arrivals whose distance from the center follows a scaled Poisson
/// distribution (uniform angle), concentrating mass at a mid-range ring
/// `lambda * radial_scale` from the center — the paper's "Poisson" case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonRadial {
    center: Point,
    lambda: f64,
    radial_scale: f64,
}

impl PoissonRadial {
    /// Creates a sampler with Poisson rate `lambda` and `radial_scale`
    /// meters per Poisson count.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` or `radial_scale` is not positive and finite.
    pub fn new(center: Point, lambda: f64, radial_scale: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        assert!(
            radial_scale.is_finite() && radial_scale > 0.0,
            "radial_scale must be positive"
        );
        PoissonRadial {
            center,
            lambda,
            radial_scale,
        }
    }

    /// The distribution center.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Expected radius of an arrival, `lambda * radial_scale`.
    pub fn mean_radius(&self) -> f64 {
        self.lambda * self.radial_scale
    }
}

/// Draws a Poisson variate.
///
/// Uses Knuth's product method for small `lambda` and a normal
/// approximation for `lambda > 30` where the product method underflows.
pub fn poisson(rng: &mut dyn rand::RngCore, lambda: f64) -> u64 {
    assert!(lambda.is_finite() && lambda >= 0.0, "lambda must be >= 0");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let g = Gaussian2d::standard_normal(rng);
        let v = lambda + lambda.sqrt() * g + 0.5;
        return v.max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

impl PointSampler for PoissonRadial {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Point {
        let r = poisson(rng, self.lambda) as f64 * self.radial_scale;
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        self.center + Point::new(r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_bbox() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = UniformField::new(BBox::square(1000.0));
        for _ in 0..1000 {
            assert!(s.bbox().contains(s.sample(&mut rng)));
        }
    }

    #[test]
    fn uniform_centered_square_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Point::new(500.0, 500.0);
        let s = UniformField::centered_square(c, 200.0);
        let pts = s.sample_n(&mut rng, 4000);
        let mean = Point::centroid(pts.iter().copied()).unwrap();
        assert!(mean.distance(c) < 10.0, "mean {mean} too far from center");
        for p in pts {
            assert!((p.x - c.x).abs() <= 100.0 && (p.y - c.y).abs() <= 100.0);
        }
    }

    #[test]
    fn gaussian_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = Point::new(100.0, -50.0);
        let s = Gaussian2d::new(c, 50.0);
        let pts = s.sample_n(&mut rng, 8000);
        let mean = Point::centroid(pts.iter().copied()).unwrap();
        assert!(mean.distance(c) < 3.0);
        let var_x: f64 = pts.iter().map(|p| (p.x - c.x).powi(2)).sum::<f64>() / pts.len() as f64;
        assert!((var_x.sqrt() - 50.0).abs() < 3.0, "sd {}", var_x.sqrt());
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn gaussian_rejects_zero_sigma() {
        let _ = Gaussian2d::new(Point::ORIGIN, 0.0);
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(4);
        for lambda in [0.5, 3.0, 10.0, 50.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_radial_concentrates_at_ring() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = Point::new(0.0, 0.0);
        let s = PoissonRadial::new(c, 4.0, 100.0);
        assert_eq!(s.mean_radius(), 400.0);
        let pts = s.sample_n(&mut rng, 8000);
        let mean_r: f64 = pts.iter().map(|p| p.distance(c)).sum::<f64>() / pts.len() as f64;
        assert!((mean_r - 400.0).abs() < 20.0, "mean radius {mean_r}");
        // Mass at mid-range: nontrivially many points between 200 and 600.
        let mid = pts
            .iter()
            .filter(|p| (200.0..600.0).contains(&p.distance(c)))
            .count();
        assert!(mid as f64 / pts.len() as f64 > 0.6);
    }

    #[test]
    fn spread_ordering_matches_paper() {
        // Uniform is most spread out, normal the most aggregated — that is
        // the premise of the §V-B study.
        let mut rng = StdRng::seed_from_u64(6);
        let c = Point::new(500.0, 500.0);
        let uni = UniformField::centered_square(c, 1000.0);
        let poi = PoissonRadial::new(c, 3.0, 80.0);
        let gau = Gaussian2d::new(c, 80.0);
        let spread = |pts: &[Point]| -> f64 {
            pts.iter().map(|p| p.distance(c)).sum::<f64>() / pts.len() as f64
        };
        let su = spread(&uni.sample_n(&mut rng, 3000));
        let sp = spread(&poi.sample_n(&mut rng, 3000));
        let sg = spread(&gau.sample_n(&mut rng, 3000));
        assert!(su > sp && sp > sg, "spreads {su} {sp} {sg}");
    }

    #[test]
    fn sampler_is_object_safe() {
        let mut rng = StdRng::seed_from_u64(7);
        let samplers: Vec<Box<dyn PointSampler>> = vec![
            Box::new(UniformField::new(BBox::square(10.0))),
            Box::new(Gaussian2d::new(Point::ORIGIN, 1.0)),
            Box::new(PoissonRadial::new(Point::ORIGIN, 2.0, 1.0)),
        ];
        for s in &samplers {
            let p = s.sample(&mut rng);
            assert!(p.is_finite());
        }
    }
}
