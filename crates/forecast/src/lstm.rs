//! From-scratch stacked LSTM with backpropagation through time.
//!
//! This is the reproduction of the paper's prediction engine: "We stack 128
//! LSTM cells as the hidden layer and extend the depth of the network by
//! increasing the number of layers" (§V-A), trained to forecast per-grid
//! request counts from the previous `back` hours. The paper used
//! TensorFlow on a Tesla P100; this implementation is pure CPU Rust and
//! therefore defaults to a smaller hidden width, which is sufficient for
//! the hourly count series at laptop scale (the Table II orderings are
//! preserved — see `EXPERIMENTS.md`).
//!
//! Cell equations (gates packed in `[input, forget, candidate, output]`
//! row-blocks):
//!
//! ```text
//! z = W x_t + U h_{t-1} + b
//! i = σ(z_i)   f = σ(z_f)   g = tanh(z_g)   o = σ(z_o)
//! c_t = f ⊙ c_{t-1} + i ⊙ g
//! h_t = o ⊙ tanh(c_t)
//! ```
//!
//! Training is full BPTT over each window with per-sample Adam updates and
//! global gradient-norm clipping.

use crate::series::{sliding_windows, validate, MinMaxScaler};
use crate::{ForecastError, Forecaster};
use esharing_linalg::activation::{
    sigmoid, sigmoid_derivative_from_output, tanh_derivative_from_output,
};
use esharing_linalg::vecops;
use esharing_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for [`Lstm`].
#[derive(Debug, Clone, PartialEq)]
pub struct LstmConfig {
    /// Hidden state width per layer (the paper stacks 128 cells; the CPU
    /// default here is 24, ample for scalar hourly series).
    pub hidden: usize,
    /// Number of stacked LSTM layers (Table II explores 1–3).
    pub layers: usize,
    /// Lookback window in time steps (`back` in Table II).
    pub back: usize,
    /// Number of training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Global gradient-norm clip applied per sample.
    pub clip_norm: f64,
    /// RNG seed for weight init and sample shuffling (fully deterministic).
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            hidden: 24,
            layers: 2,
            back: 12,
            epochs: 80,
            learning_rate: 0.01,
            clip_norm: 5.0,
            seed: 42,
        }
    }
}

impl LstmConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::InvalidParameter`] if any dimension is zero
    /// or a rate is non-positive.
    pub fn validate(&self) -> Result<(), ForecastError> {
        let bad = |name, reason| Err(ForecastError::InvalidParameter { name, reason });
        if self.hidden == 0 {
            return bad("hidden", "must be at least 1");
        }
        if self.layers == 0 {
            return bad("layers", "must be at least 1");
        }
        if self.back == 0 {
            return bad("back", "must be at least 1");
        }
        if self.epochs == 0 {
            return bad("epochs", "must be at least 1");
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return bad("learning_rate", "must be positive");
        }
        if self.clip_norm.is_nan() || self.clip_norm <= 0.0 {
            return bad("clip_norm", "must be positive");
        }
        Ok(())
    }
}

/// A trainable tensor with its gradient and Adam moments.
#[derive(Debug, Clone)]
struct Param {
    value: Matrix,
    grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let value = Matrix::xavier(rows, cols, rng);
        Param {
            grad: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            value,
        }
    }
}

/// A trainable bias vector with its gradient and Adam moments.
#[derive(Debug, Clone)]
struct ParamVec {
    value: Vec<f64>,
    grad: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl ParamVec {
    fn zeros(n: usize) -> Self {
        ParamVec {
            value: vec![0.0; n],
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }
}

#[derive(Debug, Clone)]
struct LstmLayer {
    /// Input weights, `4H × in_dim`.
    w: Param,
    /// Recurrent weights, `4H × H`.
    u: Param,
    /// Bias, `4H` (forget-gate block initialized to 1.0 per standard
    /// practice, helping gradient flow early in training).
    b: ParamVec,
    hidden: usize,
    in_dim: usize,
}

/// Cached activations for one timestep of one layer.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
}

impl LstmLayer {
    fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = ParamVec::zeros(4 * hidden);
        for fb in b.value.iter_mut().skip(hidden).take(hidden) {
            *fb = 1.0;
        }
        LstmLayer {
            w: Param::xavier(4 * hidden, in_dim, rng),
            u: Param::xavier(4 * hidden, hidden, rng),
            b,
            hidden,
            in_dim,
        }
    }

    /// One forward step; returns `(h, cache)`.
    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, StepCache) {
        debug_assert_eq!(x.len(), self.in_dim);
        let h = self.hidden;
        // Fused gate pre-activation: one pass over W and U per gate row,
        // bit-identical to the matvec + add_assign sequence it replaces.
        let z = self
            .w
            .value
            .gate_matvec(x, &self.u.value, h_prev, &self.b.value);
        let i: Vec<f64> = z[0..h].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f64> = z[h..2 * h].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f64> = z[2 * h..3 * h].iter().map(|&v| v.tanh()).collect();
        let o: Vec<f64> = z[3 * h..4 * h].iter().map(|&v| sigmoid(v)).collect();
        let mut c = vecops::hadamard(&f, c_prev);
        vecops::add_assign(&mut c, &vecops::hadamard(&i, &g));
        let tanh_c: Vec<f64> = c.iter().map(|&v| v.tanh()).collect();
        let h_out = vecops::hadamard(&o, &tanh_c);
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        };
        (h_out, cache)
    }

    /// One backward step. `dh`/`dc` are gradients w.r.t. this step's
    /// outputs; returns `(dx, dh_prev, dc_prev)` and accumulates parameter
    /// gradients.
    fn step_backward(
        &mut self,
        cache: &StepCache,
        dh: &[f64],
        dc_in: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h = self.hidden;
        // dc = dc_in + dh * o * tanh'(c)
        let mut dc = dc_in.to_vec();
        for k in 0..h {
            dc[k] += dh[k] * cache.o[k] * tanh_derivative_from_output(cache.tanh_c[k]);
        }
        let mut dz = vec![0.0; 4 * h];
        for k in 0..h {
            // input gate
            let di = dc[k] * cache.g[k];
            dz[k] = di * sigmoid_derivative_from_output(cache.i[k]);
            // forget gate
            let df = dc[k] * cache.c_prev[k];
            dz[h + k] = df * sigmoid_derivative_from_output(cache.f[k]);
            // candidate
            let dg = dc[k] * cache.i[k];
            dz[2 * h + k] = dg * tanh_derivative_from_output(cache.g[k]);
            // output gate
            let do_ = dh[k] * cache.tanh_c[k];
            dz[3 * h + k] = do_ * sigmoid_derivative_from_output(cache.o[k]);
        }
        self.w.grad.add_outer(&dz, &cache.x, 1.0);
        self.u.grad.add_outer(&dz, &cache.h_prev, 1.0);
        vecops::add_assign(&mut self.b.grad, &dz);
        let dx = self.w.value.matvec_transposed(&dz);
        let dh_prev = self.u.value.matvec_transposed(&dz);
        let dc_prev: Vec<f64> = (0..h).map(|k| dc[k] * cache.f[k]).collect();
        (dx, dh_prev, dc_prev)
    }
}

/// Stacked LSTM forecaster (see the module documentation for the cell
/// equations).
#[derive(Debug, Clone)]
pub struct Lstm {
    config: LstmConfig,
    layers: Vec<LstmLayer>,
    /// Output head: `1 × H` weights and scalar bias.
    wy: Param,
    by: ParamVec,
    scaler: Option<MinMaxScaler>,
    adam_t: u64,
    /// Final training loss (mean squared error over the last epoch), for
    /// diagnostics.
    last_loss: f64,
}

impl Lstm {
    /// Creates an untrained LSTM with the given hyperparameters.
    ///
    /// # Errors
    ///
    /// Propagates [`LstmConfig::validate`] failures.
    pub fn new(config: LstmConfig) -> Result<Self, ForecastError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            let in_dim = if l == 0 { 1 } else { config.hidden };
            layers.push(LstmLayer::new(in_dim, config.hidden, &mut rng));
        }
        let wy = Param::xavier(1, config.hidden, &mut rng);
        let by = ParamVec::zeros(1);
        Ok(Lstm {
            config,
            layers,
            wy,
            by,
            scaler: None,
            adam_t: 0,
            last_loss: f64::NAN,
        })
    }

    /// The hyperparameters.
    pub fn config(&self) -> &LstmConfig {
        &self.config
    }

    /// Mean squared training loss of the last epoch, or NaN before fitting.
    pub fn last_loss(&self) -> f64 {
        self.last_loss
    }

    /// Forward pass over a scaled window; returns the scalar prediction and
    /// per-layer per-step caches (empty when `collect_caches` is false).
    fn forward(
        &self,
        window: &[f64],
        collect_caches: bool,
    ) -> (f64, Vec<Vec<StepCache>>, Vec<f64>) {
        let h = self.config.hidden;
        let mut caches: Vec<Vec<StepCache>> = vec![Vec::new(); self.layers.len()];
        let mut hs: Vec<Vec<f64>> = vec![vec![0.0; h]; self.layers.len()];
        let mut cs: Vec<Vec<f64>> = vec![vec![0.0; h]; self.layers.len()];
        for &x in window {
            let mut input = vec![x];
            for (l, layer) in self.layers.iter().enumerate() {
                let (h_new, cache) = layer.step(&input, &hs[l], &cs[l]);
                cs[l] = cache.c.clone();
                if collect_caches {
                    caches[l].push(cache);
                }
                hs[l] = h_new.clone();
                input = h_new;
            }
        }
        let top_h = hs.last().expect("at least one layer").clone();
        let y = vecops::dot(self.wy.value.row(0), &top_h) + self.by.value[0];
        (y, caches, top_h)
    }

    /// Backward pass for one sample; accumulates gradients. `dy` is the
    /// loss gradient w.r.t. the prediction.
    fn backward(&mut self, caches: &[Vec<StepCache>], top_h: &[f64], dy: f64) {
        let h = self.config.hidden;
        let steps = caches[0].len();
        // Head gradients.
        self.wy.grad.add_outer(&[dy], top_h, 1.0);
        self.by.grad[0] += dy;
        let dh_top_last = self.wy.value.matvec_transposed(&[dy]);
        // dh[l][t]: gradient flowing into layer l's hidden output at step t.
        // We sweep time backwards, carrying (dh, dc) per layer, adding the
        // cross-layer dx contribution of layer l+1 at each step.
        let n_layers = self.layers.len();
        let mut dh_carry: Vec<Vec<f64>> = vec![vec![0.0; h]; n_layers];
        let mut dc_carry: Vec<Vec<f64>> = vec![vec![0.0; h]; n_layers];
        // Extra per-step input gradients produced by the layer above.
        let mut dx_from_above: Vec<Vec<f64>> = vec![vec![0.0; h]; steps];
        dh_carry[n_layers - 1] = dh_top_last;
        for l in (0..n_layers).rev() {
            let mut dh = std::mem::take(&mut dh_carry[l]);
            let mut dc = std::mem::take(&mut dc_carry[l]);
            let mut dx_below: Vec<Vec<f64>> = Vec::with_capacity(steps);
            for t in (0..steps).rev() {
                if l < n_layers - 1 {
                    // Input gradient from the layer above at this step.
                    vecops::add_assign(&mut dh, &dx_from_above[t]);
                }
                let cache = &caches[l][t];
                let (dx, dh_prev, dc_prev) = self.layers[l].step_backward(cache, &dh, &dc);
                dx_below.push(dx);
                dh = dh_prev;
                dc = dc_prev;
            }
            if l > 0 {
                dx_below.reverse();
                dx_from_above = dx_below;
            }
        }
    }

    /// Clips all accumulated gradients to a global norm and applies Adam.
    fn apply_gradients(&mut self) {
        // Global norm across all parameter tensors.
        let mut sq = 0.0;
        self.for_each_param(|_, grad, _, _| {
            sq += grad.iter().map(|g| g * g).sum::<f64>();
        });
        let norm = sq.sqrt();
        let scale = if norm > self.config.clip_norm {
            self.config.clip_norm / norm
        } else {
            1.0
        };
        self.adam_t += 1;
        let t = self.adam_t;
        let lr = self.config.learning_rate;
        const BETA1: f64 = 0.9;
        const BETA2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - BETA1.powi(t as i32);
        let bc2 = 1.0 - BETA2.powi(t as i32);
        self.for_each_param(|value, grad, m, v| {
            for k in 0..value.len() {
                let g = grad[k] * scale;
                m[k] = BETA1 * m[k] + (1.0 - BETA1) * g;
                v[k] = BETA2 * v[k] + (1.0 - BETA2) * g * g;
                let m_hat = m[k] / bc1;
                let v_hat = v[k] / bc2;
                value[k] -= lr * m_hat / (v_hat.sqrt() + EPS);
                grad[k] = 0.0;
            }
        });
    }

    /// Runs `epochs` shuffled training epochs over `samples` with
    /// per-sample Adam updates, continuing from the current weights and
    /// optimizer state; records the last epoch's mean squared error.
    fn train_epochs(&mut self, samples: &[(Vec<f64>, f64)], epochs: usize, rng: &mut StdRng) {
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..epochs {
            order.shuffle(rng);
            let mut loss_sum = 0.0;
            for &idx in &order {
                let (window, target) = &samples[idx];
                let (y, caches, top_h) = self.forward(window, true);
                let err = y - target;
                loss_sum += err * err;
                self.backward(&caches, &top_h, err);
                self.apply_gradients();
            }
            self.last_loss = loss_sum / samples.len() as f64;
        }
    }

    /// Visits `(value, grad, m, v)` slices of every trainable tensor.
    fn for_each_param<F: FnMut(&mut [f64], &mut [f64], &mut [f64], &mut [f64])>(
        &mut self,
        mut f: F,
    ) {
        for layer in &mut self.layers {
            f(
                layer.w.value.as_mut_slice(),
                layer.w.grad.as_mut_slice(),
                layer.w.m.as_mut_slice(),
                layer.w.v.as_mut_slice(),
            );
            f(
                layer.u.value.as_mut_slice(),
                layer.u.grad.as_mut_slice(),
                layer.u.m.as_mut_slice(),
                layer.u.v.as_mut_slice(),
            );
            f(
                &mut layer.b.value,
                &mut layer.b.grad,
                &mut layer.b.m,
                &mut layer.b.v,
            );
        }
        f(
            self.wy.value.as_mut_slice(),
            self.wy.grad.as_mut_slice(),
            self.wy.m.as_mut_slice(),
            self.wy.v.as_mut_slice(),
        );
        f(
            &mut self.by.value,
            &mut self.by.grad,
            &mut self.by.m,
            &mut self.by.v,
        );
    }
}

impl Forecaster for Lstm {
    fn fit(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        validate(series)?;
        let needed = self.config.back + 2;
        if series.len() < needed {
            return Err(ForecastError::SeriesTooShort {
                needed,
                got: series.len(),
            });
        }
        let scaler = MinMaxScaler::fit(series)?;
        let scaled = scaler.scale_all(series);
        let samples = sliding_windows(&scaled, self.config.back);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        self.train_epochs(&samples, self.config.epochs, &mut rng);
        self.scaler = Some(scaler);
        Ok(())
    }

    fn fit_incremental(&mut self, series: &[f64]) -> Result<(), ForecastError> {
        // Warm continuation is only meaningful once the network has been
        // trained; before that, an incremental fit IS the cold fit.
        if self.scaler.is_none() {
            return self.fit(series);
        }
        validate(series)?;
        let needed = self.config.back + 2;
        if series.len() < needed {
            return Err(ForecastError::SeriesTooShort {
                needed,
                got: series.len(),
            });
        }
        // Re-fit the scaler: the trailing window's range may have drifted
        // away from the original training range.
        let scaler = MinMaxScaler::fit(series)?;
        let scaled = scaler.scale_all(series);
        let samples = sliding_windows(&scaled, self.config.back);
        // A quarter of the cold epoch budget: the weights already encode
        // the demand shape, so the warm retrain only tracks the drift.
        let warm_epochs = self.config.epochs.div_ceil(4);
        // Fold the Adam step counter into the shuffle seed so successive
        // warm refits draw fresh — but fully deterministic — orders.
        let mut rng =
            StdRng::seed_from_u64(self.config.seed.wrapping_add(1).wrapping_add(self.adam_t));
        self.train_epochs(&samples, warm_epochs, &mut rng);
        self.scaler = Some(scaler);
        Ok(())
    }

    fn forecast(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>, ForecastError> {
        let scaler = self.scaler.ok_or(ForecastError::NotFitted)?;
        validate(history)?;
        if history.len() < self.config.back {
            return Err(ForecastError::SeriesTooShort {
                needed: self.config.back,
                got: history.len(),
            });
        }
        let mut window: Vec<f64> = history[history.len() - self.config.back..]
            .iter()
            .map(|&v| scaler.scale(v))
            .collect();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let (y, _, _) = self.forward(&window, false);
            out.push(scaler.unscale(y));
            window.remove(0);
            window.push(y);
        }
        Ok(out)
    }

    fn name(&self) -> String {
        format!(
            "LSTM({}-layer, back={})",
            self.config.layers, self.config.back
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(layers: usize, back: usize) -> LstmConfig {
        LstmConfig {
            hidden: 8,
            layers,
            back,
            epochs: 60,
            learning_rate: 0.02,
            clip_norm: 5.0,
            seed: 7,
        }
    }

    #[test]
    fn config_validation() {
        let mut c = LstmConfig::default();
        assert!(c.validate().is_ok());
        c.hidden = 0;
        assert!(c.validate().is_err());
        let c = LstmConfig {
            learning_rate: 0.0,
            ..LstmConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LstmConfig {
            layers: 0,
            ..LstmConfig::default()
        };
        assert!(Lstm::new(c).is_err());
    }

    #[test]
    fn not_fitted_error() {
        let lstm = Lstm::new(small_config(1, 4)).unwrap();
        assert_eq!(lstm.forecast(&[1.0; 8], 1), Err(ForecastError::NotFitted));
    }

    #[test]
    fn short_series_rejected() {
        let mut lstm = Lstm::new(small_config(1, 10)).unwrap();
        assert!(matches!(
            lstm.fit(&[1.0; 5]),
            Err(ForecastError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn learns_constant_series() {
        let mut lstm = Lstm::new(small_config(1, 4)).unwrap();
        let series = vec![5.0; 30];
        lstm.fit(&series).unwrap();
        let f = lstm.forecast(&series, 3).unwrap();
        for v in f {
            assert!((v - 5.0).abs() < 0.5, "constant forecast {v}");
        }
    }

    #[test]
    fn learns_periodic_series() {
        // Period-6 sinusoid; LSTM should approximate the next values much
        // better than the series mean.
        let series: Vec<f64> = (0..120)
            .map(|t| 10.0 + 5.0 * (t as f64 * std::f64::consts::TAU / 6.0).sin())
            .collect();
        let mut cfg = small_config(1, 6);
        cfg.epochs = 120;
        let mut lstm = Lstm::new(cfg).unwrap();
        lstm.fit(&series[..100]).unwrap();
        let f = lstm.forecast(&series[..100], 6).unwrap();
        let mut err = 0.0;
        for (k, v) in f.iter().enumerate() {
            let truth = 10.0 + 5.0 * ((100 + k) as f64 * std::f64::consts::TAU / 6.0).sin();
            err += (v - truth).powi(2);
        }
        let rmse = (err / 6.0).sqrt();
        // Mean-only forecaster has RMSE ~ 3.5 here; require clearly better.
        assert!(rmse < 2.0, "rmse {rmse}");
    }

    #[test]
    fn training_reduces_loss() {
        let series: Vec<f64> = (0..60).map(|t| (t % 7) as f64).collect();
        let mut short = Lstm::new(LstmConfig {
            epochs: 2,
            ..small_config(1, 7)
        })
        .unwrap();
        short.fit(&series).unwrap();
        let loss_early = short.last_loss();
        let mut long = Lstm::new(LstmConfig {
            epochs: 80,
            ..small_config(1, 7)
        })
        .unwrap();
        long.fit(&series).unwrap();
        let loss_late = long.last_loss();
        assert!(
            loss_late < loss_early,
            "training did not reduce loss: {loss_early} -> {loss_late}"
        );
    }

    #[test]
    fn stacked_layers_forward_backward_run() {
        let series: Vec<f64> = (0..50).map(|t| ((t % 5) * 2) as f64).collect();
        for layers in [1, 2, 3] {
            let mut cfg = small_config(layers, 5);
            cfg.epochs = 10;
            let mut lstm = Lstm::new(cfg).unwrap();
            lstm.fit(&series).unwrap();
            let f = lstm.forecast(&series, 4).unwrap();
            assert_eq!(f.len(), 4);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let series: Vec<f64> = (0..40).map(|t| (t % 4) as f64 + 1.0).collect();
        let run = || {
            let mut cfg = small_config(2, 4);
            cfg.epochs = 15;
            let mut lstm = Lstm::new(cfg).unwrap();
            lstm.fit(&series).unwrap();
            lstm.forecast(&series, 3).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gradient_check_single_layer() {
        // Numeric vs analytic gradient on a tiny network and window.
        let cfg = LstmConfig {
            hidden: 3,
            layers: 1,
            back: 4,
            epochs: 1,
            learning_rate: 0.01,
            clip_norm: 1e9,
            seed: 3,
        };
        let mut lstm = Lstm::new(cfg).unwrap();
        let window = [0.2, 0.7, 0.4, 0.9];
        let target = 0.5;
        // Analytic gradient of 0.5 * (y - t)^2.
        let (y, caches, top_h) = lstm.forward(&window, true);
        lstm.backward(&caches, &top_h, y - target);
        // Collect analytic grads for layer-0 W.
        let analytic = lstm.layers[0].w.grad.clone();
        let eps = 1e-6;
        for idx in 0..analytic.as_slice().len() {
            let orig = lstm.layers[0].w.value.as_slice()[idx];
            lstm.layers[0].w.value.as_mut_slice()[idx] = orig + eps;
            let (y_plus, _, _) = lstm.forward(&window, false);
            lstm.layers[0].w.value.as_mut_slice()[idx] = orig - eps;
            let (y_minus, _, _) = lstm.forward(&window, false);
            lstm.layers[0].w.value.as_mut_slice()[idx] = orig;
            let loss_plus = 0.5 * (y_plus - target).powi(2);
            let loss_minus = 0.5 * (y_minus - target).powi(2);
            let numeric = (loss_plus - loss_minus) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (numeric - a).abs() < 1e-5,
                "grad mismatch at {idx}: numeric {numeric} analytic {a}"
            );
        }
    }

    #[test]
    fn gradient_check_stacked_recurrent() {
        // Same check for the recurrent weights of the *second* layer, which
        // exercises the cross-layer dx propagation.
        let cfg = LstmConfig {
            hidden: 2,
            layers: 2,
            back: 3,
            epochs: 1,
            learning_rate: 0.01,
            clip_norm: 1e9,
            seed: 5,
        };
        let mut lstm = Lstm::new(cfg).unwrap();
        let window = [0.1, 0.8, 0.3];
        let target = 0.4;
        let (y, caches, top_h) = lstm.forward(&window, true);
        lstm.backward(&caches, &top_h, y - target);
        let analytic = lstm.layers[1].u.grad.clone();
        let eps = 1e-6;
        for idx in 0..analytic.as_slice().len() {
            let orig = lstm.layers[1].u.value.as_slice()[idx];
            lstm.layers[1].u.value.as_mut_slice()[idx] = orig + eps;
            let (y_plus, _, _) = lstm.forward(&window, false);
            lstm.layers[1].u.value.as_mut_slice()[idx] = orig - eps;
            let (y_minus, _, _) = lstm.forward(&window, false);
            lstm.layers[1].u.value.as_mut_slice()[idx] = orig;
            let numeric =
                (0.5 * (y_plus - target).powi(2) - 0.5 * (y_minus - target).powi(2)) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (numeric - a).abs() < 1e-5,
                "grad mismatch at {idx}: numeric {numeric} analytic {a}"
            );
        }
        // And layer-0 input weights through the stack.
        let analytic0 = lstm.layers[0].w.grad.clone();
        for idx in 0..analytic0.as_slice().len() {
            let orig = lstm.layers[0].w.value.as_slice()[idx];
            lstm.layers[0].w.value.as_mut_slice()[idx] = orig + eps;
            let (y_plus, _, _) = lstm.forward(&window, false);
            lstm.layers[0].w.value.as_mut_slice()[idx] = orig - eps;
            let (y_minus, _, _) = lstm.forward(&window, false);
            lstm.layers[0].w.value.as_mut_slice()[idx] = orig;
            let numeric =
                (0.5 * (y_plus - target).powi(2) - 0.5 * (y_minus - target).powi(2)) / (2.0 * eps);
            let a = analytic0.as_slice()[idx];
            assert!(
                (numeric - a).abs() < 1e-5,
                "layer0 grad mismatch at {idx}: numeric {numeric} analytic {a}"
            );
        }
    }

    #[test]
    fn incremental_fit_on_unfitted_model_is_cold_fit() {
        let series: Vec<f64> = (0..40).map(|t| (t % 5) as f64 + 1.0).collect();
        let mut cold = Lstm::new(small_config(1, 5)).unwrap();
        cold.fit(&series).unwrap();
        let mut warm = Lstm::new(small_config(1, 5)).unwrap();
        warm.fit_incremental(&series).unwrap();
        assert_eq!(
            cold.forecast(&series, 3).unwrap(),
            warm.forecast(&series, 3).unwrap()
        );
    }

    #[test]
    fn incremental_fit_tracks_level_shift() {
        // Train on one level, shift the series, warm-retrain on the
        // trailing window: forecasts must follow the new level.
        let mut cfg = small_config(1, 4);
        cfg.epochs = 80;
        let mut lstm = Lstm::new(cfg).unwrap();
        let before = vec![5.0; 40];
        lstm.fit(&before).unwrap();
        let after = vec![12.0; 40];
        lstm.fit_incremental(&after).unwrap();
        let f = lstm.forecast(&after, 2).unwrap();
        for v in f {
            assert!(
                (v - 12.0).abs() < 2.0,
                "warm retrain did not track the shift: {v}"
            );
        }
    }

    #[test]
    fn incremental_fit_deterministic() {
        let series: Vec<f64> = (0..50).map(|t| ((t % 6) * 2) as f64).collect();
        let tail: Vec<f64> = (0..50).map(|t| ((t % 6) * 3) as f64).collect();
        let run = || {
            let mut cfg = small_config(1, 6);
            cfg.epochs = 20;
            let mut lstm = Lstm::new(cfg).unwrap();
            lstm.fit(&series).unwrap();
            lstm.fit_incremental(&tail).unwrap();
            lstm.forecast(&tail, 3).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn incremental_fit_rejects_short_series() {
        let mut lstm = Lstm::new(small_config(1, 10)).unwrap();
        let series: Vec<f64> = (0..30).map(|t| (t % 7) as f64).collect();
        lstm.fit(&series).unwrap();
        assert!(matches!(
            lstm.fit_incremental(&[1.0; 5]),
            Err(ForecastError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn name_mentions_structure() {
        let lstm = Lstm::new(small_config(2, 12)).unwrap();
        assert_eq!(lstm.name(), "LSTM(2-layer, back=12)");
    }
}
