//! Lock-cheap metrics registry.
//!
//! A [`Registry`] is owned by exactly one worker thread (a shard worker, a
//! request-server worker, a simulation loop), so every update is a plain
//! `&mut` field write — no atomics, no locks, no hashing on the hot path.
//! Metrics are registered once at startup and updated through typed index
//! handles ([`CounterId`], [`GaugeId`], [`HistogramId`]) that are `Copy`
//! and resolve to a vector slot.
//!
//! Cross-thread visibility happens at *snapshot* time: the owner produces
//! a [`RegistrySnapshot`] (a plain value), ships it over a channel, and
//! the aggregator merges per-shard snapshots into fleet totals with
//! [`RegistrySnapshot::fleet_sum`] — the same merge-by-addition discipline
//! the rest of the system uses for `SystemMetrics` and
//! [`LatencyHistogram`].

use crate::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How a sample combines when per-shard snapshots merge into fleet totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeMode {
    /// Running sum: fleet value is the sum over shards (counters,
    /// histograms, additive gauges like open-station counts or cost
    /// totals).
    Sum,
    /// Instantaneous per-shard reading with no meaningful fleet sum (a KS
    /// D-statistic, a cost threshold). Dropped from fleet totals; exposed
    /// per shard under a `shard` label instead.
    PerShard,
}

/// One exported sample: a metric name, its help text, its label pairs, and
/// the value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample<T> {
    /// Metric family name (e.g. `esharing_decisions_total`).
    pub name: String,
    /// One-line description carried into `# HELP` exposition.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Fleet-merge behaviour.
    pub merge: MergeMode,
    /// The sampled value.
    pub value: T,
}

impl<T> MetricSample<T> {
    fn key_matches(&self, other: &MetricSample<T>) -> bool {
        self.name == other.name && self.labels == other.labels
    }
}

/// Typed handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Typed handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Typed handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Single-owner metrics registry. See the module docs for the threading
/// model.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<MetricSample<u64>>,
    gauges: Vec<MetricSample<f64>>,
    histograms: Vec<MetricSample<LatencyHistogram>>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) a counter named `name`. Registration is
    /// idempotent per `(name, labels)` key, so bridges can re-register
    /// without duplicating series.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterId {
        self.counter_with(name, help, &[])
    }

    /// [`Registry::counter`] with label pairs.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterId {
        let labels = owned_labels(labels);
        if let Some(i) = self
            .counters
            .iter()
            .position(|s| s.name == name && s.labels == labels)
        {
            return CounterId(i);
        }
        self.counters.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            merge: MergeMode::Sum,
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, merge: MergeMode) -> GaugeId {
        self.gauge_with(name, help, merge, &[])
    }

    /// [`Registry::gauge`] with label pairs.
    pub fn gauge_with(
        &mut self,
        name: &str,
        help: &str,
        merge: MergeMode,
        labels: &[(&str, &str)],
    ) -> GaugeId {
        let labels = owned_labels(labels);
        if let Some(i) = self
            .gauges
            .iter()
            .position(|s| s.name == name && s.labels == labels)
        {
            return GaugeId(i);
        }
        self.gauges.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            merge,
            value: 0.0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a latency histogram.
    pub fn histogram(&mut self, name: &str, help: &str) -> HistogramId {
        self.histogram_with(name, help, &[])
    }

    /// [`Registry::histogram`] with label pairs.
    pub fn histogram_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> HistogramId {
        let labels = owned_labels(labels);
        if let Some(i) = self
            .histograms
            .iter()
            .position(|s| s.name == name && s.labels == labels)
        {
            return HistogramId(i);
        }
        self.histograms.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            merge: MergeMode::Sum,
            value: LatencyHistogram::new(),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Raises a counter to the absolute value `v` if it is below it —
    /// keeps the counter monotone while letting snapshot-time bridges
    /// inject externally accumulated totals.
    #[inline]
    pub fn raise_to(&mut self, id: CounterId, v: u64) {
        let c = &mut self.counters[id.0].value;
        *c = (*c).max(v);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].value = v;
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Records a duration into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, d: Duration) {
        self.histograms[id.0].value.record(d);
    }

    /// Records nanoseconds into a histogram.
    #[inline]
    pub fn observe_ns(&mut self, id: HistogramId, ns: u64) {
        self.histograms[id.0].value.record_ns(ns);
    }

    /// Read access to a registered histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &LatencyHistogram {
        &self.histograms[id.0].value
    }

    /// Number of registered series across all three kinds.
    pub fn series(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// A point-in-time copy of every registered series.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// Point-in-time copy of a [`Registry`]: plain data, safe to ship across
/// threads and merge fleet-wide.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter samples in registration order.
    pub counters: Vec<MetricSample<u64>>,
    /// Gauge samples in registration order.
    pub gauges: Vec<MetricSample<f64>>,
    /// Histogram samples in registration order.
    pub histograms: Vec<MetricSample<LatencyHistogram>>,
}

impl RegistrySnapshot {
    /// No series at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Returns a copy with `(key, value)` appended to every sample's
    /// labels — how the aggregator stamps shard ids onto per-shard series.
    pub fn with_label(&self, key: &str, value: &str) -> RegistrySnapshot {
        let mut out = self.clone();
        let pair = (key.to_string(), value.to_string());
        for s in &mut out.counters {
            s.labels.push(pair.clone());
        }
        for s in &mut out.gauges {
            s.labels.push(pair.clone());
        }
        for s in &mut out.histograms {
            s.labels.push(pair.clone());
        }
        out
    }

    /// Merges `other` into `self` by `(name, labels)` key: counters and
    /// histograms add, [`MergeMode::Sum`] gauges add, and
    /// [`MergeMode::PerShard`] gauges are skipped (they only make sense
    /// under a shard label, which [`RegistrySnapshot::with_label`]
    /// provides on the unmerged copies). Unknown keys append, preserving
    /// first-seen order.
    pub fn merge_from(&mut self, other: &RegistrySnapshot) {
        for s in &other.counters {
            if let Some(dst) = self.counters.iter_mut().find(|d| d.key_matches(s)) {
                dst.value += s.value;
            } else {
                self.counters.push(s.clone());
            }
        }
        for s in &other.gauges {
            if s.merge == MergeMode::PerShard {
                continue;
            }
            if let Some(dst) = self.gauges.iter_mut().find(|d| d.key_matches(s)) {
                dst.value += s.value;
            } else {
                self.gauges.push(s.clone());
            }
        }
        for s in &other.histograms {
            if let Some(dst) = self.histograms.iter_mut().find(|d| d.key_matches(s)) {
                dst.value += s.value.clone();
            } else {
                self.histograms.push(s.clone());
            }
        }
    }

    /// Fleet totals across shards: the merge-by-addition fold of
    /// [`RegistrySnapshot::merge_from`] over all parts.
    pub fn fleet_sum<'a, I: IntoIterator<Item = &'a RegistrySnapshot>>(parts: I) -> Self {
        let mut out = RegistrySnapshot::default();
        for p in parts {
            out.merge_from(p);
        }
        out
    }

    /// Sum of every counter sample named `name` (any labels).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// First gauge sample named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|s| s.name == name).map(|s| s.value)
    }

    /// Merged histogram over every sample named `name` (any labels).
    pub fn histogram_total(&self, name: &str) -> LatencyHistogram {
        self.histograms
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value.clone())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_key() {
        let mut r = Registry::new();
        let a = r.counter("hits", "hits");
        let b = r.counter("hits", "hits");
        assert_eq!(a, b);
        let c = r.counter_with("hits", "hits", &[("stage", "nn")]);
        assert_ne!(a, c);
        r.inc(a);
        r.add(c, 5);
        assert_eq!(r.counter_value(a), 1);
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.series(), 2);
    }

    #[test]
    fn raise_to_is_monotone() {
        let mut r = Registry::new();
        let c = r.counter("dropped", "dropped");
        r.raise_to(c, 7);
        r.raise_to(c, 3);
        assert_eq!(r.counter_value(c), 7);
    }

    #[test]
    fn gauges_and_histograms_roundtrip() {
        let mut r = Registry::new();
        let g = r.gauge("ks_d", "d stat", MergeMode::PerShard);
        r.set(g, 0.25);
        assert_eq!(r.gauge_value(g), 0.25);
        let h = r.histogram("lat_ns", "latency");
        r.observe_ns(h, 1_000);
        r.observe(h, Duration::from_micros(2));
        assert_eq!(r.histogram_ref(h).count(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("ks_d"), Some(0.25));
        assert_eq!(snap.histogram_total("lat_ns").count(), 2);
    }

    #[test]
    fn fleet_sum_adds_counters_and_histograms_drops_pershard_gauges() {
        let shard = |decisions: u64, stations: f64, d: f64, ns: u64| {
            let mut r = Registry::new();
            let c = r.counter("decisions", "n");
            r.add(c, decisions);
            let g = r.gauge("stations", "open", MergeMode::Sum);
            r.set(g, stations);
            let p = r.gauge("ks_d", "d", MergeMode::PerShard);
            r.set(p, d);
            let h = r.histogram("lat", "ns");
            r.observe_ns(h, ns);
            r.snapshot()
        };
        let a = shard(3, 10.0, 0.1, 100);
        let b = shard(5, 20.0, 0.9, 300);
        let fleet = RegistrySnapshot::fleet_sum([&a, &b]);
        assert_eq!(fleet.counter_total("decisions"), 8);
        assert_eq!(fleet.gauge("stations"), Some(30.0));
        assert_eq!(fleet.gauge("ks_d"), None, "PerShard gauges must not sum");
        let h = fleet.histogram_total("lat");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), 300);
    }

    #[test]
    fn with_label_disambiguates_shards_in_fleet_merge() {
        let mut r = Registry::new();
        let c = r.counter("decisions", "n");
        r.add(c, 2);
        let a = r.snapshot().with_label("shard", "0");
        let b = r.snapshot().with_label("shard", "1");
        let fleet = RegistrySnapshot::fleet_sum([&a, &b]);
        // Different labels -> distinct series, both kept.
        assert_eq!(fleet.counters.len(), 2);
        assert_eq!(fleet.counter_total("decisions"), 4);
        assert_eq!(a.counters[0].labels, vec![("shard".into(), "0".into())]);
    }
}
