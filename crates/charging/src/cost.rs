//! The charging cost model (Eqs. 10–11, Fig. 7).

use serde::{Deserialize, Serialize};

/// Unit costs of a charging tour.
///
/// All costs are in the same monetary unit (the paper uses dollars, with a
/// unit delay cost of $5 and unit energy cost of $2 in §V).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargingCostParams {
    /// Service cost `q` per station stop (parking tickets, setup, …).
    pub service_q: f64,
    /// Delay cost `d` per position in the service sequence (monetized
    /// missed demand).
    pub delay_d: f64,
    /// Energy cost `b` per bike charged or battery swapped.
    pub energy_b: f64,
}

impl Default for ChargingCostParams {
    fn default() -> Self {
        // §V experimental parameters: d = $5, b = $2; q defaults to $60 so
        // a ~25-station tour costs ~$1500 in service, matching Table VI.
        ChargingCostParams {
            service_q: 60.0,
            delay_d: 5.0,
            energy_b: 2.0,
        }
    }
}

impl ChargingCostParams {
    /// Creates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any cost is negative or non-finite.
    pub fn new(service_q: f64, delay_d: f64, energy_b: f64) -> Self {
        for (name, v) in [("q", service_q), ("d", delay_d), ("b", energy_b)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "cost {name} must be >= 0, got {v}"
            );
        }
        ChargingCostParams {
            service_q,
            delay_d,
            energy_b,
        }
    }

    /// Cost of serving the station in position `t` (0-based: the first
    /// stop incurs no delay, matching Eq. 10's `Σ t·d = (n²−n)/2·d`)
    /// of the sequence, holding `l_i` low bikes: `b·l_i + q + t·d`.
    pub fn station_cost(&self, l_i: usize, t: usize) -> f64 {
        self.energy_b * l_i as f64 + self.service_q + t as f64 * self.delay_d
    }

    /// Total tour cost for `n` stations holding `l` low bikes in total
    /// (Eq. 10): `n·q + l·b + (n²−n)/2·d`.
    pub fn total_cost(&self, n: usize, l: usize) -> f64 {
        let n_f = n as f64;
        n_f * self.service_q + l as f64 * self.energy_b + (n_f * n_f - n_f) / 2.0 * self.delay_d
    }

    /// The cost-saving upper bound Δᵢ = q + t·d freed when station `i`
    /// (in 0-based position `t`) no longer needs a visit (Eq. 12).
    pub fn station_saving(&self, t: usize) -> f64 {
        self.service_q + t as f64 * self.delay_d
    }

    /// The savings ratio of aggregating `n` stations down to `m`
    /// (Eq. 11): `1 − (m·q + (m²−m)d/2) / (n·q + (n²−n)d/2)`.
    ///
    /// The `l·b` energy term cancels because every bike is still charged.
    ///
    /// # Panics
    ///
    /// Panics if `m > n` or `n == 0`.
    pub fn savings_ratio(&self, n: usize, m: usize) -> f64 {
        assert!(n > 0, "need at least one station");
        assert!(m <= n, "aggregated count m={m} exceeds n={n}");
        let cost = |k: usize| {
            let k_f = k as f64;
            k_f * self.service_q + (k_f * k_f - k_f) / 2.0 * self.delay_d
        };
        1.0 - cost(m) / cost(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_matches_eq_10() {
        let p = ChargingCostParams::new(10.0, 2.0, 3.0);
        // n=4, l=7: 4*10 + 7*3 + (16-4)/2*2 = 40 + 21 + 12 = 73.
        assert_eq!(p.total_cost(4, 7), 73.0);
        assert_eq!(p.total_cost(0, 0), 0.0);
        assert_eq!(p.total_cost(1, 0), 10.0);
    }

    #[test]
    fn total_cost_equals_sum_of_station_costs() {
        let p = ChargingCostParams::new(7.0, 1.5, 2.0);
        let loads = [3usize, 0, 5, 2, 8];
        let sum: f64 = loads
            .iter()
            .enumerate()
            .map(|(idx, &l)| p.station_cost(l, idx))
            .sum();
        let total = p.total_cost(loads.len(), loads.iter().sum());
        assert!((sum - total).abs() < 1e-9);
    }

    #[test]
    fn savings_ratio_extremes() {
        let p = ChargingCostParams::default();
        assert_eq!(p.savings_ratio(10, 10), 0.0);
        assert_eq!(p.savings_ratio(10, 0), 1.0);
        let half = p.savings_ratio(10, 5);
        assert!(half > 0.0 && half < 1.0);
    }

    #[test]
    fn savings_quadratic_in_m() {
        // Fig. 7(a): "for fixed n, smaller m has quadratically higher cost
        // saving" — the marginal saving grows as m shrinks.
        let p = ChargingCostParams::new(10.0, 5.0, 2.0);
        let n = 20;
        let s = |m| p.savings_ratio(n, m);
        // m/n = 0.65 brings ~50% saving for delay-dominated costs.
        let mid = s(13);
        assert!((0.30..0.60).contains(&mid), "saving at m/n=0.65: {mid}");
        // Monotone: fewer stations, more saving.
        for m in 1..n {
            assert!(s(m) > s(m + 1));
        }
    }

    #[test]
    fn saving_grows_with_delay_cost() {
        // Fig. 7(b): raising d from small values sharply raises saving.
        let n = 20;
        let m = 10;
        let low_d = ChargingCostParams::new(10.0, 0.1, 2.0).savings_ratio(n, m);
        let high_d = ChargingCostParams::new(10.0, 10.0, 2.0).savings_ratio(n, m);
        assert!(high_d > low_d);
    }

    #[test]
    fn station_saving_grows_with_position() {
        let p = ChargingCostParams::new(10.0, 5.0, 2.0);
        assert_eq!(p.station_saving(0), 10.0);
        assert_eq!(p.station_saving(1), 15.0);
        assert_eq!(p.station_saving(4), 30.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn savings_rejects_m_above_n() {
        let _ = ChargingCostParams::default().savings_ratio(3, 4);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn rejects_negative_cost() {
        let _ = ChargingCostParams::new(-1.0, 0.0, 0.0);
    }
}
