//! Welford's online mean/variance accumulator.

use std::fmt;

/// Numerically stable streaming mean and variance (Welford's algorithm).
///
/// Used by the simulation and benchmark harnesses to aggregate per-trial
/// costs without storing every observation.
///
/// # Examples
///
/// ```
/// use esharing_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `n`); 0 when fewer than 1 observation.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divide by `n − 1`); 0 when fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4}",
            self.n,
            self.mean(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_mean_and_variance() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let sequential: RunningStats = data.iter().copied().collect();
        let mut left: RunningStats = data[..37].iter().copied().collect();
        let right: RunningStats = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-10);
        assert!((left.population_variance() - sequential.population_variance()).abs() < 1e-10);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn display_is_nonempty() {
        let s: RunningStats = [1.0].into_iter().collect();
        assert!(s.to_string().contains("n=1"));
    }
}
