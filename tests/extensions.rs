//! Integration tests for the implemented extensions (DESIGN.md §8)
//! exercised through the public facade.

use e_sharing::charging::rebalance::{plan_rebalance, StationInventory};
use e_sharing::core::events::{EventDrivenSim, TriggerPolicy};
use e_sharing::core::SystemConfig;
use e_sharing::dataset::{io, CityConfig, SyntheticCity, Timestamp, TripGenerator};
use e_sharing::geo::privacy::PlanarLaplace;
use e_sharing::geo::Point;
use e_sharing::placement::online::{DeviationConfig, DeviationPenalty, OnlinePlacement};
use e_sharing::placement::penalty::PolynomialPenalty;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn csv_roundtrip_feeds_the_pipeline() {
    // Generate trips, serialize to the Mobike CSV schema, read back, and
    // run the placement on the parsed stream.
    let city = SyntheticCity::generate(&CityConfig {
        trips_per_day: 400.0,
        ..CityConfig::default()
    });
    let trips = TripGenerator::new(&city, 3).generate_days(0, 1);
    let mut buf = Vec::new();
    io::write_csv(&mut buf, &trips).expect("write");
    let parsed = io::read_csv(buf.as_slice()).expect("read");
    assert_eq!(parsed.len(), trips.len());
    let destinations: Vec<Point> = parsed.iter().map(|t| t.end).collect();
    let mut system = e_sharing::core::ESharing::new(SystemConfig::default());
    let landmarks = system.bootstrap(&destinations);
    assert!(!landmarks.is_empty());
}

#[test]
fn obfuscated_stream_still_places_reasonably() {
    let mut rng = StdRng::seed_from_u64(4);
    let history: Vec<Point> = (0..200)
        .map(|_| Point::new(rng.gen_range(0.0..1_000.0), rng.gen_range(0.0..1_000.0)))
        .collect();
    let inst = e_sharing::placement::PlpInstance::with_uniform_cost(history.clone(), 5_000.0);
    let landmarks = e_sharing::placement::offline::jms_greedy(&inst).facility_points(&inst);
    let mechanism = PlanarLaplace::new(0.05).expect("valid epsilon"); // 40 m mean noise
    let mut alg = DeviationPenalty::new(landmarks, history, DeviationConfig::default());
    let mut true_walk = 0.0;
    for _ in 0..200 {
        let truth = Point::new(rng.gen_range(0.0..1_000.0), rng.gen_range(0.0..1_000.0));
        let noisy = mechanism.obfuscate(truth, &mut rng);
        let decision = alg.handle(noisy);
        true_walk += truth.distance(decision.station());
    }
    // Mild noise must not blow up routing: average true walk stays in the
    // same regime as the field's station spacing.
    assert!(true_walk / 200.0 < 600.0, "avg walk {}", true_walk / 200.0);
}

#[test]
fn polynomial_penalty_drives_online_decisions() {
    // A custom penalty that forbids any opening makes the algorithm pure
    // assignment; one that always permits makes it open everywhere the
    // decision cost allows.
    let landmarks = vec![Point::new(500.0, 500.0)];
    let never = PolynomialPenalty::from_coefficients(vec![0.0], 1e9);
    let mut closed = DeviationPenalty::new(
        landmarks.clone(),
        Vec::new(),
        DeviationConfig {
            auto_penalty: false,
            custom_penalty: Some(never),
            ..DeviationConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..100 {
        let p = Point::new(rng.gen_range(0.0..1_000.0), rng.gen_range(0.0..1_000.0));
        assert!(!closed.handle(p).opened());
    }
    assert_eq!(closed.stations().len(), 1);
}

#[test]
fn rebalancer_restores_targets_inside_the_city() {
    // Derive inventories from real station locations and imbalanced counts.
    let mut rng = StdRng::seed_from_u64(6);
    let locations: Vec<Point> = (0..12)
        .map(|_| Point::new(rng.gen_range(0.0..3_000.0), rng.gen_range(0.0..3_000.0)))
        .collect();
    let mut inventories: Vec<StationInventory> = Vec::new();
    let mut surplus_total = 0i64;
    for i in 0..locations.len() {
        let bikes = rng.gen_range(0..20usize);
        inventories.push(StationInventory { bikes, target: 0 });
        surplus_total += bikes as i64;
        let _ = i;
    }
    // Equal targets summing to the supply.
    let per = (surplus_total as usize) / locations.len();
    let mut leftover = surplus_total as usize - per * locations.len();
    for inv in inventories.iter_mut() {
        inv.target = per + usize::from(leftover > 0);
        leftover = leftover.saturating_sub(1);
    }
    let plan = plan_rebalance(Point::ORIGIN, &locations, &inventories, 8);
    assert_eq!(plan.residual_imbalance, 0, "supply == demand must balance");
    let after = e_sharing::charging::rebalance::apply_plan(&inventories, &plan);
    for (inv, &bikes) in inventories.iter().zip(&after) {
        assert_eq!(bikes, inv.target);
    }
}

#[test]
fn event_driven_sim_interoperates_with_forecasting() {
    // Run the condition-based engine, then forecast the request series it
    // produced — a full cross-extension path.
    let mut sim = EventDrivenSim::new(
        &CityConfig {
            trips_per_day: 800.0,
            fleet_size: 350,
            ..CityConfig::default()
        },
        SystemConfig::default(),
        TriggerPolicy::default(),
        7,
    );
    sim.bootstrap_days(1);
    sim.run_until(Timestamp::from_day_hour(4, 0));
    assert!(sim.trips_processed() > 1_000);
    // Forecast from the engine's own metrics-era demand (use the generator
    // again for a fresh series; this checks the crates compose, not the
    // values).
    use e_sharing::forecast::{Forecaster, HoltWinters};
    let city = SyntheticCity::generate(&CityConfig::default());
    let trips = TripGenerator::new(&city, 8).generate_days(0, 4);
    let series = e_sharing::dataset::arrivals::hourly_totals(&trips, 0, 4 * 24);
    let mut hw = HoltWinters::hourly().expect("valid");
    hw.fit(&series).expect("fit");
    let f = hw.forecast(&series, 6).expect("forecast");
    assert_eq!(f.len(), 6);
    assert!(f.iter().all(|v| v.is_finite()));
}
