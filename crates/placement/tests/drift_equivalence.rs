//! Reference-model equivalence for the drift protocol.
//!
//! An independent reimplementation of Algorithm 2's decision loop — linear
//! nearest-station scan, explicit FIFO window, batch Peacock re-test via
//! the public `RankedSample` API — applies the same commit-at-next-boundary
//! rule as [`DriftMode::Deferred`] (and, for the oracle lane, the same
//! inline rule as [`DriftMode::Inline`]). The production
//! `DeviationPenalty`'s decision stream must match it bit-for-bit: same
//! `Decision` every request, same costs, same penalty state. Exact
//! equality throughout — the deferred machinery (cached quadrant counts,
//! retained snapshots, off-seat evaluation) must be invisible in the
//! decisions.

use esharing_geo::Point;
use esharing_placement::online::{
    Decision, DeviationConfig, DeviationPenalty, DriftMode, OnlinePlacement,
};
use esharing_placement::penalty::{PenaltyFunction, PenaltyType};
use esharing_stats::ks2d::{RankedSample, SimilarityClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The reference model: Algorithm 2 with the drift rule written out
/// longhand. Deliberately naive — O(n) nearest scan, window cloned and
/// re-ranked from scratch at every boundary.
struct Reference {
    stations: Vec<Point>,
    penalty: PenaltyFunction,
    f: f64,
    f_initial: f64,
    rng: StdRng,
    a: usize,
    period: usize,
    window: VecDeque<Point>,
    ranked: RankedSample,
    history_empty: bool,
    shift_streak: u32,
    /// Deferred lane only: the window points captured at the last
    /// boundary, to be tested and applied at the next one.
    pending: Option<Vec<Point>>,
    mode: DriftMode,
    ks_window: usize,
    space_cost: f64,
}

impl Reference {
    fn new(landmarks: &[Point], history: &[Point], cfg: &DeviationConfig, mode: DriftMode) -> Self {
        Reference {
            stations: landmarks.to_vec(),
            penalty: PenaltyFunction::new(cfg.initial_penalty, cfg.tolerance),
            f: cfg.initial_decision_cost.unwrap(),
            f_initial: cfg.initial_decision_cost.unwrap(),
            rng: StdRng::seed_from_u64(cfg.seed),
            a: 0,
            period: ((cfg.beta * landmarks.len() as f64).ceil() as usize).max(1),
            window: VecDeque::new(),
            ranked: RankedSample::new(history),
            history_empty: history.is_empty(),
            shift_streak: 0,
            pending: None,
            mode,
            ks_window: cfg.ks_window,
            space_cost: cfg.space_cost,
        }
    }

    fn apply_verdict(&mut self, sample: &[Point]) {
        let test = self.ranked.peacock_test_against(sample);
        let class = SimilarityClass::from_test(&test);
        self.penalty = self.penalty.with_kind(PenaltyType::for_similarity(class));
        if class == SimilarityClass::LessSimilar {
            self.shift_streak += 1;
            if self.shift_streak == 2 {
                self.f = self.f_initial;
            }
        } else {
            self.shift_streak = 0;
        }
    }

    fn handle(&mut self, p: Point) -> Decision {
        // Window slide + doubling counter.
        if self.window.len() == self.ks_window {
            self.window.pop_front();
        }
        self.window.push_back(p);
        self.a += 1;
        let due = self.a >= self.period;
        // The opening decision: nearest by linear scan (coordinates are
        // continuous, so the minimum is unique and matches the grid index).
        let (nearest, c) = self
            .stations
            .iter()
            .map(|&s| (s, s.distance(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let g = self.penalty.g(c);
        let prob = (g * c / self.f).min(1.0);
        let opens = c > 0.0 && self.rng.gen_range(0.0..1.0) < prob;
        let decision = if opens {
            self.stations.push(p);
            Decision::Opened { station: p }
        } else {
            Decision::Assigned {
                station: nearest,
                walking: c,
            }
        };
        if due {
            self.a = 0;
            self.f *= 2.0;
            let min_window = (self.ks_window / 4).max(30);
            let retest = !self.history_empty && self.window.len() >= min_window;
            match self.mode {
                DriftMode::Inline => {
                    if retest {
                        let sample: Vec<Point> = self.window.iter().copied().collect();
                        self.apply_verdict(&sample);
                    }
                }
                DriftMode::Deferred => {
                    if let Some(sample) = self.pending.take() {
                        self.apply_verdict(&sample);
                    }
                    if retest {
                        self.pending = Some(self.window.iter().copied().collect());
                    }
                }
            }
        }
        decision
    }

    fn total_space_cost(&self) -> f64 {
        self.stations.len() as f64 * self.space_cost
    }
}

fn points(raw: &[(f64, f64)]) -> Vec<Point> {
    raw.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both drift modes must reproduce the longhand reference exactly:
    /// every `Decision`, the walking/space costs, and the final penalty
    /// type, across random landmark sets, histories, streams, window caps
    /// and seeds.
    #[test]
    fn decision_stream_matches_reference_model(
        landmarks_raw in proptest::collection::vec(
            (0.0f64..1_000.0, 0.0f64..1_000.0), 2..5),
        history_raw in proptest::collection::vec(
            (0.0f64..1_000.0, 0.0f64..1_000.0), 30..80),
        stream_raw in proptest::collection::vec(
            (0.0f64..1_000.0, 0.0f64..1_000.0), 50..200),
        ks_window in 10usize..40,
        f0 in 50.0f64..1_000.0,
        seed in 0u64..1_000,
    ) {
        let landmarks = points(&landmarks_raw);
        let history = points(&history_raw);
        let stream = points(&stream_raw);
        for mode in [DriftMode::Inline, DriftMode::Deferred] {
            let cfg = DeviationConfig {
                ks_window,
                initial_decision_cost: Some(f0),
                drift_mode: mode,
                seed,
                ..DeviationConfig::default()
            };
            let mut real = DeviationPenalty::new(
                landmarks.clone(), history.clone(), cfg.clone());
            let mut model = Reference::new(&landmarks, &history, &cfg, mode);
            for (i, &p) in stream.iter().enumerate() {
                let got = real.handle(p);
                let want = model.handle(p);
                prop_assert_eq!(got, want, "{:?} diverged at request {}", mode, i);
            }
            prop_assert_eq!(real.cost().space, model.total_space_cost());
            prop_assert_eq!(real.penalty_kind(), model.penalty.kind());
            prop_assert_eq!(
                real.stations().len(),
                model.stations.len(),
            );
        }
    }
}
