//! # esharing-placement
//!
//! Tier 1 of the E-Sharing framework: the **Parking Location Placement
//! (PLP)** problem and its solvers.
//!
//! PLP minimizes, over a time window, the sum of *user dissatisfaction*
//! (walking distance from each destination to its assigned parking,
//! weighted by arrivals) and *space occupation* (an opening cost per
//! established parking) — an uncapacitated facility-location problem
//! (Eq. 1 of the paper, NP-hard). This crate implements every algorithm
//! the paper evaluates:
//!
//! * [`offline::jms_greedy`] — the 1.61-factor greedy of Jain et al.
//!   (Algorithm 1), the near-optimal offline reference,
//! * [`online::Meyerson`] — Meyerson's online facility location baseline,
//! * [`online::OnlineKMeans`] — the online k-means baseline of Liberty,
//!   Sriharsha & Sviridenko,
//! * [`online::DeviationPenalty`] — the paper's contribution (Algorithm 2):
//!   an online algorithm guided by the offline solution through deviation
//!   penalty functions ([`penalty::PenaltyFunction`], Types I–III) and a
//!   periodic 2-D KS test that switches the active penalty type,
//! * [`PlpInstance`]/[`Solution`]/[`PlacementCost`] — shared problem and
//!   cost accounting.
//!
//! # Examples
//!
//! ```
//! use esharing_geo::Point;
//! use esharing_placement::{offline, PlpInstance};
//!
//! // Two tight clusters; opening a parking in each is optimal.
//! let clients = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(1000.0, 1000.0),
//!     Point::new(1010.0, 1000.0),
//! ];
//! let instance = PlpInstance::with_uniform_cost(clients, 100.0);
//! let solution = offline::jms_greedy(&instance);
//! assert_eq!(solution.open_facilities().len(), 2);
//! let cost = instance.cost_of(&solution);
//! assert_eq!(cost.space, 200.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod instance;
pub mod offline;
pub mod online;
pub mod penalty;

pub use cost::PlacementCost;
pub use instance::{PlpInstance, Solution};
