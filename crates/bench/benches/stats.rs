//! Criterion benches for the KS-test implementations — the cost the paper
//! cites as O(n³) for Peacock's exact enumeration vs the O(n²)
//! Fasano–Franceschini variant used in the streaming loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esharing_geo::Point;
use esharing_stats::ks2d::{ff_statistic, peacock_statistic, peacock_test};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sample(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..1_000.0), rng.gen_range(0.0..1_000.0)))
        .collect()
}

fn bench_ks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ks2d");
    for n in [30usize, 60, 120] {
        let a = sample(n, 1);
        let b = sample(n, 2);
        group.bench_with_input(BenchmarkId::new("peacock_exact", n), &n, |bencher, _| {
            bencher.iter(|| black_box(peacock_statistic(&a, &b)));
        });
        group.bench_with_input(
            BenchmarkId::new("fasano_franceschini", n),
            &n,
            |bencher, _| {
                bencher.iter(|| black_box(ff_statistic(&a, &b)));
            },
        );
    }
    // The full test (statistic + significance) at the streaming window size.
    let a = sample(300, 3);
    let b = sample(200, 4);
    group.bench_function("peacock_test_300v200", |bencher| {
        bencher.iter(|| black_box(peacock_test(&a, &b)));
    });
    group.finish();
}

criterion_group!(benches, bench_ks);
criterion_main!(benches);
