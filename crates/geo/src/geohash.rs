//! Base-32 geohash encoding and decoding.
//!
//! The Mobike dataset stores trip endpoints as geohash strings; the paper
//! "re-interpret\[s\] them into the corresponding latitudes and longitudes".
//! This module implements the standard geohash scheme (Niemeyer base-32,
//! interleaved longitude-first bits) so that the synthetic dataset crate can
//! emit and consume records in the same format.
//!
//! # Examples
//!
//! ```
//! use esharing_geo::geohash;
//! use esharing_geo::LatLon;
//!
//! let c = LatLon::new(39.9288, 116.3888).unwrap();
//! let h = geohash::encode(c, 7).unwrap();
//! assert_eq!(h, "wx4g0kz");
//! let (decoded, err) = geohash::decode(&h).unwrap();
//! assert!((decoded.lat() - c.lat()).abs() <= err.lat_err);
//! assert!((decoded.lon() - c.lon()).abs() <= err.lon_err);
//! ```

use crate::{GeoError, LatLon};

/// The geohash base-32 alphabet (digits + lowercase letters minus a, i, l, o).
pub const ALPHABET: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Maximum supported geohash length. Twelve characters resolve to ~37 mm of
/// longitude at the equator, far below any physical GPS accuracy.
pub const MAX_PRECISION: usize = 12;

/// Half-width of the cell a decoded geohash denotes, in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeError2d {
    /// Half the latitude extent of the cell.
    pub lat_err: f64,
    /// Half the longitude extent of the cell.
    pub lon_err: f64,
}

fn alphabet_index(ch: u8) -> Option<u32> {
    ALPHABET.iter().position(|&c| c == ch).map(|i| i as u32)
}

/// Encodes a coordinate into a geohash of `precision` characters.
///
/// # Errors
///
/// Returns [`GeoError::PrecisionTooLarge`] if `precision` exceeds
/// [`MAX_PRECISION`] or is zero.
pub fn encode(c: LatLon, precision: usize) -> Result<String, GeoError> {
    if precision == 0 || precision > MAX_PRECISION {
        return Err(GeoError::PrecisionTooLarge {
            requested: precision,
            max: MAX_PRECISION,
        });
    }
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let mut out = String::with_capacity(precision);
    let mut even_bit = true; // longitude first
    let mut bits = 0u32;
    let mut bit_count = 0u8;
    while out.len() < precision {
        if even_bit {
            let mid = (lon_lo + lon_hi) / 2.0;
            bits <<= 1;
            if c.lon() >= mid {
                bits |= 1;
                lon_lo = mid;
            } else {
                lon_hi = mid;
            }
        } else {
            let mid = (lat_lo + lat_hi) / 2.0;
            bits <<= 1;
            if c.lat() >= mid {
                bits |= 1;
                lat_lo = mid;
            } else {
                lat_hi = mid;
            }
        }
        even_bit = !even_bit;
        bit_count += 1;
        if bit_count == 5 {
            out.push(ALPHABET[bits as usize] as char);
            bits = 0;
            bit_count = 0;
        }
    }
    Ok(out)
}

/// Decodes a geohash to the center of its cell, along with the cell half
/// extents.
///
/// # Errors
///
/// Returns [`GeoError::EmptyGeohash`] for an empty string and
/// [`GeoError::InvalidGeohashChar`] for characters outside the base-32
/// alphabet (uppercase input is accepted and lowered).
pub fn decode(hash: &str) -> Result<(LatLon, DecodeError2d), GeoError> {
    let (lat_range, lon_range) = decode_bounds(hash)?;
    let lat = (lat_range.0 + lat_range.1) / 2.0;
    let lon = (lon_range.0 + lon_range.1) / 2.0;
    let err = DecodeError2d {
        lat_err: (lat_range.1 - lat_range.0) / 2.0,
        lon_err: (lon_range.1 - lon_range.0) / 2.0,
    };
    // Ranges are bisections of valid ranges, so the center is always valid.
    Ok((LatLon::new(lat, lon).expect("geohash center in range"), err))
}

/// Paired `(lo, hi)` latitude and longitude ranges of a geohash cell.
pub type GeohashBounds = ((f64, f64), (f64, f64));

/// Decodes a geohash to its bounding `((lat_lo, lat_hi), (lon_lo, lon_hi))`.
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn decode_bounds(hash: &str) -> Result<GeohashBounds, GeoError> {
    if hash.is_empty() {
        return Err(GeoError::EmptyGeohash);
    }
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let mut even_bit = true;
    for (index, raw) in hash.bytes().enumerate() {
        let ch = raw.to_ascii_lowercase();
        let val = alphabet_index(ch).ok_or(GeoError::InvalidGeohashChar {
            ch: raw as char,
            index,
        })?;
        for shift in (0..5).rev() {
            let bit = (val >> shift) & 1;
            if even_bit {
                let mid = (lon_lo + lon_hi) / 2.0;
                if bit == 1 {
                    lon_lo = mid;
                } else {
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if bit == 1 {
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
            even_bit = !even_bit;
        }
    }
    Ok(((lat_lo, lat_hi), (lon_lo, lon_hi)))
}

/// Returns the 8 neighbouring geohashes of `hash` (N, NE, E, SE, S, SW, W,
/// NW), clamped at the poles (entries that would cross a pole are omitted).
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn neighbors(hash: &str) -> Result<Vec<String>, GeoError> {
    let (center, err) = decode(hash)?;
    let precision = hash.len();
    let mut out = Vec::with_capacity(8);
    for dy in [-1i8, 0, 1] {
        for dx in [-1i8, 0, 1] {
            if dx == 0 && dy == 0 {
                continue;
            }
            let lat = center.lat() + f64::from(dy) * 2.0 * err.lat_err;
            let mut lon = center.lon() + f64::from(dx) * 2.0 * err.lon_err;
            // Wrap longitude across the antimeridian.
            if lon > 180.0 {
                lon -= 360.0;
            } else if lon < -180.0 {
                lon += 360.0;
            }
            if let Ok(c) = LatLon::new(lat, lon) {
                out.push(encode(c, precision)?);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_vectors() {
        // Reference vectors from the original geohash implementation.
        let c = LatLon::new(42.6, -5.6).unwrap();
        assert_eq!(encode(c, 5).unwrap(), "ezs42");
        let c = LatLon::new(57.64911, 10.40744).unwrap();
        assert_eq!(encode(c, 11).unwrap(), "u4pruydqqvj");
    }

    #[test]
    fn decode_known_vector() {
        let (c, _) = decode("ezs42").unwrap();
        assert!((c.lat() - 42.605).abs() < 0.03);
        assert!((c.lon() + 5.603).abs() < 0.03);
    }

    #[test]
    fn decode_accepts_uppercase() {
        let lower = decode("wx4g0ec").unwrap().0;
        let upper = decode("WX4G0EC").unwrap().0;
        assert_eq!(lower, upper);
    }

    #[test]
    fn roundtrip_preserves_cell() {
        let cases = [
            (39.9288, 116.3888),
            (-33.8688, 151.2093),
            (0.0, 0.0),
            (89.9, 179.9),
            (-89.9, -179.9),
        ];
        for (lat, lon) in cases {
            let c = LatLon::new(lat, lon).unwrap();
            for precision in 1..=MAX_PRECISION {
                let h = encode(c, precision).unwrap();
                assert_eq!(h.len(), precision);
                let (d, err) = decode(&h).unwrap();
                assert!(
                    (d.lat() - lat).abs() <= err.lat_err + 1e-12,
                    "lat mismatch at precision {precision}"
                );
                assert!(
                    (d.lon() - lon).abs() <= err.lon_err + 1e-12,
                    "lon mismatch at precision {precision}"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode(""), Err(GeoError::EmptyGeohash));
        assert!(matches!(
            decode("wx4a"),
            Err(GeoError::InvalidGeohashChar { ch: 'a', index: 3 })
        ));
        let c = LatLon::new(0.0, 0.0).unwrap();
        assert!(encode(c, 0).is_err());
        assert!(encode(c, MAX_PRECISION + 1).is_err());
    }

    #[test]
    fn error_shrinks_with_precision() {
        let c = LatLon::new(39.9, 116.4).unwrap();
        let mut prev = f64::INFINITY;
        for precision in 1..=MAX_PRECISION {
            let h = encode(c, precision).unwrap();
            let (_, err) = decode(&h).unwrap();
            let cell = err.lat_err.max(err.lon_err);
            assert!(cell < prev);
            prev = cell;
        }
    }

    #[test]
    fn seven_chars_is_sub_100m() {
        // The paper bins into 100x100m cells; 7-char geohashes (~76x153m at
        // the equator, narrower at Beijing's latitude) are the closest match.
        let c = LatLon::new(39.9, 116.4).unwrap();
        let h = encode(c, 7).unwrap();
        let (_, err) = decode(&h).unwrap();
        let lat_m = err.lat_err * 2.0 * 111_195.0;
        assert!(lat_m < 160.0, "cell height {lat_m} m");
    }

    #[test]
    fn neighbors_are_adjacent() {
        let h = "wx4g0ec";
        let (c, err) = decode(h).unwrap();
        let ns = neighbors(h).unwrap();
        assert_eq!(ns.len(), 8);
        for n in &ns {
            assert_eq!(n.len(), h.len());
            let (nc, _) = decode(n).unwrap();
            assert!((nc.lat() - c.lat()).abs() <= 2.0 * err.lat_err * 1.5);
            assert!((nc.lon() - c.lon()).abs() <= 2.0 * err.lon_err * 1.5);
            assert_ne!(n, h);
        }
    }

    #[test]
    fn alphabet_has_32_unique_symbols() {
        let mut seen = std::collections::HashSet::new();
        for &b in ALPHABET.iter() {
            assert!(seen.insert(b));
        }
        assert_eq!(seen.len(), 32);
        for banned in [b'a', b'i', b'l', b'o'] {
            assert!(!seen.contains(&banned));
        }
    }
}
